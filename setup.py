"""Legacy setup shim.

The evaluation environment is offline and has no ``wheel`` package, so
PEP 517 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517`` fall back to the classic setuptools
``develop`` command.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
