"""Federation scale-out: per-hive ingest work vs ring size.

The point of the federation tier is horizontal scale: a fixed crowd
sharded over more Hives means each Hive's pipeline and store absorb a
smaller slice of the upload workload.  This bench pushes the same
2k-device upload workload through a 1/2/4/8-member federation (devices
placed by the consistent-hash ring, uploads routed by
``FederationRouter.route_upload``) and reports per-hive flush/ingest
counts, asserting they shrink monotonically as the ring grows.

It also asserts the federation's correctness invariant: a federated
query over all member stores returns exactly the single-hive baseline's
record count — sharding loses nothing, and syndicating the task to
every member duplicates nothing.
"""

import pytest

from benchmarks.conftest import record_rows
from repro.apisense.device import SensorRecord
from repro.apisense.hive import Hive
from repro.apisense.honeycomb import Honeycomb
from repro.apisense.tasks import SensingTask
from repro.federation import FederatedDataset, FederationRouter
from repro.geo.point import GeoPoint
from repro.simulation import Simulator
from repro.units import DAY

N_DEVICES = 2000
UPLOADS_PER_DEVICE = 4
RECORDS_PER_UPLOAD = 12
N_RECORDS = N_DEVICES * UPLOADS_PER_DEVICE * RECORDS_PER_UPLOAD
RING_SIZES = [1, 2, 4, 8]
TASK_NAME = "federation-bench"


@pytest.fixture(scope="module")
def upload_batches() -> list[tuple[str, str, list[SensorRecord]]]:
    """The fixed 2k-device upload workload, in arrival order."""
    batches = []
    for tick in range(UPLOADS_PER_DEVICE):
        for d in range(N_DEVICES):
            device_id = f"dev-{d:04d}"
            user = f"user-{d:04d}"
            base = tick * 1800.0
            batches.append(
                (
                    device_id,
                    user,
                    [
                        SensorRecord(
                            device_id=device_id,
                            user=user,
                            task=TASK_NAME,
                            time=base + 120.0 * i,
                            values={
                                "gps": GeoPoint(
                                    44.8 + 0.0004 * ((d * 7 + i) % 200),
                                    -0.6 + 0.0004 * ((d * 13 + i) % 200),
                                ),
                            },
                        )
                        for i in range(RECORDS_PER_UPLOAD)
                    ],
                )
            )
    return batches


def run_federation(batches, n_hives: int):
    sim = Simulator()
    router = FederationRouter(sim)
    for index in range(n_hives):
        router.join(f"hive-{index}", Hive(sim, seed=index))
    owner = Honeycomb("bench-lab", router.hive("hive-0"))
    task = SensingTask(
        name=TASK_NAME,
        sensors=("gps",),
        sampling_period=120.0,
        upload_period=1800.0,
        end=DAY,
    )
    router.syndicate(task, owner, home="hive-0")
    now = 0.0
    for device_id, user, records in batches:
        now = max(now, records[0].time)
        sim.run_until(now)
        router.route_upload(device_id, user, TASK_NAME, records)
    sim.run()
    for name in router.member_names:
        router.hive(name).pipeline.flush_all()
    return router


@pytest.mark.benchmark(group="federation")
@pytest.mark.parametrize("n_hives", RING_SIZES)
def test_bench_federation_scaleout(benchmark, upload_batches, n_hives):
    router = benchmark.pedantic(
        lambda: run_federation(upload_batches, n_hives), iterations=1, rounds=2
    )
    per_hive = {
        name: router.hive(name).pipeline.stats for name in router.member_names
    }
    flushed = [stats.flushed_records for stats in per_hive.values()]
    flushes = [stats.flushes for stats in per_hive.values()]
    assert sum(flushed) == N_RECORDS

    # The federated query plane sees the whole crowd exactly once.
    federated = FederatedDataset.from_router(router)
    assert len(federated.scan(TASK_NAME)) == N_RECORDS
    assert federated.aggregate(TASK_NAME).records == N_RECORDS
    assert federated.aggregate(TASK_NAME).n_users == N_DEVICES

    mean_s = benchmark.stats.stats.mean
    record_rows(
        benchmark,
        [
            {
                "hives": n_hives,
                "records": N_RECORDS,
                "records_per_sec": int(N_RECORDS / mean_s),
                "max_hive_ingest": max(flushed),
                "mean_hive_ingest": int(sum(flushed) / n_hives),
                "max_hive_flushes": max(flushes),
            }
        ],
        claim="per-hive ingest work shrinks as the ring grows",
    )


@pytest.mark.benchmark(group="federation")
def test_bench_federation_monotonic_scaledown(benchmark, upload_batches):
    """Per-hive ingest work decreases monotonically with ring size."""

    def sweep():
        work = {}
        for n_hives in RING_SIZES:
            router = run_federation(upload_batches, n_hives)
            stats = [
                router.hive(name).pipeline.stats for name in router.member_names
            ]
            work[n_hives] = {
                "max_ingest": max(s.flushed_records for s in stats),
                "mean_ingest": sum(s.flushed_records for s in stats) / n_hives,
                "max_flushes": max(s.flushes for s in stats),
                "query_records": len(
                    FederatedDataset.from_router(router).scan(TASK_NAME)
                ),
            }
        return work

    work = benchmark.pedantic(sweep, iterations=1, rounds=1)
    for smaller, larger in zip(RING_SIZES, RING_SIZES[1:]):
        assert work[larger]["max_ingest"] < work[smaller]["max_ingest"]
        assert work[larger]["mean_ingest"] < work[smaller]["mean_ingest"]
        assert work[larger]["max_flushes"] <= work[smaller]["max_flushes"]
    # No loss, no duplication at any ring size: every sweep point sees
    # exactly the single-hive baseline's record count.
    baseline = work[RING_SIZES[0]]["query_records"]
    assert baseline == N_RECORDS
    assert all(point["query_records"] == baseline for point in work.values())
    record_rows(
        benchmark,
        [
            {
                "hives": n,
                "max_hive_ingest": point["max_ingest"],
                "mean_hive_ingest": int(point["mean_ingest"]),
                "max_hive_flushes": point["max_flushes"],
                "query_records": point["query_records"],
            }
            for n, point in work.items()
        ],
        claim="fixed 2k-device crowd: per-hive ingest shrinks monotonically in ring size",
    )
