"""E1 extension: store-and-forward resilience under uplink loss.

Sweeps the wireless loss probability and measures how much of the
collected data still reaches the Honeycomb.  Expected shape: collected
volume degrades gracefully (devices retry buffered uploads), far slower
than the raw loss rate — the store-and-forward design carries the
platform through bad radio conditions.
"""

import pytest

from benchmarks.conftest import record_rows
from repro.apisense import Campaign, CampaignConfig, SensingTask
from repro.units import DAY

LOSS_RATES = [0.0, 0.2, 0.4, 0.6]


def run_with_loss(population, loss: float) -> dict:
    campaign = Campaign(
        population,
        config=CampaignConfig(n_days=2, seed=4, uplink_loss=loss),
    )
    campaign.deploy(
        SensingTask(
            name="study",
            sensors=("gps",),
            sampling_period=300.0,
            upload_period=1800.0,
            end=2 * DAY,
        )
    )
    report = campaign.run()
    failed_uploads = sum(
        stats.uploads_failed
        for device in campaign.devices
        for stats in device.stats.values()
    )
    return {
        "loss": loss,
        "records": report.total_records,
        "failed_uploads": failed_uploads,
        "observed_loss": round(campaign.hive.transport.stats.loss_rate, 2),
    }


@pytest.mark.benchmark(group="transport")
def test_bench_loss_resilience(benchmark, population):
    def sweep():
        return {loss: run_with_loss(population, loss) for loss in LOSS_RATES}

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)
    rows = list(results.values())
    record_rows(benchmark, rows, claim="volume degrades far slower than loss rate")

    baseline = results[0.0]["records"]
    assert baseline > 0
    # Store-and-forward: at 40 % loss the platform still collects the
    # large majority of what a lossless network would.
    assert results[0.4]["records"] >= baseline * 0.6
    assert results[0.4]["failed_uploads"] > 0
    # Monotone degradation (weak: ties allowed).
    volumes = [results[loss]["records"] for loss in LOSS_RATES]
    assert volumes[0] >= volumes[-1]
