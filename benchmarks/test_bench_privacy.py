"""Privacy tier: secure-aggregation overhead vs plaintext folding.

One session per (protocol, fleet size): every device contributes a
3-component partial vector (records / value count / value sum) and the
session folds it aggregator-obliviously.  Expected shapes:

- **Paillier** cost is linear in devices and dominated by encryption
  (one ``pow`` per component per device under the 256-bit bench key);
- **masking** (non-resilient — the per-round wire protocol) is pure
  hash arithmetic but quadratic in cohort size (n-1 pairwise masks per
  device), overtaking Paillier somewhere past the mid hundreds;
- plaintext folding is microseconds — the printed overhead factor is
  the price of not trusting the platform operator;
- the resilient masking variant adds the O(n²) Shamir dealing at setup
  and is benched at enrolment scale with real dropouts.

Every round asserts secure == plaintext within fixed-point tolerance,
so the numbers can't go fast by going wrong.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import record_rows
from repro.privacy.secure_aggregation import (
    ParticipantProfile,
    SecureAggregationPolicy,
    SecureAggregationSession,
)

FLEET_SIZES = [100, 500, 1000]
COMPONENTS = ("records", "value_count", "value_sum")


def fleet(n: int) -> tuple[list[ParticipantProfile], dict[str, list[float]]]:
    rng = random.Random(n)
    profiles = [ParticipantProfile(f"dev-{i:04d}", battery=0.9) for i in range(n)]
    contributions = {
        p.participant_id: [
            float(rng.randint(1, 40)),
            float(rng.randint(0, 30)),
            round(rng.uniform(-50.0, 50.0), 3),
        ]
        for p in profiles
    }
    return profiles, contributions


def plaintext_fold(contributions) -> list[float]:
    totals = [0.0, 0.0, 0.0]
    for vector in contributions.values():
        for index, value in enumerate(vector):
            totals[index] += value
    return totals


@pytest.mark.benchmark(group="privacy")
@pytest.mark.parametrize("protocol", ["paillier", "masking"])
def test_bench_secure_vs_plaintext(benchmark, protocol):
    """Secure-aggregation cost per protocol at 100/500/1k devices."""
    rows = []

    def sweep():
        for n in FLEET_SIZES:
            profiles, contributions = fleet(n)
            policy = SecureAggregationPolicy(
                protocol=protocol, key_bits=256, resilient=False
            )
            session = SecureAggregationSession(
                "bench",
                profiles,
                components=COMPONENTS,
                policy=policy,
                rng=random.Random(7),
            )
            t0 = time.perf_counter()
            session.setup()
            result = session.run(contributions)
            secure_s = time.perf_counter() - t0

            t0 = time.perf_counter()
            truth = plaintext_fold(contributions)
            plain_s = time.perf_counter() - t0

            for index, label in enumerate(COMPONENTS):
                assert result.sum(label) == pytest.approx(
                    truth[index], abs=0.5 * n / 1000.0
                )
            rows.append(
                {
                    "protocol": protocol,
                    "devices": n,
                    "secure_ms": round(secure_s * 1e3, 1),
                    "plaintext_us": round(plain_s * 1e6, 1),
                    "overhead_x": round(secure_s / max(plain_s, 1e-9)),
                }
            )
        return rows

    result_rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    record_rows(benchmark, result_rows, protocol=protocol)
    # Scaling stays at the protocol's predicted shape, never worse:
    # 10x devices cost <= ~10x for Paillier (linear), <= ~100x for
    # masking (quadratic pairwise masks) — generous noise headroom.
    per_run = {row["devices"]: row["secure_ms"] for row in result_rows}
    factor = 30 if protocol == "paillier" else 300
    assert per_run[1000] <= max(factor * per_run[100], 1000.0)


@pytest.mark.benchmark(group="privacy")
def test_bench_resilient_masking_with_dropouts(benchmark):
    """The Shamir-backed variant: dealing cost + mid-session dropouts."""
    n, kills = 48, 6

    def round_trip():
        profiles, contributions = fleet(n)
        policy = SecureAggregationPolicy(
            protocol="masking", resilient=True, dropout_threshold=0.5
        )
        session = SecureAggregationSession(
            "bench-resilient",
            profiles,
            components=COMPONENTS,
            policy=policy,
            rng=random.Random(9),
        )
        t0 = time.perf_counter()
        session.setup()
        setup_s = time.perf_counter() - t0
        down = {f"dev-{i:04d}" for i in range(kills)}
        t0 = time.perf_counter()
        result = session.run(contributions, down=down)
        round_s = time.perf_counter() - t0
        truth = plaintext_fold(
            {pid: v for pid, v in contributions.items() if pid not in down}
        )
        for index, label in enumerate(COMPONENTS):
            assert result.sum(label) == pytest.approx(truth[index], abs=0.05)
        assert len(result.dropped) == kills
        return {
            "devices": n,
            "dropouts": kills,
            "setup_ms": round(setup_s * 1e3, 1),
            "round_ms": round(round_s * 1e3, 1),
        }

    row = benchmark.pedantic(round_trip, iterations=1, rounds=1)
    record_rows(benchmark, [row], devices=n, dropouts=kills)
