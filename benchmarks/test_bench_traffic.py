"""E5: "utility ... remains high for ... predicting traffic".

Two views of the claim:

- *spatial traffic* (which areas are busy): cell-entry counts, rank-
  correlated between raw and protected — this is what speed smoothing
  preserves;
- *temporal traffic* (when they are busy): the seasonal-naive predictor
  trained on protected data, scored against raw reality — this is the
  price of constant-speed re-timestamping, reported honestly.
"""

import pytest

from benchmarks.conftest import record_rows
from repro.geo import SpatialGrid
from repro.privacy import (
    GeoIndistinguishabilityMechanism,
    IdentityMechanism,
    SpeedSmoothingMechanism,
)
from repro.utility import (
    flow_correlation,
    seasonal_naive_error,
    traffic_matrix,
    transit_counts,
)

MECHANISMS = [
    ("raw", IdentityMechanism()),
    ("smooth-100m", SpeedSmoothingMechanism(100.0)),
    ("geoind-0.01", GeoIndistinguishabilityMechanism(0.01)),
    ("geoind-0.001", GeoIndistinguishabilityMechanism(0.001)),
]

WINDOW = 1800.0


@pytest.mark.benchmark(group="traffic")
def test_bench_traffic(benchmark, population):
    grid = SpatialGrid(population.city.bounding_box, cell_size_m=500.0)

    def sweep():
        raw_flow = transit_counts(population.dataset, grid, 120.0).reshape(-1, 1)
        raw_matrix = traffic_matrix(population.dataset, grid, WINDOW, 300.0)
        results = {}
        for label, mechanism in MECHANISMS:
            protected = mechanism.protect(population.dataset, seed=3)
            flow = transit_counts(protected, grid, 120.0).reshape(-1, 1)
            matrix = traffic_matrix(protected, grid, WINDOW, 300.0)
            width = min(matrix.shape[1], raw_matrix.shape[1])
            results[label] = (
                flow_correlation(raw_flow, flow),
                seasonal_naive_error(matrix[:, :width], raw_matrix[:, :width], WINDOW),
            )
        return results

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)
    rows = [
        {
            "mechanism": label,
            "spatial_flow_corr": round(corr, 2),
            "temporal_pred_nrmse": round(err, 2),
        }
        for label, (corr, err) in results.items()
    ]
    record_rows(benchmark, rows, claim="spatial traffic survives smoothing")

    assert results["raw"][0] == pytest.approx(1.0)
    assert results["raw"][1] == pytest.approx(0.0, abs=1e-6)
    # Spatial traffic structure survives smoothing...
    assert results["smooth-100m"][0] >= 0.5
    # ...and beats POI-defeating noise.
    assert results["smooth-100m"][0] > results["geoind-0.001"][0]
    # Honest cost: temporal prediction degrades under time distortion.
    assert results["smooth-100m"][1] > results["raw"][1]
