"""Device task runtime throughput: v1 hook vs v2 event dispatcher.

The v2 scripting API replaced the device's fixed sampling loop with an
event dispatcher (timer wheel per task + trigger evaluation).  This
bench pins the cost of that indirection: a fleet of devices runs the
same gps+battery collection workload for a simulated window, written as
a v1 hook task and as an equivalent v2 timer script, at 100 and 1000
devices.  The two APIs should sustain samples/sec within the same order
of magnitude — the dispatcher buys expressiveness (adaptive sampling,
triggers, lazy facades), not a hot-path regression.
"""

import pytest

from benchmarks.conftest import record_rows
from repro.apisense.battery import Battery, BatteryModel
from repro.apisense.device import MobileDevice
from repro.apisense.sensors import default_sensor_suite
from repro.apisense.tasks import SensingTask
from repro.simulation import Simulator
from repro.units import HOUR

import numpy as np

WINDOW = 2 * HOUR
PERIOD = 60.0


class NullHive:
    """Accepts uploads and throws them away (isolates device dispatch)."""

    def receive_upload(self, device_id, user, task_name, records):
        return len(records)


def v1_task() -> SensingTask:
    return SensingTask(
        name="bench-v1",
        sensors=("gps", "battery"),
        sampling_period=PERIOD,
        upload_period=WINDOW,
        end=WINDOW,
        script=lambda values: values,
    )


def v2_task() -> SensingTask:
    def setup(ctx):
        ctx.every(
            PERIOD,
            lambda c: c.save({"gps": c.location.current, "battery": c.battery.level}),
        )

    return SensingTask(
        name="bench-v2",
        sensors=("gps", "battery"),
        sampling_period=PERIOD,
        upload_period=WINDOW,
        end=WINDOW,
        script_v2=setup,
    )


def build_fleet(population, n_devices: int):
    sim = Simulator()
    hive = NullHive()
    suite = default_sensor_suite(population.city, np.random.default_rng(7))
    trajectories = list(population.dataset)
    devices = []
    for index in range(n_devices):
        device = MobileDevice(
            device_id=f"bench-{index:04d}",
            user=f"user-{index:04d}",
            trajectory=trajectories[index % len(trajectories)],
            sensors=suite,
            battery=Battery(BatteryModel(), level=1.0),
            seed=index,
        )
        device.bind(sim, hive)
        devices.append(device)
    return sim, devices


def run_fleet(population, n_devices: int, task: SensingTask) -> int:
    sim, devices = build_fleet(population, n_devices)
    for device in devices:
        device.offer_task(task, acceptance_probability=1.0)
    sim.run_until(WINDOW)
    return sum(device.stats[task.name].samples_taken for device in devices)


@pytest.mark.benchmark(group="script-dispatch")
@pytest.mark.parametrize("n_devices", [100, 1000])
@pytest.mark.parametrize("api", ["v1-hook", "v2-dispatcher"])
def test_bench_script_dispatch(benchmark, population, api, n_devices):
    task = v1_task() if api == "v1-hook" else v2_task()
    samples = benchmark.pedantic(
        lambda: run_fleet(population, n_devices, task), iterations=1, rounds=2
    )
    expected = n_devices * int(WINDOW / PERIOD)
    assert samples == expected  # full batteries, no fences: every tick lands
    mean_s = benchmark.stats.stats.mean
    record_rows(
        benchmark,
        [
            {
                "api": api,
                "devices": n_devices,
                "samples": samples,
                "samples_per_sec": int(samples / mean_s),
            }
        ],
        claim="v2 dispatcher sustains v1-order dispatch throughput",
    )
