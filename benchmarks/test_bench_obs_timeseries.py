"""Metrics history tier: what does *remembering* the metrics cost?

The scraper samples the whole registry on a 1-simulated-second cadence
while the fixed-seed 1k-device workload runs (the same shape as
``test_bench_obs``, compressed to a ~300-sim-second horizon so the
cadence yields ~300 scrape frames over 200+ live series).  The headline
number is the wall-clock overhead of scraping vs the identical
metrics-on run without a scraper — the acceptance bar is <=2%.

Two companion experiments:

- **series scaling** — per-scrape wall time at 100/400/1600 live
  series (the columnar batched write should scale sub-linearly in
  Python-overhead terms);
- **watch fan-out** — per-frame delivery time through the serving
  tier's ``obs watch`` channel to 8 live subscribers.

Results persist to the tracked ``BENCH_obs_timeseries.json`` so the
trajectory stays diffable (``repro obs bench-diff``); CI gates on the
overhead number.
"""

import asyncio
import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import record_rows
from repro import obs
from repro.apisense.device import SensorRecord
from repro.apisense.hive import Hive
from repro.apisense.honeycomb import Honeycomb
from repro.apisense.tasks import SensingTask
from repro.geo.point import GeoPoint
from repro.server import ReproServer, ServerClient
from repro.simulation import Simulator
from repro.streams import StreamEngine, WindowSpec
from repro.units import DAY

N_DEVICES = 1000
UPLOADS_PER_DEVICE = 4
RECORDS_PER_UPLOAD = 6
N_RECORDS = N_DEVICES * UPLOADS_PER_DEVICE * RECORDS_PER_UPLOAD
#: Compressed window: 4 windows x 75s = a ~300-sim-second horizon, so
#: the 1s cadence produces ~300 scrapes across the replay.
WINDOW = 75.0
CADENCE = 1.0
VIEW = "tumbling"
TASK_NAME = "tsdb-bench"
ROUNDS = 3
#: Synthetic fleet gauges padding the registry to >=200 live series.
N_FLEET_GAUGES = 150
MIN_SERIES = 200
RESULTS = Path(__file__).resolve().parents[1] / "BENCH_obs_timeseries.json"


@pytest.fixture(scope="module")
def upload_batches() -> list[tuple[str, str, list[SensorRecord]]]:
    """The fixed-seed 1k-device upload workload, in arrival order."""
    step = WINDOW / RECORDS_PER_UPLOAD
    batches = []
    for tick in range(UPLOADS_PER_DEVICE):
        for d in range(N_DEVICES):
            device_id = f"dev-{d:04d}"
            user = f"user-{d:04d}"
            base = tick * WINDOW
            batches.append(
                (
                    device_id,
                    user,
                    [
                        SensorRecord(
                            device_id=device_id,
                            user=user,
                            task=TASK_NAME,
                            time=base + step * i,
                            values={
                                "gps": GeoPoint(
                                    44.8 + 0.0004 * ((d * 7 + i) % 200),
                                    -0.6 + 0.0004 * ((d * 13 + i) % 200),
                                ),
                                "noise_db": float((d * 17 + tick * 5 + i) % 90),
                            },
                        )
                        for i in range(RECORDS_PER_UPLOAD)
                    ],
                )
            )
    return batches


def _pad_registry() -> None:
    """Synthetic per-device fleet gauges: guarantees >=200 live series."""
    fam = obs.metrics_registry().gauge(
        "repro_bench_fleet_level", "synthetic fleet gauge", ("instance",)
    )
    for index in range(N_FLEET_GAUGES):
        fam.labels(instance=f"fleet-{index:03d}").set(float(index % 100))


def _replay(batches, *, scrape: bool) -> dict:
    """One metrics-on workload pass, with or without the scraper."""
    obs.reset(metrics=True, tracing=False)
    _pad_registry()
    sim = Simulator()
    engine = StreamEngine(
        sim=sim, pane_seconds=WINDOW, allowed_lateness=0.0, history=128
    )
    engine.register_view(VIEW, WindowSpec.tumbling(WINDOW))
    hive = Hive(sim, streams=engine)
    owner = Honeycomb("tsdb-bench", hive)
    task = SensingTask(
        name=TASK_NAME,
        sensors=("gps",),
        sampling_period=WINDOW / RECORDS_PER_UPLOAD,
        upload_period=WINDOW,
        end=DAY,
    )
    owner.register_task(task)
    hive.adopt_task(task, owner)
    horizon = UPLOADS_PER_DEVICE * WINDOW + 2.0
    scraper = None
    scrape_seconds = 0.0
    if scrape:
        # Retention sized to the replay: ~302 frames at 1s cadence.
        scraper = obs.MetricsScraper(cadence=CADENCE, capacity=320)
        # Time every scrape from inside: the A/B wall-clock delta of two
        # ~0.5s replays sits below scheduler noise, the accumulated
        # in-scraper time does not.
        inner = scraper.scrape

        def timed_scrape(now=None):
            nonlocal scrape_seconds
            t0 = time.perf_counter()
            frame = inner(now)
            scrape_seconds += time.perf_counter() - t0
            return frame

        scraper.scrape = timed_scrape
        scraper.start(sim, until=horizon)

    started = time.perf_counter()
    now = 0.0
    for device_id, user, records in batches:
        at = records[0].time
        if at > now:
            now = at
            sim.run_until(now)
        hive.receive_upload(device_id, user, TASK_NAME, records)
    sim.run()
    hive.pipeline.flush_all()
    engine.finalize()
    elapsed = time.perf_counter() - started

    result = {
        "elapsed": elapsed,
        "stored": hive.store.n_records,
        "windows": len(engine.snapshots(TASK_NAME, VIEW)),
    }
    if scraper is not None:
        result["scrapes"] = scraper.stats.scrapes
        result["samples"] = scraper.stats.samples
        result["series"] = scraper.store.n_series
        result["scrape_seconds"] = scrape_seconds
    return result


def _best_of(batches, rounds: int, **posture) -> dict:
    runs = [_replay(batches, **posture) for _ in range(rounds)]
    best = dict(min(runs, key=lambda r: r["elapsed"]))
    assert all(r["stored"] == best["stored"] for r in runs)
    if "scrape_seconds" in best:  # same best-of-N treatment as the walls
        best["scrape_seconds"] = min(r["scrape_seconds"] for r in runs)
    return best


def _series_scaling() -> list[dict]:
    """Per-scrape wall time as the live-series count grows."""
    rows = []
    for n_series in (100, 400, 1600):
        obs.reset(metrics=True, tracing=False)
        fam = obs.metrics_registry().gauge(
            "repro_bench_scaling_level", "synthetic", ("instance",)
        )
        for index in range(n_series):
            fam.labels(instance=f"s-{index:04d}").set(float(index))
        scraper = obs.MetricsScraper(capacity=256)
        scraper.scrape(0.5)  # readers cached, columns resolved
        n_scrapes = 500
        started = time.perf_counter()
        for k in range(n_scrapes):
            scraper.scrape(1.0 + k)
        elapsed = time.perf_counter() - started
        assert scraper.store.n_series >= n_series
        rows.append(
            {
                "series": scraper.store.n_series,
                "scrapes": n_scrapes,
                "per_scrape_us": round(elapsed / n_scrapes * 1e6, 2),
            }
        )
    return rows


def _watch_fanout(n_watchers: int = 8, n_frames: int = 50) -> dict:
    """Per-frame delivery time to ``n_watchers`` obs-watch subscribers."""
    obs.reset(metrics=True, tracing=False)
    _pad_registry()
    sim = Simulator()
    engine = StreamEngine(sim=sim, pane_seconds=WINDOW, allowed_lateness=0.0)
    engine.register_view(VIEW, WindowSpec.tumbling(WINDOW))
    hive = Hive(sim, streams=engine)
    scraper = obs.MetricsScraper(cadence=CADENCE, capacity=256)
    server = ReproServer(hive, sim=sim, scraper=scraper)

    async def scenario() -> tuple[float, list[int]]:
        clients = []
        for _ in range(n_watchers):
            client = ServerClient(server.connect_in_process())
            await client.connect()
            await client.watch_obs()
            clients.append(client)
        started = time.perf_counter()
        for k in range(n_frames):
            scraper.scrape(1.0 + k)
        await server.drain()
        await asyncio.sleep(0)
        counts = []
        for client in clients:
            pushes = client.drain_pushes()
            counts.append(
                sum(1 for p in pushes if p.get("kind") == "obs_frame")
            )
        elapsed = time.perf_counter() - started
        for client in clients:
            await client.close()
        return elapsed, counts

    elapsed, counts = asyncio.run(scenario())
    assert counts == [n_frames] * n_watchers  # exactly once, everyone
    return {
        "watchers": n_watchers,
        "frames": n_frames,
        "per_frame_us": round(elapsed / n_frames * 1e6, 2),
        "per_delivery_us": round(
            elapsed / (n_frames * n_watchers) * 1e6, 2
        ),
    }


@pytest.mark.benchmark(group="obs")
def test_bench_scraper_overhead_scaling_and_fanout(benchmark, upload_batches):
    """1s-cadence scraping costs <=2% on the 1k-device workload."""
    _replay(upload_batches, scrape=True)  # warmup: caches, allocator
    baseline = _best_of(upload_batches, ROUNDS, scrape=False)
    scraped = benchmark.pedantic(
        lambda: _best_of(upload_batches, ROUNDS, scrape=True),
        iterations=1,
        rounds=1,
    )
    for result in (baseline, scraped):
        assert result["stored"] == N_RECORDS
        assert result["windows"] == UPLOADS_PER_DEVICE
    assert scraped["series"] >= MIN_SERIES
    assert scraped["scrapes"] >= 295  # ~one per simulated second

    # The headline: time actually spent scraping, against the plain
    # replay's wall clock (the A/B wall delta is recorded too, but a
    # ~5ms signal inside two ~0.5s runs drowns in scheduler noise).
    overhead_pct = scraped["scrape_seconds"] / baseline["elapsed"] * 100.0
    wall_delta_pct = (
        (scraped["elapsed"] - baseline["elapsed"]) / baseline["elapsed"] * 100.0
    )
    assert overhead_pct <= 2.0, (
        f"1s-cadence scraping cost {overhead_pct:.2f}% (bar: 2%)"
    )
    scaling = _series_scaling()
    fanout = _watch_fanout()

    record_rows(
        benchmark,
        scaling,
        claim="1s-cadence scraping of 200+ series costs <=2% wall clock",
        wall_seconds_plain=round(baseline["elapsed"], 3),
        wall_seconds_scraped=round(scraped["elapsed"], 3),
        scrape_overhead_pct=round(overhead_pct, 2),
        live_series=scraped["series"],
        scrapes=scraped["scrapes"],
    )

    RESULTS.write_text(
        json.dumps(
            {
                "bench": "obs-timeseries-scrape-overhead",
                "devices": N_DEVICES,
                "records": N_RECORDS,
                "cadence_s": CADENCE,
                "rounds": ROUNDS,
                "live_series": scraped["series"],
                "scrapes": scraped["scrapes"],
                "samples": scraped["samples"],
                "wall_seconds_plain": round(baseline["elapsed"], 3),
                "wall_seconds_scraped": round(scraped["elapsed"], 3),
                "scrape_seconds": round(scraped["scrape_seconds"], 4),
                "scrape_overhead_pct": round(overhead_pct, 2),
                "wall_delta_pct": round(wall_delta_pct, 2),
                "series_scaling": scaling,
                "watch_fanout": fanout,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    obs.reset()
