"""E4: "utility ... remains high for ... finding out crowded places".

Builds footfall heatmaps from raw and protected datasets and compares
top-k hotspot agreement (F1) across mechanisms.  Paper shape: smoothing
keeps crowded places findable; noise strong enough to hide POIs
(eps = 0.001/m, cf. E2) does not.
"""

import pytest

from benchmarks.conftest import record_rows
from repro.geo import SpatialGrid
from repro.privacy import (
    GeoIndistinguishabilityMechanism,
    IdentityMechanism,
    SpatialCloakingMechanism,
    SpeedSmoothingMechanism,
)
from repro.utility import density_similarity, footfall_density, hotspot_f1

MECHANISMS = [
    ("raw", IdentityMechanism()),
    ("smooth-100m", SpeedSmoothingMechanism(100.0)),
    ("smooth-250m", SpeedSmoothingMechanism(250.0)),
    ("geoind-0.01", GeoIndistinguishabilityMechanism(0.01)),
    ("geoind-0.001", GeoIndistinguishabilityMechanism(0.001)),
    ("cloak-400m", SpatialCloakingMechanism(400.0)),
]


@pytest.mark.benchmark(group="crowded-places")
def test_bench_crowded_places(benchmark, population):
    grid = SpatialGrid(population.city.bounding_box, cell_size_m=500.0)

    def sweep():
        raw_density = footfall_density(population.dataset, grid, time_step=120.0)
        results = {}
        for label, mechanism in MECHANISMS:
            protected = mechanism.protect(population.dataset, seed=3)
            density = footfall_density(protected, grid, time_step=120.0)
            results[label] = (
                hotspot_f1(raw_density, density, k=15),
                density_similarity(raw_density, density),
            )
        return results

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)
    rows = [
        {"mechanism": label, "hotspot_f1": round(f1, 2), "cosine": round(cos, 2)}
        for label, (f1, cos) in results.items()
    ]
    record_rows(benchmark, rows, claim="crowded places survive smoothing")

    assert results["raw"][0] == 1.0
    # The paper's utility claim for the novel mechanism:
    assert results["smooth-100m"][0] >= 0.5
    # The crossover: POI-defeating noise loses to smoothing on utility.
    assert results["smooth-100m"][0] > results["geoind-0.001"][0]
    assert results["smooth-100m"][1] > results["geoind-0.001"][1]
