"""E9: PRIVAPI's utility-driven optimal strategy selection.

The middleware's thesis: "there is not one unique anonymization strategy
that always performs well but many from which we can choose the one that
fits the best to the usage".  The bench runs a full publication audit
under both utility objectives and checks the selection logic end to end.
"""

import pytest

from benchmarks.conftest import record_rows
from repro.core import (
    CrowdedPlacesObjective,
    DistortionObjective,
    OdFlowObjective,
    PrivacyRequirement,
    PrivApi,
    TrafficFlowObjective,
)
from repro.privacy import (
    GeoIndistinguishabilityMechanism,
    SpatialCloakingMechanism,
    SpeedSmoothingMechanism,
)
from repro.privacy.mechanisms import KAnonymityCloakingMechanism

REGISTRY = [
    SpeedSmoothingMechanism(100.0),
    SpeedSmoothingMechanism(250.0),
    GeoIndistinguishabilityMechanism(0.01),
    GeoIndistinguishabilityMechanism(0.001),
    SpatialCloakingMechanism(400.0),
    KAnonymityCloakingMechanism(k=6, base_cell_m=250.0),
]


@pytest.mark.benchmark(group="privapi")
def test_bench_publication_audit(benchmark, population):
    privapi = PrivApi(mechanisms=REGISTRY, seed=5)
    requirement = PrivacyRequirement(max_poi_recall=0.25)

    def publish_both():
        return {
            "crowded-places": privapi.publish(
                population.dataset, requirement, CrowdedPlacesObjective()
            ),
            "traffic-flow": privapi.publish(
                population.dataset, requirement, TrafficFlowObjective()
            ),
        }

    results = benchmark.pedantic(publish_both, iterations=1, rounds=1)
    rows = []
    for objective, result in results.items():
        for evaluation in result.report.evaluations:
            rows.append(
                {
                    "objective": objective,
                    "mechanism": evaluation.mechanism,
                    "recall": round(evaluation.poi_recall, 2),
                    "utility": round(evaluation.utility, 2),
                    "ok": evaluation.satisfies_privacy,
                }
            )
        rows.append({"objective": objective, "CHOSEN": result.report.chosen})
    record_rows(benchmark, rows, claim="selection picks smoothing under POI bar")

    for objective, result in results.items():
        assert result.dataset is not None, f"{objective}: nothing satisfied the bar"
        # Under a meaningful POI bar only smoothing both satisfies privacy
        # and retains utility, so the selection must land there.
        assert "speed-smoothing" in result.report.chosen
        chosen = result.report.chosen_evaluation()
        assert chosen is not None and chosen.satisfies_privacy
        # The chosen mechanism maximises utility among the compliant.
        compliant = [e for e in result.report.evaluations if e.satisfies_privacy]
        assert chosen.utility == max(e.utility for e in compliant)


@pytest.mark.benchmark(group="privapi")
def test_bench_objective_flip_od_flows(benchmark, population):
    """The thesis in one bench: under the *same* privacy bar the chosen
    mechanism flips with the analyst's task — crowded-places picks speed
    smoothing, origin-destination flows pick k-anonymity cloaking
    (smoothing erases the stops OD analysis needs: a 250 m chord step
    exceeds the 200 m stay gate, so a smoothed release yields zero
    trips, while density-adaptive cloaking keeps stop structure at zone
    granularity)."""
    privapi = PrivApi(
        mechanisms=[
            SpeedSmoothingMechanism(250.0),
            KAnonymityCloakingMechanism(k=8, base_cell_m=250.0),
        ],
        seed=5,
    )
    requirement = PrivacyRequirement(max_poi_recall=0.25)

    def publish_both():
        return {
            "crowded-places": privapi.publish(
                population.dataset, requirement, CrowdedPlacesObjective()
            ),
            "od-flows": privapi.publish(
                population.dataset, requirement, OdFlowObjective()
            ),
        }

    results = benchmark.pedantic(publish_both, iterations=1, rounds=1)
    rows = [
        {"objective": name, "chosen": result.report.chosen}
        for name, result in results.items()
    ]
    record_rows(benchmark, rows, claim="chosen mechanism flips with objective")
    assert "speed-smoothing" in results["crowded-places"].report.chosen
    assert "k-anonymity" in results["od-flows"].report.chosen


@pytest.mark.benchmark(group="privapi")
def test_bench_permissive_bar_prefers_light_noise(benchmark, population):
    """With no privacy bar, the distortion objective flips the choice —
    the 'no one-size-fits-all' half of the thesis."""
    privapi = PrivApi(
        mechanisms=[
            GeoIndistinguishabilityMechanism(0.05),
            SpeedSmoothingMechanism(250.0),
        ],
        seed=5,
    )

    def publish():
        return privapi.publish(
            population.dataset,
            PrivacyRequirement(max_poi_recall=1.0),
            DistortionObjective(),
        )

    result = benchmark.pedantic(publish, iterations=1, rounds=1)
    assert result.dataset is not None
    assert "geo-indistinguishability" in result.report.chosen
