"""Ingestion pipeline throughput: sustained records/sec vs shard count.

The store subsystem exists so the Hive can absorb continuous uploads at
fleet scale; this bench pushes a fixed upload workload through the
IngestPipeline -> DatasetStore path at 1, 4, and 16 shards and reports
the sustained ingest rate.  Sharding bounds per-partition segment sizes
and spreads buffer pressure; the rate should stay in the same order of
magnitude across shard counts (the per-record work is constant) while
flush batches shrink as shards multiply.
"""

import pytest

from benchmarks.conftest import record_rows
from repro.apisense.device import SensorRecord
from repro.geo.point import GeoPoint
from repro.simulation import Simulator
from repro.store import DatasetStore, IngestPipeline

N_USERS = 40
UPLOADS_PER_USER = 25
RECORDS_PER_UPLOAD = 24
N_RECORDS = N_USERS * UPLOADS_PER_USER * RECORDS_PER_UPLOAD


@pytest.fixture(scope="module")
def upload_batches() -> list[list[SensorRecord]]:
    """One synthetic campaign's worth of upload batches, in arrival order."""
    batches = []
    for tick in range(UPLOADS_PER_USER):
        for u in range(N_USERS):
            user = f"user-{u:03d}"
            base = tick * 1800.0
            batches.append(
                [
                    SensorRecord(
                        device_id=f"dev-{u:03d}",
                        user=user,
                        task="ingest-bench",
                        time=base + 60.0 * i,
                        values={
                            "gps": GeoPoint(
                                44.8 + 0.0004 * ((u * 7 + i) % 100),
                                -0.6 + 0.0004 * ((u * 13 + i) % 100),
                            ),
                            "battery": 1.0 - 0.001 * i,
                        },
                    )
                    for i in range(RECORDS_PER_UPLOAD)
                ]
            )
    return batches


def run_ingest(batches: list[list[SensorRecord]], n_shards: int) -> DatasetStore:
    sim = Simulator()
    store = DatasetStore(n_shards=n_shards, segment_capacity=2048)
    pipeline = IngestPipeline(
        sim, store, policy="spill", buffer_capacity=4096, flush_delay=0.2
    )
    now = 0.0
    for batch in batches:
        now = max(now, batch[0].time)
        sim.run_until(now)
        pipeline.submit(batch)
    sim.run()
    pipeline.flush_all()
    return store


@pytest.mark.benchmark(group="ingest")
@pytest.mark.parametrize("n_shards", [1, 4, 16])
def test_bench_ingest_records_per_sec(benchmark, upload_batches, n_shards):
    store = benchmark.pedantic(
        lambda: run_ingest(upload_batches, n_shards), iterations=1, rounds=3
    )
    assert store.n_records == N_RECORDS
    assert store.aggregate("ingest-bench").records == N_RECORDS
    mean_s = benchmark.stats.stats.mean
    stats = store.stats()
    record_rows(
        benchmark,
        [
            {
                "shards": n_shards,
                "records": N_RECORDS,
                "records_per_sec": int(N_RECORDS / mean_s),
                "segments": stats.segments,
                "users": stats.users,
            }
        ],
        claim="pipeline sustains ingest across shard counts",
    )
