"""E3: speed smoothing "prevents to find out places where he stopped".

Sweeps the smoothing step and compares the POI attack against the
unprotected control: recall must collapse under smoothing while the raw
control stays near-perfect, and the re-identification linkage must drop
with it.
"""

import pytest

from benchmarks.conftest import record_rows
from repro.privacy import (
    IdentityMechanism,
    PoiAttack,
    ReidentificationAttack,
    SpeedSmoothingMechanism,
    poi_precision,
    poi_recall,
    reidentification_rate,
)
from repro.units import HOUR

STEPS_M = [100.0, 250.0, 500.0]


def measure(population, attack_split, mechanism):
    background, target = attack_split
    protected = mechanism.protect(target, seed=3)
    found = PoiAttack(denoise_window=9).run(protected)
    recalls, precisions = [], []
    for user in target.users:
        truth = population.truth.pois_of(user, min_total_dwell=2 * HOUR)
        recalls.append(poi_recall(truth, found.get(user, []), radius_m=250.0))
        precisions.append(poi_precision(truth, found.get(user, []), radius_m=250.0))

    linker = ReidentificationAttack(denoise_window=9).fit(background)
    pseudo, secret = protected.pseudonymized()
    guesses = {p: r.guessed_user for p, r in linker.link(pseudo).items()}
    return (
        sum(recalls) / len(recalls),
        sum(precisions) / len(precisions),
        reidentification_rate(secret, guesses),
        protected.n_records,
    )


@pytest.mark.benchmark(group="poi-hiding")
def test_bench_poi_hiding_sweep(benchmark, population, attack_split):
    def sweep():
        results = {"raw": measure(population, attack_split, IdentityMechanism())}
        for step in STEPS_M:
            results[f"smooth-{step:.0f}m"] = measure(
                population, attack_split, SpeedSmoothingMechanism(step)
            )
        return results

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)
    rows = [
        {
            "mechanism": label,
            "poi_recall": round(recall, 2),
            "poi_precision": round(precision, 2),
            "reident_rate": round(reident, 2),
            "published_records": records,
        }
        for label, (recall, precision, reident, records) in results.items()
    ]
    record_rows(benchmark, rows, claim="smoothing hides stops; raw control leaks all")

    raw_recall = results["raw"][0]
    assert raw_recall >= 0.85
    for step in STEPS_M:
        recall, precision, reident, _ = results[f"smooth-{step:.0f}m"]
        assert recall <= 0.3, f"step={step}: recall {recall}"
        assert reident < results["raw"][2], f"step={step}: linkage not reduced"
    # Coarser steps hide harder.
    assert results["smooth-500m"][0] <= results["smooth-100m"][0] + 0.05
