"""Streaming tier: view-maintenance cost and live-vs-batch convergence.

Two claims anchor the streaming tier:

1. **Flat maintenance cost.**  Views share pane state — per record the
   engine updates exactly one pane, and registered windows are only
   assembled (pane-merge) at close time.  Registering more windowed
   views must therefore leave the per-record ingest cost ~flat, not
   multiply it.

2. **Live == batch.**  The windowed views maintained incrementally at
   flush time must converge to a batch scan of the columnar store over
   the same windows: counts/users/cells exactly, percentiles within
   sketch(-merge) tolerance — on a fixed-seed 1k-device upload
   workload, both on a single hive and merged across a 4-hive
   federation by :class:`~repro.federation.streams.FederatedStreamMerger`.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import record_rows
from repro.apisense.device import SensorRecord
from repro.apisense.hive import Hive
from repro.apisense.honeycomb import Honeycomb
from repro.apisense.tasks import SensingTask
from repro.federation import FederatedDataset, FederatedStreamMerger, FederationRouter
from repro.geo.point import GeoPoint
from repro.simulation import Simulator
from repro.store import DatasetStore, IngestPipeline
from repro.streams import StreamEngine, WindowSpec
from repro.units import DAY

N_DEVICES = 1000
UPLOADS_PER_DEVICE = 4
RECORDS_PER_UPLOAD = 6
N_RECORDS = N_DEVICES * UPLOADS_PER_DEVICE * RECORDS_PER_UPLOAD
TASK_NAME = "stream-bench"
WINDOW = 1800.0
VIEW_COUNTS = [1, 2, 4, 8]


@pytest.fixture(scope="module")
def upload_batches() -> list[tuple[str, str, list[SensorRecord]]]:
    """The fixed-seed 1k-device upload workload, in arrival order."""
    batches = []
    for tick in range(UPLOADS_PER_DEVICE):
        for d in range(N_DEVICES):
            device_id = f"dev-{d:04d}"
            user = f"user-{d:04d}"
            base = tick * WINDOW
            batches.append(
                (
                    device_id,
                    user,
                    [
                        SensorRecord(
                            device_id=device_id,
                            user=user,
                            task=TASK_NAME,
                            time=base + 300.0 * i,
                            values={
                                "gps": GeoPoint(
                                    44.8 + 0.0004 * ((d * 7 + i) % 200),
                                    -0.6 + 0.0004 * ((d * 13 + i) % 200),
                                ),
                                "noise_db": float((d * 17 + tick * 5 + i) % 90),
                            },
                        )
                        for i in range(RECORDS_PER_UPLOAD)
                    ],
                )
            )
    return batches


def fresh_engine(sim: Simulator, n_views: int) -> StreamEngine:
    """An engine with ``n_views`` windowed views over shared panes."""
    engine = StreamEngine(
        sim=sim, pane_seconds=WINDOW, allowed_lateness=2 * WINDOW, history=128
    )
    engine.register_view("tumbling", WindowSpec.tumbling(WINDOW))
    for extra in range(1, n_views):
        engine.register_view(
            f"rolling-{extra}", WindowSpec.sliding((extra + 1) * WINDOW, WINDOW)
        )
    return engine


def run_stream(batches, n_views: int) -> tuple[StreamEngine, float]:
    """Push the workload through pipeline+engine; returns (engine, secs)."""
    sim = Simulator()
    store = DatasetStore(n_shards=4, segment_capacity=4096)
    pipeline = IngestPipeline(sim, store, flush_delay=0.2)
    engine = fresh_engine(sim, n_views).attach(pipeline)
    started = time.perf_counter()
    now = 0.0
    for _device_id, _user, records in batches:
        now = max(now, records[0].time)
        sim.run_until(now)
        pipeline.submit(records)
    sim.run()
    pipeline.flush_all()
    engine.finalize()
    elapsed = time.perf_counter() - started
    return engine, elapsed


@pytest.mark.benchmark(group="streams")
def test_bench_view_maintenance_flat_per_record(benchmark, upload_batches):
    """Per-record maintenance cost stays ~flat as views multiply."""

    def sweep():
        costs = {}
        for n_views in VIEW_COUNTS:
            engine, elapsed = run_stream(upload_batches, n_views)
            assert engine.stats.records_seen == N_RECORDS
            assert engine.stats.late_records == 0
            costs[n_views] = (elapsed, engine.stats.windows_emitted)
        return costs

    costs = benchmark.pedantic(sweep, iterations=1, rounds=2)
    per_record = {
        n: elapsed / N_RECORDS * 1e6 for n, (elapsed, _) in costs.items()
    }
    rows = [
        {
            "views": n,
            "records": N_RECORDS,
            "us_per_record": round(per_record[n], 3),
            "windows_emitted": costs[n][1],
            "vs_1_view": round(per_record[n] / per_record[1], 2),
        }
        for n in VIEW_COUNTS
    ]
    record_rows(
        benchmark,
        rows,
        claim="pane sharing keeps per-record view maintenance ~flat",
    )
    # 8x the views must cost far less than 8x per record; the bound is
    # loose (CI noise) but firmly sub-linear.
    assert per_record[8] <= 3.0 * per_record[1]


def route_through_hive(hive: Hive, batches) -> None:
    owner = Honeycomb("stream-lab", hive)
    task = SensingTask(
        name=TASK_NAME,
        sensors=("gps",),
        sampling_period=300.0,
        upload_period=WINDOW,
        end=DAY,
    )
    owner.register_task(task)
    hive.adopt_task(task, owner)
    sim = hive.sim
    now = 0.0
    for device_id, user, records in batches:
        now = max(now, records[0].time)
        sim.run_until(now)
        hive.receive_upload(device_id, user, TASK_NAME, records)
    sim.run()
    hive.pipeline.flush_all()
    hive.streams.finalize()


@pytest.mark.benchmark(group="streams")
def test_bench_live_views_converge_single_hive(benchmark, upload_batches):
    """Live windowed aggregates == batch scan, one 1k-device hive."""

    def run() -> Hive:
        sim = Simulator()
        hive = Hive(sim, streams=fresh_engine(sim, 1))
        hive.streams.register_view("rolling", WindowSpec.sliding(2 * WINDOW, WINDOW))
        route_through_hive(hive, upload_batches)
        return hive

    hive = benchmark.pedantic(run, iterations=1, rounds=2)
    engine, store = hive.streams, hive.store
    snapshots = engine.snapshots(TASK_NAME, "tumbling")
    assert sum(s.records for s in snapshots) == N_RECORDS == store.n_records

    mismatches = 0
    for snapshot in snapshots:
        batch = store.scan(TASK_NAME, t0=snapshot.start, t1=snapshot.end)
        if snapshot.records != len(batch):
            mismatches += 1
        if snapshot.n_users != len(set(batch.user_names())):
            mismatches += 1
        live_cells = {
            (int(np.floor(lat / engine.cell_deg)), int(np.floor(lon / engine.cell_deg)))
            for lat, lon in zip(batch.lat, batch.lon)
            if not np.isnan(lat)
        }
        if set(snapshot.cells) != live_cells:
            mismatches += 1
    assert mismatches == 0

    # Percentiles: merged live sketches vs the pooled scanned values.
    from repro.store.quantiles import P2Quantile

    merged = P2Quantile.merge([s.value_quantiles[0.95] for s in snapshots])
    exact = float(np.percentile(store.scan(TASK_NAME).value, 95.0))
    assert merged.value() == pytest.approx(exact, abs=5.0)

    record_rows(
        benchmark,
        [
            {
                "hives": 1,
                "records": N_RECORDS,
                "windows": len(snapshots),
                "exact_count_match": True,
                "value_p95_live": round(merged.value(), 2),
                "value_p95_batch": round(exact, 2),
            }
        ],
        claim="live windowed views equal batch scans, single hive",
    )


@pytest.mark.benchmark(group="streams")
def test_bench_live_views_converge_federated(benchmark, upload_batches):
    """Merged live views across a 4-hive federation == ground truth."""
    N_HIVES = 4

    def run() -> FederationRouter:
        sim = Simulator()
        router = FederationRouter(sim)
        for index in range(N_HIVES):
            hive = Hive(sim, streams=fresh_engine(sim, 1), seed=index)
            router.join(f"hive-{index}", hive)
        owner = Honeycomb("stream-lab", router.hive("hive-0"))
        task = SensingTask(
            name=TASK_NAME,
            sensors=("gps",),
            sampling_period=300.0,
            upload_period=WINDOW,
            end=DAY,
        )
        router.syndicate(task, owner, home="hive-0")
        now = 0.0
        for device_id, user, records in upload_batches:
            now = max(now, records[0].time)
            sim.run_until(now)
            router.route_upload(device_id, user, TASK_NAME, records)
        sim.run()
        for name in router.member_names:
            router.hive(name).pipeline.flush_all()
            router.hive(name).streams.finalize()
        return router

    router = benchmark.pedantic(run, iterations=1, rounds=2)
    merger = FederatedStreamMerger.from_router(router)
    federated = FederatedDataset.from_router(router)
    history = merger.history(TASK_NAME, "tumbling")

    # Counts and cells: exact equality against the federated batch scan.
    assert sum(s.records for s in history) == N_RECORDS == federated.n_records
    mismatches = 0
    for snapshot in history:
        batch = federated.scan(TASK_NAME, t0=snapshot.start, t1=snapshot.end)
        if snapshot.records != len(batch):
            mismatches += 1
        if snapshot.n_users != len(set(batch.user_names())):
            mismatches += 1
    assert mismatches == 0
    live_cells = set().union(*(s.cells for s in history))
    agg = federated.aggregate(TASK_NAME)
    assert len(live_cells) == agg.coverage_cells

    # Percentiles across the federation: P2-merge tolerance.
    from repro.store.quantiles import P2Quantile

    merged = P2Quantile.merge([s.value_quantiles[0.95] for s in history])
    exact = float(np.percentile(federated.scan(TASK_NAME).value, 95.0))
    assert merged.value() == pytest.approx(exact, abs=5.0)

    per_member = {
        name: router.hive(name).streams.stats.records_seen
        for name in router.member_names
    }
    record_rows(
        benchmark,
        [
            {
                "hives": N_HIVES,
                "records": N_RECORDS,
                "windows_merged": len(history),
                "max_member_share": max(per_member.values()),
                "value_p95_live": round(merged.value(), 2),
                "value_p95_batch": round(exact, 2),
            }
        ],
        claim="federated live dashboard equals pooled ground truth",
    )
