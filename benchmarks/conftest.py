"""Shared benchmark fixtures.

One session-scoped population serves every experiment so results are
comparable across benches; its size (20 users x 8 days) is the laptop-
scale equivalent of the paper's deployment data.
"""

from __future__ import annotations

import pytest

from repro.mobility.generator import GeneratorConfig, MobilityGenerator, PopulationData
from repro.units import DAY


@pytest.fixture(scope="session")
def population() -> PopulationData:
    config = GeneratorConfig(n_users=20, n_days=8, sampling_period=120.0)
    return MobilityGenerator(config).generate(seed=2014)


@pytest.fixture(scope="session")
def attack_split(population):
    """Background (attacker knowledge) and target halves of the data."""
    dataset = population.dataset
    return dataset.slice_time(0, 4 * DAY), dataset.slice_time(4 * DAY, 8 * DAY)


def record_rows(benchmark, rows: list[dict], **extra) -> None:
    """Attach experiment rows to the benchmark JSON and print them."""
    benchmark.extra_info["rows"] = rows
    for key, value in extra.items():
        benchmark.extra_info[key] = value
    print()
    for row in rows:
        print("  " + "  ".join(f"{k}={v}" for k, v in row.items()))
