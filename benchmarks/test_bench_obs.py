"""Observability tier: what does watching the platform cost?

Three replays of the same fixed-seed 1k-device workload (24k records
through gateway -> pipeline -> store -> stream engine):

1. instrumentation **off** — registry disabled, every instrument a
   single-branch no-op, no ``perf_counter`` pairs taken;
2. metrics **on** (the default production posture) — the measured
   overhead vs (1) is the headline number, expected well under 5%;
3. metrics + sampled **tracing** — yields the per-stage latency
   breakdown (``obs top``) and an end-to-end record-path audit from
   spans alone.

The run persists its numbers to the tracked ``BENCH_obs.json`` at the
repo root so the overhead trajectory stays diffable across revisions;
CI reads that file for the non-gating 5% guard.
"""

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import record_rows
from repro import obs
from repro.apisense.device import SensorRecord
from repro.apisense.hive import Hive
from repro.apisense.honeycomb import Honeycomb
from repro.apisense.tasks import SensingTask
from repro.geo.point import GeoPoint
from repro.simulation import Simulator
from repro.streams import StreamEngine, WindowSpec
from repro.units import DAY

N_DEVICES = 1000
UPLOADS_PER_DEVICE = 4
RECORDS_PER_UPLOAD = 6
N_RECORDS = N_DEVICES * UPLOADS_PER_DEVICE * RECORDS_PER_UPLOAD
WINDOW = 1800.0
VIEW = "tumbling"
TASK_NAME = "obs-bench"
ROUNDS = 3  # best-of-N per configuration to squeeze out scheduler noise
TRACE_SAMPLE = 0.1
RESULTS = Path(__file__).resolve().parents[1] / "BENCH_obs.json"


@pytest.fixture(scope="module")
def upload_batches() -> list[tuple[str, str, list[SensorRecord]]]:
    """The fixed-seed 1k-device upload workload, in arrival order."""
    batches = []
    for tick in range(UPLOADS_PER_DEVICE):
        for d in range(N_DEVICES):
            device_id = f"dev-{d:04d}"
            user = f"user-{d:04d}"
            base = tick * WINDOW
            batches.append(
                (
                    device_id,
                    user,
                    [
                        SensorRecord(
                            device_id=device_id,
                            user=user,
                            task=TASK_NAME,
                            time=base + 300.0 * i,
                            values={
                                "gps": GeoPoint(
                                    44.8 + 0.0004 * ((d * 7 + i) % 200),
                                    -0.6 + 0.0004 * ((d * 13 + i) % 200),
                                ),
                                "noise_db": float((d * 17 + tick * 5 + i) % 90),
                            },
                        )
                        for i in range(RECORDS_PER_UPLOAD)
                    ],
                )
            )
    return batches


def _replay(batches, *, metrics: bool, tracing: bool = False) -> dict:
    """One full workload pass under the given observability posture."""
    obs.reset(metrics=metrics, tracing=tracing)
    if tracing:
        obs.configure(sample_rate=TRACE_SAMPLE, trace_capacity=100_000)
    sim = Simulator()
    engine = StreamEngine(
        sim=sim, pane_seconds=WINDOW, allowed_lateness=0.0, history=128
    )
    engine.register_view(VIEW, WindowSpec.tumbling(WINDOW))
    hive = Hive(sim, streams=engine)
    owner = Honeycomb("obs-bench", hive)
    task = SensingTask(
        name=TASK_NAME,
        sensors=("gps",),
        sampling_period=300.0,
        upload_period=WINDOW,
        end=DAY,
    )
    owner.register_task(task)
    hive.adopt_task(task, owner)

    started = time.perf_counter()
    now = 0.0
    for device_id, user, records in batches:
        at = records[0].time
        if at > now:  # next tick: drain this one's flush timers first
            now = at
            sim.run_until(now)
        hive.receive_upload(device_id, user, TASK_NAME, records)
    sim.run()
    hive.pipeline.flush_all()
    engine.finalize()
    elapsed = time.perf_counter() - started

    stored = hive.store.n_records
    windows = len(engine.snapshots(TASK_NAME, VIEW))
    return {"elapsed": elapsed, "stored": stored, "windows": windows}


def _best_of(batches, rounds: int, **posture) -> dict:
    runs = [_replay(batches, **posture) for _ in range(rounds)]
    best = min(runs, key=lambda r: r["elapsed"])
    assert all(r["stored"] == best["stored"] for r in runs)
    return best


@pytest.mark.benchmark(group="obs")
def test_bench_instrumentation_overhead_and_stage_breakdown(
    benchmark, upload_batches
):
    """On-vs-off overhead plus the per-stage p50/p99 table."""
    _replay(upload_batches, metrics=True)  # warmup: caches, allocator
    baseline = _best_of(upload_batches, ROUNDS, metrics=False)
    instrumented = benchmark.pedantic(
        lambda: _best_of(upload_batches, ROUNDS, metrics=True),
        iterations=1,
        rounds=1,
    )
    for result in (baseline, instrumented):
        assert result["stored"] == N_RECORDS
        assert result["windows"] == UPLOADS_PER_DEVICE

    overhead_pct = (
        (instrumented["elapsed"] - baseline["elapsed"])
        / baseline["elapsed"]
        * 100.0
    )

    # The per-stage table comes from the metrics-on run just finished:
    # every timed hot path, hottest first, quantiles bucket-interpolated.
    stages = [
        {
            "stage": timing.stage,
            "count": timing.count,
            "total_seconds": round(timing.total_seconds, 6),
            "p50_ms": round(timing.p50 * 1000.0, 4),
            "p99_ms": round(timing.p99 * 1000.0, 4),
        }
        for timing in obs.hot_paths()
    ]
    assert stages, "metrics-on run produced no stage timings"
    stage_names = " ".join(s["stage"] for s in stages)
    assert "repro_pipeline_flush_seconds" in stage_names
    assert "repro_store_append_seconds" in stage_names

    # A third pass with sampled tracing: reconstruct record journeys
    # from the span log alone and audit exactly-once delivery.
    traced = _replay(upload_batches, metrics=True, tracing=True)
    assert traced["stored"] == N_RECORDS
    log = obs.tracer().log
    paths = obs.record_paths(log)
    # Systematic sampling: one trace per 1/rate uploads (the +-1 covers
    # float accumulation drift across 4k gate decisions).
    n_traced = len(log.trace_ids())
    assert abs(n_traced - len(upload_batches) * TRACE_SAMPLE) <= 1
    exactly_once = sum(
        1
        for stages_seen in paths.values()
        if {name: len(spans) for name, spans in stages_seen.items()}
        == {
            "ingest.admit": 1,
            "ingest.flush": 1,
            "store.append": 1,
            "stream.window": 1,
        }
    )
    assert exactly_once == len(paths) == n_traced * RECORDS_PER_UPLOAD
    tracing_overhead_pct = (
        (traced["elapsed"] - baseline["elapsed"]) / baseline["elapsed"] * 100.0
    )

    record_rows(
        benchmark,
        stages,
        claim="full instrumentation costs <5% on the 1k-device workload",
        wall_seconds_off=round(baseline["elapsed"], 3),
        wall_seconds_on=round(instrumented["elapsed"], 3),
        overhead_pct=round(overhead_pct, 2),
    )

    RESULTS.write_text(
        json.dumps(
            {
                "bench": "obs-instrumentation-overhead",
                "devices": N_DEVICES,
                "records": N_RECORDS,
                "windows": UPLOADS_PER_DEVICE,
                "rounds": ROUNDS,
                "wall_seconds_off": round(baseline["elapsed"], 3),
                "wall_seconds_on": round(instrumented["elapsed"], 3),
                "overhead_pct": round(overhead_pct, 2),
                "stages": stages,
                "tracing": {
                    "sample_rate": TRACE_SAMPLE,
                    "spans": log.total,
                    "spans_dropped": log.dropped,
                    "traces": len(log.trace_ids()),
                    "records_reconstructed": len(paths),
                    "exactly_once": exactly_once,
                    "wall_seconds": round(traced["elapsed"], 3),
                    "overhead_pct": round(tracing_overhead_pct, 2),
                },
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    # Leave the process-wide switches at their defaults for later tests.
    obs.reset()
