"""Serving tier: concurrent-client dashboard fan-out at 1k sessions.

The claim under measurement: one hive's window closes fan out to 1000+
subscribed dashboard sessions through the bounded per-subscriber queues
with push latencies (enqueue -> client receipt) low enough for a live
dashboard, and every subscriber's pushed stream is **identical** to the
engine's batch view — drops, if any, accounted per subscription rather
than silent.

The run persists its numbers to the tracked ``BENCH_server.json`` at the
repo root so the perf trajectory stays diffable across revisions.
"""

import asyncio
import json
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import record_rows
from repro.apisense.device import SensorRecord
from repro.apisense.hive import Hive
from repro.apisense.honeycomb import Honeycomb
from repro.apisense.tasks import SensingTask
from repro.geo.point import GeoPoint
from repro.server import ReproServer
from repro.server.protocol import snapshot_digest
from repro.simulation import Simulator
from repro.streams import StreamEngine, WindowSpec
from repro.units import DAY

N_DEVICES = 1000
N_SESSIONS = 1000
UPLOADS_PER_DEVICE = 4
RECORDS_PER_UPLOAD = 6
N_RECORDS = N_DEVICES * UPLOADS_PER_DEVICE * RECORDS_PER_UPLOAD
WINDOW = 1800.0
VIEW = "tumbling"
TASK_NAME = "server-bench"
RESULTS = Path(__file__).resolve().parents[1] / "BENCH_server.json"


@pytest.fixture(scope="module")
def upload_batches() -> list[tuple[str, str, list[SensorRecord]]]:
    """The fixed-seed 1k-device upload workload, in arrival order."""
    batches = []
    for tick in range(UPLOADS_PER_DEVICE):
        for d in range(N_DEVICES):
            device_id = f"dev-{d:04d}"
            user = f"user-{d:04d}"
            base = tick * WINDOW
            batches.append(
                (
                    device_id,
                    user,
                    [
                        SensorRecord(
                            device_id=device_id,
                            user=user,
                            task=TASK_NAME,
                            time=base + 300.0 * i,
                            values={
                                "gps": GeoPoint(
                                    44.8 + 0.0004 * ((d * 7 + i) % 200),
                                    -0.6 + 0.0004 * ((d * 13 + i) % 200),
                                ),
                                "noise_db": float((d * 17 + tick * 5 + i) % 90),
                            },
                        )
                        for i in range(RECORDS_PER_UPLOAD)
                    ],
                )
            )
    return batches


async def _read_pushes(endpoint, sink: list) -> None:
    """Per-session reader: stamp receipt time against the send stamp."""
    while True:
        message = await endpoint.recv()
        if message is None:
            return
        if message.get("type") == "push" and message.get("kind") == "snapshot":
            sink.append(
                {
                    "end": message["snapshot"]["end"],
                    "sent_at": message["sent_at"],
                    "recv_at": time.perf_counter(),
                    "digest": message["snapshot"],
                }
            )


async def _scenario(batches) -> dict:
    sim = Simulator()
    engine = StreamEngine(
        sim=sim, pane_seconds=WINDOW, allowed_lateness=0.0, history=128
    )
    engine.register_view(VIEW, WindowSpec.tumbling(WINDOW))
    hive = Hive(sim, streams=engine)
    owner = Honeycomb("server-bench", hive)
    task = SensingTask(
        name=TASK_NAME,
        sensors=("gps",),
        sampling_period=300.0,
        upload_period=WINDOW,
        end=DAY,
    )
    owner.register_task(task)
    hive.adopt_task(task, owner)
    server = ReproServer(hive)

    endpoints, sinks, readers = [], [], []
    for index in range(N_SESSIONS):
        endpoint = server.connect_in_process()
        await endpoint.send(
            {"type": "connect", "headers": {"client": f"dash-{index:04d}"}}
        )
        assert (await endpoint.recv())["type"] == "connected"
        await endpoint.send(
            {
                "type": "channel",
                "id": 1,
                "action": "subscribe",
                "payload": {"view": VIEW},
            }
        )
        assert (await endpoint.recv())["status"] == "ok"
        sink: list = []
        readers.append(asyncio.ensure_future(_read_pushes(endpoint, sink)))
        endpoints.append(endpoint)
        sinks.append(sink)

    started = time.perf_counter()
    now = 0.0
    for device_id, user, records in batches:
        at = records[0].time
        if at > now:
            now = at
            await server.drive(now, slice_seconds=WINDOW / 4)
        hive.receive_upload(device_id, user, TASK_NAME, records)
    await server.drive(now + WINDOW, slice_seconds=WINDOW / 4)
    hive.pipeline.flush_all()
    engine.finalize()
    await server.drain()
    # Let every reader observe its inbox before accounting.
    expected = server.pushes_sent
    for _ in range(1000):
        await asyncio.sleep(0)
        if sum(len(s) for s in sinks) >= expected:
            break
    elapsed = time.perf_counter() - started

    per_subscription = [
        (sub.snapshots_pushed, sub.pushes_dropped)
        for session in server._sessions.values()
        for sub in session.subscriptions.values()
    ]
    for reader in readers:
        reader.cancel()
    await asyncio.gather(*readers, return_exceptions=True)
    for endpoint in endpoints:
        endpoint.close()
    return {
        "sinks": sinks,
        "elapsed": elapsed,
        "batch": [snapshot_digest(s) for s in engine.snapshots(TASK_NAME, VIEW)],
        "pushes_sent": server.pushes_sent,
        "pushes_dropped": server.pushes_dropped,
        "per_subscription": per_subscription,
    }


@pytest.mark.benchmark(group="server")
def test_bench_dashboard_fanout_1k_sessions(benchmark, upload_batches):
    """1k subscribed sessions: p50/p99 push latency, per-window fan-out."""
    result = benchmark.pedantic(
        lambda: asyncio.run(_scenario(upload_batches)), iterations=1, rounds=1
    )

    batch = result["batch"]
    assert len(batch) == UPLOADS_PER_DEVICE
    assert sum(d["records"] for d in batch) == N_RECORDS

    # Every subscriber's pushed stream equals the engine's batch view —
    # ends in order, no duplicates, drops accounted not silent.
    assert len(result["per_subscription"]) == N_SESSIONS
    for sink, (pushed, dropped) in zip(
        result["sinks"], result["per_subscription"]
    ):
        assert len(sink) + dropped == pushed == len(batch)
        assert dropped == 0  # queues never overflowed at this depth
        assert [p["digest"] for p in sink] == batch
    assert result["pushes_dropped"] == 0
    assert result["pushes_sent"] == N_SESSIONS * len(batch)

    latencies = np.array(
        [
            (p["recv_at"] - p["sent_at"]) * 1000.0
            for sink in result["sinks"]
            for p in sink
        ]
    )
    p50 = float(np.percentile(latencies, 50.0))
    p99 = float(np.percentile(latencies, 99.0))

    rows = []
    for index, digest in enumerate(batch):
        window = [
            p for sink in result["sinks"] for p in sink
            if p["end"] == digest["end"]
        ]
        duration = max(p["recv_at"] for p in window) - min(
            p["sent_at"] for p in window
        )
        rows.append(
            {
                "window_end": digest["end"],
                "sessions": len(window),
                "fanout_ms": round(duration * 1000.0, 3),
                "pushes_per_sec": round(len(window) / duration),
            }
        )
        assert len(window) == N_SESSIONS  # the full fleet, every window

    record_rows(
        benchmark,
        rows,
        claim="1k-session dashboard fan-out: pushed stream == batch view",
        push_p50_ms=round(p50, 3),
        push_p99_ms=round(p99, 3),
    )

    RESULTS.write_text(
        json.dumps(
            {
                "bench": "server-dashboard-fanout",
                "sessions": N_SESSIONS,
                "devices": N_DEVICES,
                "records": N_RECORDS,
                "windows": len(batch),
                "pushes_sent": result["pushes_sent"],
                "pushes_dropped": result["pushes_dropped"],
                "push_p50_ms": round(p50, 3),
                "push_p99_ms": round(p99, 3),
                "wall_seconds": round(result["elapsed"], 3),
                "per_window": rows,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
