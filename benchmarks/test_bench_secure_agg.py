"""E8: secure aggregation cost (Paillier vs additive masking).

Timing of sum queries over N device readings for both protocols and two
key sizes.  Expected shapes: Paillier cost is linear in N and grows
steeply (~cubically) with key size; masking is orders of magnitude
cheaper but requires full participation.
"""

import random

import pytest

from benchmarks.conftest import record_rows
from repro.crypto import (
    DeviceContributor,
    MaskedAggregation,
    MaskingParticipant,
    ObliviousAggregator,
    QueryCoordinator,
)


def paillier_round(coordinator, n_devices: int, query_id: str) -> float:
    query = coordinator.open_query(query_id)
    contributor = DeviceContributor(random.Random(2))
    aggregator = ObliviousAggregator(query)
    for index in range(n_devices):
        aggregator.accept(contributor.contribute_value(query, float(index)))
    return coordinator.decrypt_sum(query, aggregator.scalar_result())


def masking_round(n_devices: int) -> float:
    aggregation = MaskedAggregation(n_devices)
    seed = b"bench-seed"
    for index in range(n_devices):
        participant = MaskingParticipant(index, n_devices, seed)
        aggregation.accept(participant.masked_value(float(index)))
    return aggregation.result_sum()


@pytest.mark.benchmark(group="secure-agg")
@pytest.mark.parametrize("key_bits", [256, 512])
@pytest.mark.parametrize("n_devices", [10, 50])
def test_bench_paillier_sum(benchmark, key_bits, n_devices):
    coordinator = QueryCoordinator(key_bits=key_bits, rng=random.Random(1))
    counter = iter(range(10_000))

    def run():
        return paillier_round(coordinator, n_devices, f"q{next(counter)}")

    total = benchmark(run)
    expected = float(sum(range(n_devices)))
    assert total == pytest.approx(expected)
    benchmark.extra_info["key_bits"] = key_bits
    benchmark.extra_info["n_devices"] = n_devices


@pytest.mark.benchmark(group="secure-agg")
@pytest.mark.parametrize("n_devices", [10, 50])
def test_bench_masking_sum(benchmark, n_devices):
    total = benchmark(lambda: masking_round(n_devices))
    assert total == pytest.approx(float(sum(range(n_devices))))
    benchmark.extra_info["n_devices"] = n_devices


@pytest.mark.benchmark(group="secure-agg")
@pytest.mark.parametrize("n_dropped", [0, 2])
def test_bench_resilient_masking(benchmark, n_dropped):
    """Dropout-resilient masking: cost of a round including recovery.

    The recovery path reconstructs one Shamir secret per (dropped, live)
    pair, so cost grows with dropped x survivors — the trade the
    protocol makes for tolerating churn at all.
    """
    from repro.crypto import MaskingDealer
    from repro.crypto.resilient_masking import ResilientAggregation

    n, threshold = 12, 7
    participants = MaskingDealer(n, threshold, rng=random.Random(1)).deal()
    dropped = set(range(n_dropped))
    rounds = iter(range(1_000_000))

    def run():
        round_id = next(rounds)
        aggregation = ResilientAggregation(n, threshold, round_id=round_id)
        for participant in participants:
            if participant.index in dropped:
                continue
            aggregation.accept(
                participant.index,
                participant.masked_value(1.0, round_id=round_id),
            )
        survivors = {
            p.index: p for p in participants if p.index not in dropped
        }
        return aggregation.recover_and_sum(survivors)

    total = benchmark(run)
    assert total == pytest.approx(float(n - n_dropped))
    benchmark.extra_info["n_dropped"] = n_dropped


@pytest.mark.benchmark(group="secure-agg")
def test_bench_keygen_cost(benchmark):
    """Key generation dominates setup; grows steeply with key size."""
    rng = random.Random(3)

    def generate():
        from repro.crypto import generate_keypair

        return generate_keypair(512, rng)

    keypair = benchmark(generate)
    assert keypair.public_key.n.bit_length() == 512


@pytest.mark.benchmark(group="secure-agg")
def test_bench_histogram_query(benchmark):
    coordinator = QueryCoordinator(key_bits=256, rng=random.Random(4))
    contributor = DeviceContributor(random.Random(5))
    bins = ["2g", "3g", "4g", "5g"]
    counter = iter(range(10_000))

    def run():
        query = coordinator.open_query(f"h{next(counter)}", bins=bins)
        aggregator = ObliviousAggregator(query)
        for index in range(20):
            aggregator.accept(
                contributor.contribute_category(query, bins[index % len(bins)])
            )
        return coordinator.decrypt_histogram(query, aggregator.encrypted_result())

    histogram = benchmark(run)
    assert histogram == {"2g": 5, "3g": 5, "4g": 5, "5g": 5}
