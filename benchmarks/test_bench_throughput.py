"""Component throughput benchmarks (performance regression guards).

Not tied to a paper claim; these keep the substrate fast enough that the
claim benches stay laptop-scale.  pytest-benchmark tracks the timings.
"""

import pytest

from repro.mobility.generator import GeneratorConfig, MobilityGenerator
from repro.privacy import (
    GeoIndistinguishabilityMechanism,
    PoiAttack,
    SpeedSmoothingMechanism,
)


@pytest.mark.benchmark(group="throughput")
def test_bench_generator(benchmark):
    config = GeneratorConfig(n_users=5, n_days=2, sampling_period=120.0)
    seeds = iter(range(10_000))

    def generate():
        return MobilityGenerator(config).generate(seed=next(seeds))

    population = benchmark(generate)
    assert population.dataset.n_records > 5000


@pytest.mark.benchmark(group="throughput")
def test_bench_speed_smoothing_protect(benchmark, population):
    mechanism = SpeedSmoothingMechanism(100.0)
    protected = benchmark(lambda: mechanism.protect(population.dataset, seed=1))
    assert len(protected) > 0


@pytest.mark.benchmark(group="throughput")
def test_bench_geo_ind_protect(benchmark, population):
    mechanism = GeoIndistinguishabilityMechanism(0.01)
    protected = benchmark(lambda: mechanism.protect(population.dataset, seed=1))
    assert protected.n_records == population.dataset.n_records


@pytest.mark.benchmark(group="throughput")
def test_bench_poi_attack(benchmark, population):
    """The audit's hot path: denoise + stay points + clustering."""
    target = population.dataset.slice_time(0, 2 * 86400.0)
    attack = PoiAttack(denoise_window=9)
    found = benchmark.pedantic(lambda: attack.run(target), iterations=1, rounds=2)
    assert len(found) == len(target)
