"""Ablations of the design choices DESIGN.md calls out.

1. POI-extraction thresholds (roam distance x dwell gate) — attack
   strength is threshold-sensitive; the defaults sit on the plateau.
2. Speed-smoothing resampling variant — chord vs curvilinear; the naive
   curvilinear variant leaks stops through GPS-jitter path length.
3. Attacker denoising window — why auditing against a denoising attacker
   is necessary (recall vs window under geo-indistinguishability).
"""

import pytest

from benchmarks.conftest import record_rows
from repro.privacy import (
    GeoIndistinguishabilityMechanism,
    PoiAttack,
    SpeedSmoothingMechanism,
    poi_recall,
)
from repro.privacy.pois import PoiExtractorConfig
from repro.units import HOUR, MINUTE


def mean_recall(population, dataset, attack: PoiAttack) -> float:
    found = attack.run(dataset)
    recalls = [
        poi_recall(
            population.truth.pois_of(user, min_total_dwell=2 * HOUR),
            found.get(user, []),
            radius_m=250.0,
        )
        for user in dataset.users
    ]
    return sum(recalls) / len(recalls)


@pytest.mark.benchmark(group="ablation")
def test_bench_extractor_thresholds(benchmark, population):
    """Attack strength across stay-point thresholds on raw data."""
    grid = [
        (100.0, 10 * MINUTE),
        (200.0, 15 * MINUTE),
        (200.0, 30 * MINUTE),
        (400.0, 15 * MINUTE),
        (400.0, 60 * MINUTE),
    ]

    def sweep():
        results = {}
        for roam, dwell in grid:
            config = PoiExtractorConfig(roam_distance_m=roam, min_dwell=dwell)
            attack = PoiAttack(config)
            results[(roam, dwell)] = mean_recall(population, population.dataset, attack)
        return results

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)
    rows = [
        {"roam_m": roam, "dwell_min": dwell / 60, "recall": round(recall, 2)}
        for (roam, dwell), recall in results.items()
    ]
    record_rows(benchmark, rows, claim="defaults sit on the recall plateau")
    # The default configuration is on the plateau: near-max recall.
    assert results[(200.0, 15 * MINUTE)] >= max(results.values()) - 0.1


@pytest.mark.benchmark(group="ablation")
def test_bench_resampling_variant(benchmark, population):
    """Chord vs curvilinear resampling inside speed smoothing."""

    def sweep():
        attack = PoiAttack(denoise_window=9)
        results = {}
        for variant in ("chord", "curvilinear"):
            mechanism = SpeedSmoothingMechanism(100.0, resampling=variant)
            protected = mechanism.protect(population.dataset, seed=3)
            results[variant] = mean_recall(population, protected, attack)
        return results

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)
    rows = [
        {"resampling": variant, "poi_recall": round(recall, 2)}
        for variant, recall in results.items()
    ]
    record_rows(benchmark, rows, claim="chord resampling is what hides stops")
    assert results["chord"] <= 0.3
    assert results["curvilinear"] >= results["chord"] + 0.3


@pytest.mark.benchmark(group="ablation")
def test_bench_attacker_denoise_window(benchmark, population):
    """Attack recall vs denoising window under geo-indistinguishability."""
    protected = GeoIndistinguishabilityMechanism(0.01).protect(
        population.dataset, seed=3
    )

    def sweep():
        return {
            window: mean_recall(
                population, protected, PoiAttack(denoise_window=window)
            )
            for window in (1, 5, 9, 15)
        }

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)
    rows = [
        {"window": window, "poi_recall": round(recall, 2)}
        for window, recall in results.items()
    ]
    record_rows(benchmark, rows, claim="naive audits undercount leakage")
    assert results[9] > results[1]  # denoising is what breaks geo-ind
