"""E6: virtual-sensor retrieval strategies (round-robin vs energy-aware).

100k-read stress of a virtual sensor over a heterogeneous-battery fleet.
Paper shape: energy-aware scheduling serves more reads (fewer dead-
battery refusals) and keeps battery levels fairer than round-robin.
"""

import numpy as np
import pytest

from benchmarks.conftest import record_rows
from repro.apisense.battery import Battery, BatteryModel
from repro.apisense.device import MobileDevice
from repro.apisense.scheduling import (
    CoverageGreedyStrategy,
    EnergyAwareStrategy,
    FairBudgetStrategy,
    RoundRobinStrategy,
)
from repro.apisense.sensors import default_sensor_suite
from repro.apisense.virtual_sensor import VirtualSensor
from repro.geo import SpatialGrid
from repro.simulation import Simulator
from repro.units import HOUR

#: Heavy per-read cost + no charging makes energy a real constraint:
#: a device starting at 5 % charge survives only ~10 reads.
STRESS_MODEL = BatteryModel(
    baseline_drain_per_hour=0.0,
    sensor_cost={"gps": 0.005},
    charge_per_hour=0.0,
)

N_READS = 800


def build_fleet(population, seed: int):
    rng = np.random.default_rng(seed)
    suite = default_sensor_suite(population.city, rng)
    devices = []
    for index, trajectory in enumerate(population.dataset):
        devices.append(
            MobileDevice(
                device_id=f"dev-{index}",
                user=trajectory.user,
                trajectory=trajectory,
                sensors=suite,
                # Heterogeneous initial charge: some phones nearly dead.
                battery=Battery(
                    STRESS_MODEL, level=float(rng.uniform(0.05, 1.0)), time=8 * HOUR
                ),
                seed=index,
            )
        )
    return devices


def run_strategy(population, strategy_factory, seed=17):
    sim = Simulator(start_time=8 * HOUR)
    devices = build_fleet(population, seed)
    sensor = VirtualSensor("vs", "gps", devices, strategy_factory(), sim, seed=5)
    for i in range(N_READS):
        sensor.read()
        sim.run_until(sim.now + 60.0)  # one read per simulated minute
    levels = list(sensor.battery_levels().values())
    return {
        "served": sensor.stats.reads_served,
        "unavailable": sensor.stats.reads_unavailable,
        "fairness": sensor.battery_fairness(),
        "dead": sum(1 for level in levels if level <= 0.0),
    }


STRATEGIES = {
    "round-robin": RoundRobinStrategy,
    "energy-aware": lambda: EnergyAwareStrategy(alpha=2.0),
    "fair-budget": FairBudgetStrategy,
}


@pytest.mark.benchmark(group="scheduling")
def test_bench_scheduling_strategies(benchmark, population):
    def sweep():
        results = {
            name: run_strategy(population, factory)
            for name, factory in STRATEGIES.items()
        }
        grid = SpatialGrid(population.city.bounding_box, cell_size_m=1000.0)
        results["coverage-greedy"] = run_strategy(
            population, lambda: CoverageGreedyStrategy(grid)
        )
        return results

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)
    rows = [
        {"strategy": name, **{k: round(v, 3) if isinstance(v, float) else v for k, v in metrics.items()}}
        for name, metrics in results.items()
    ]
    record_rows(benchmark, rows, claim="energy-aware serves more with fairer batteries")

    energy = results["energy-aware"]
    robin = results["round-robin"]
    assert energy["served"] >= robin["served"]
    assert energy["fairness"] >= robin["fairness"]
    assert energy["dead"] <= robin["dead"]
