"""E1 (Figure 1): the platform pipeline, deployment to dataset routing.

Measures a full simulated campaign — task publication, device sampling,
store-and-forward uploads, Hive routing — and checks the architecture's
flow invariants (everything a device collected reaches the Honeycomb).
"""

import pytest

from benchmarks.conftest import record_rows
from repro.apisense import Campaign, CampaignConfig, SensingTask, WinWinIncentive
from repro.units import DAY


def run_campaign(population, n_days: float):
    campaign = Campaign(
        population,
        incentive=WinWinIncentive(),
        config=CampaignConfig(n_days=n_days, seed=1),
    )
    honeycomb = campaign.deploy(
        SensingTask(
            name="mobility",
            sensors=("gps", "battery"),
            sampling_period=300.0,
            upload_period=1800.0,
            end=n_days * DAY,
        )
    )
    report = campaign.run()
    return campaign, honeycomb, report


@pytest.mark.benchmark(group="platform")
def test_bench_campaign_throughput(benchmark, population):
    campaign, honeycomb, report = benchmark.pedantic(
        lambda: run_campaign(population, n_days=2.0), iterations=1, rounds=3
    )
    rows = [
        {
            "devices": report.n_devices,
            "records": report.total_records,
            "uploads": report.uploads_per_task["mobility"],
            "messages": report.messages_sent,
            "events": report.events_processed,
            "acceptance": round(report.acceptance_rate_per_task["mobility"], 2),
        }
    ]
    record_rows(benchmark, rows)
    # Flow invariant of Figure 1: device data all lands at the Honeycomb.
    assert honeycomb.n_records("mobility") == report.total_records
    assert report.total_records > 0
    # Offloading works: more than half the community participates.
    assert report.acceptance_rate_per_task["mobility"] > 0.4


@pytest.mark.benchmark(group="platform")
def test_bench_event_rate(benchmark, population):
    """Simulator capacity: events per second of wall-clock."""

    def run():
        _, _, report = run_campaign(population, n_days=1.0)
        return report

    report = benchmark(run)
    assert report.events_processed > 3_000
