"""E2: "state-of-the-art protection still allows to re-identify at least
60 % of the points of interest" (paper Section 3).

Sweeps geo-indistinguishability budgets; for each, runs the POI attack
(with median denoising) and the POI-profile linkage attack against the
protected target period.  The paper's shape: at budgets that keep the
data usable (eps >= 0.005/m, i.e. <= 400 m mean displacement), POI
recall and linkage stay at or above 60 %.
"""

import pytest

from benchmarks.conftest import record_rows
from repro.privacy import (
    GeoIndistinguishabilityMechanism,
    PoiAttack,
    ReidentificationAttack,
    poi_recall,
    reidentification_rate,
)
from repro.units import HOUR

EPSILONS = [0.05, 0.01, 0.005, 0.001]


def attack_protected(population, attack_split, epsilon: float):
    background, target = attack_split
    mechanism = GeoIndistinguishabilityMechanism(epsilon)
    protected = mechanism.protect(target, seed=3)

    found = PoiAttack(denoise_window=9).run(protected)
    recalls = [
        poi_recall(
            population.truth.pois_of(user, min_total_dwell=2 * HOUR),
            found.get(user, []),
            radius_m=250.0,
        )
        for user in target.users
    ]
    recall = sum(recalls) / len(recalls)

    linker = ReidentificationAttack(denoise_window=9).fit(background)
    pseudo, secret = protected.pseudonymized()
    guesses = {p: r.guessed_user for p, r in linker.link(pseudo).items()}
    reident = reidentification_rate(secret, guesses)
    return recall, reident


@pytest.mark.benchmark(group="reident")
def test_bench_reident_sweep(benchmark, population, attack_split):
    def sweep():
        return {
            epsilon: attack_protected(population, attack_split, epsilon)
            for epsilon in EPSILONS
        }

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)
    rows = [
        {
            "epsilon_per_m": epsilon,
            "mean_displacement_m": round(2.0 / epsilon),
            "poi_recall": round(recall, 2),
            "reident_rate": round(reident, 2),
        }
        for epsilon, (recall, reident) in results.items()
    ]
    record_rows(benchmark, rows, claim=">=60% of POIs re-identified at usable budgets")

    # Paper shape: usable budgets leak >= 60 % of POIs...
    for epsilon in (0.05, 0.01, 0.005):
        recall, reident = results[epsilon]
        assert recall >= 0.6, f"eps={epsilon}: recall {recall}"
        assert reident >= 0.6, f"eps={epsilon}: reident {reident}"
    # ...and protection only improves once noise grows past usability.
    assert results[0.001][0] < results[0.05][0]
