"""E7: incentive strategies (feedback, ranking, rewarding, win-win).

Runs the same 10-day campaign under each incentive and compares collected
volume, end-of-campaign motivation and participation retention.  Paper
shape: incentives matter, win-win retains best, no-incentive decays.
"""

import pytest

from benchmarks.conftest import record_rows
from repro.apisense import (
    Campaign,
    CampaignConfig,
    FeedbackIncentive,
    NoIncentive,
    RankingIncentive,
    RewardIncentive,
    SensingTask,
    WinWinIncentive,
)
from repro.units import DAY

N_DAYS = 10

STRATEGIES = [
    NoIncentive(),
    FeedbackIncentive(),
    RankingIncentive(),
    RewardIncentive(credit_per_record=0.01),
    WinWinIncentive(),
]


def run_incentive(population, strategy):
    campaign = Campaign(
        population, incentive=strategy, config=CampaignConfig(n_days=N_DAYS, seed=9)
    )
    campaign.deploy(
        SensingTask(
            name="study",
            sensors=("gps",),
            sampling_period=600.0,
            upload_period=3600.0,
            end=N_DAYS * DAY,
        )
    )
    report = campaign.run()
    retention = (
        report.daily_participants[-1] / report.daily_participants[0]
        if report.daily_participants[0]
        else 0.0
    )
    return {
        "records": report.total_records,
        "motivation": round(report.mean_motivation, 2),
        "retention": round(retention, 2),
    }


@pytest.mark.benchmark(group="incentives")
def test_bench_incentive_strategies(benchmark, population):
    def sweep():
        return {s.name: run_incentive(population, s) for s in STRATEGIES}

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)
    rows = [{"strategy": name, **metrics} for name, metrics in results.items()]
    record_rows(benchmark, rows, claim="win-win retains; no incentive decays")

    assert results["win-win"]["records"] > results["none"]["records"]
    assert results["win-win"]["motivation"] > results["none"]["motivation"]
    assert results["win-win"]["retention"] >= results["none"]["retention"]
    # Every incentive beats doing nothing on community motivation.
    for name in ("feedback", "ranking", "reward", "win-win"):
        assert results[name]["motivation"] >= results["none"]["motivation"]
