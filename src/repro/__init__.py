"""repro: reproduction of "Towards a Practical Deployment of
Privacy-preserving Crowd-sensing Tasks" (Haderer et al., Middleware'14).

Two headline components, as in the paper:

- :mod:`repro.apisense` — the crowd-sensing middleware platform (Hive,
  Honeycombs, simulated devices, virtual sensors, incentives);
- :mod:`repro.core` — PRIVAPI, the privacy-preserving publication
  middleware (mechanism registry, empirical audit, utility-driven
  selection).

Supporting substrates: :mod:`repro.geo` (geodesy), :mod:`repro.mobility`
(synthetic workloads with ground truth), :mod:`repro.privacy`
(mechanisms, attacks, metrics), :mod:`repro.utility` (analyst tasks),
:mod:`repro.crypto` (secure aggregation), :mod:`repro.simulation`
(deterministic event loop), :mod:`repro.store` (sharded ingestion
pipeline + columnar dataset store behind the Hive), and
:mod:`repro.federation` (multi-hive scale-out: consistent-hash device
placement, inter-hive syndication and gossip, federated queries).

Quickstart::

    from repro.mobility import MobilityGenerator, GeneratorConfig
    from repro.core import PrivApi, PrivacyRequirement, CrowdedPlacesObjective

    population = MobilityGenerator(GeneratorConfig(n_users=20)).generate(seed=1)
    result = PrivApi().publish(
        population.dataset,
        requirement=PrivacyRequirement(max_poi_recall=0.2),
        objective=CrowdedPlacesObjective(),
    )
    print(result.report.to_text())
"""

from repro.core import (
    CrowdedPlacesObjective,
    DistortionObjective,
    PrivacyRequirement,
    PrivApi,
    PublicationResult,
    TrafficFlowObjective,
)
from repro.mobility import GeneratorConfig, MobilityDataset, MobilityGenerator

__version__ = "1.0.0"

__all__ = [
    "PrivApi",
    "PublicationResult",
    "PrivacyRequirement",
    "CrowdedPlacesObjective",
    "TrafficFlowObjective",
    "DistortionObjective",
    "MobilityGenerator",
    "GeneratorConfig",
    "MobilityDataset",
    "__version__",
]
