"""Synthetic mobility workload with known ground truth.

The paper evaluates PRIVAPI on a real-life GPS dataset that is not
available offline.  This package substitutes a POI-anchored generator that
reproduces the property every experiment depends on — the stop/move
structure of daily human mobility — while providing exact ground truth
(which places each user visited and when), something a real dataset cannot.
"""

from repro.mobility.city import City, CityConfig
from repro.mobility.dataset import MobilityDataset
from repro.mobility.generator import GeneratorConfig, MobilityGenerator, PopulationData
from repro.mobility.ground_truth import GroundTruth, PoiVisit, UserTruth
from repro.mobility.schedule import DailySchedule, Stay, UserProfile
from repro.mobility.stats import DatasetSummary, summarize

__all__ = [
    "DatasetSummary",
    "summarize",
    "City",
    "CityConfig",
    "MobilityDataset",
    "GeneratorConfig",
    "MobilityGenerator",
    "PopulationData",
    "GroundTruth",
    "PoiVisit",
    "UserTruth",
    "DailySchedule",
    "Stay",
    "UserProfile",
]
