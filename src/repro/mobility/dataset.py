"""The mobility dataset abstraction shared by the platform and PRIVAPI."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.errors import TrajectoryError
from repro.geo.bbox import BoundingBox
from repro.geo.point import GeoPoint, Record
from repro.geo.trajectory import Trajectory
from repro.units import DAY


class MobilityDataset:
    """A collection of per-user trajectories.

    This is the object PRIVAPI protects before publication: the middleware
    has *global knowledge* of it, which is exactly the design point the
    paper makes (the server sees the whole dataset and can pick the optimal
    anonymization strategy for it).
    """

    def __init__(self, trajectories: Iterable[Trajectory]):
        self._trajectories: dict[str, Trajectory] = {}
        for trajectory in trajectories:
            if trajectory.user in self._trajectories:
                raise TrajectoryError(
                    f"duplicate trajectory for user {trajectory.user!r}; merge "
                    "records into a single trajectory per user"
                )
            self._trajectories[trajectory.user] = trajectory

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._trajectories)

    def __iter__(self) -> Iterator[Trajectory]:
        return iter(self._trajectories.values())

    def __contains__(self, user: str) -> bool:
        return user in self._trajectories

    @property
    def users(self) -> list[str]:
        return list(self._trajectories)

    def get(self, user: str) -> Trajectory:
        if user not in self._trajectories:
            raise TrajectoryError(f"no trajectory for user {user!r}")
        return self._trajectories[user]

    @property
    def n_records(self) -> int:
        return sum(len(t) for t in self._trajectories.values())

    @property
    def bounding_box(self) -> BoundingBox:
        if not self._trajectories:
            raise TrajectoryError("bounding box of an empty dataset")
        boxes = [t.bounding_box for t in self._trajectories.values()]
        result = boxes[0]
        for box in boxes[1:]:
            result = result.union(box)
        return result

    def all_records(self) -> Iterator[tuple[str, Record]]:
        """Stream every (user, record) pair in the dataset."""
        for trajectory in self._trajectories.values():
            for record in trajectory.records:
                yield trajectory.user, record

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def map_trajectories(
        self, transform: Callable[[Trajectory], Trajectory | None]
    ) -> "MobilityDataset":
        """Apply a per-trajectory transform; ``None`` results are dropped."""
        transformed = []
        for trajectory in self._trajectories.values():
            result = transform(trajectory)
            if result is not None:
                transformed.append(result)
        return MobilityDataset(transformed)

    def slice_time(self, start: float, end: float) -> "MobilityDataset":
        """Restrict the dataset to records with ``start <= time < end``."""
        sliced = []
        for trajectory in self._trajectories.values():
            piece = trajectory.slice_time(start, end)
            if piece is not None:
                sliced.append(piece)
        return MobilityDataset(sliced)

    def split_by_day(self, day_length: float = DAY) -> Iterator[Trajectory]:
        """Stream every per-user, per-day sub-trajectory."""
        for trajectory in self._trajectories.values():
            yield from trajectory.split_by_day(day_length)

    def pseudonymized(self, prefix: str = "pseudo") -> tuple["MobilityDataset", dict[str, str]]:
        """Replace user ids with opaque pseudonyms.

        Returns the pseudonymized dataset and the secret ``pseudonym ->
        real user`` mapping (kept by the platform, *not* published).  The
        re-identification experiment (E2) tries to reconstruct this mapping
        from the published data alone.
        """
        mapping: dict[str, str] = {}
        renamed = []
        for index, user in enumerate(sorted(self._trajectories)):
            pseudonym = f"{prefix}-{index:04d}"
            mapping[pseudonym] = user
            renamed.append(self._trajectories[user].renamed(pseudonym))
        return MobilityDataset(renamed), mapping

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_csv(self, path: str | Path) -> None:
        """Write the dataset as ``user,time,lat,lon`` rows."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["user", "time", "lat", "lon"])
            for user, record in self.all_records():
                writer.writerow([user, f"{record.time:.3f}", f"{record.lat:.7f}", f"{record.lon:.7f}"])

    @classmethod
    def from_csv(cls, path: str | Path) -> "MobilityDataset":
        """Read a dataset previously written by :meth:`to_csv`."""
        per_user: dict[str, list[Record]] = {}
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            for row in reader:
                record = Record(
                    point=GeoPoint(float(row["lat"]), float(row["lon"])),
                    time=float(row["time"]),
                )
                per_user.setdefault(row["user"], []).append(record)
        return cls(
            Trajectory.from_records(user, records) for user, records in per_user.items()
        )
