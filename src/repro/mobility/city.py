"""Synthetic city model: the spatial canvas for mobility generation."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GeoError
from repro.geo.bbox import BoundingBox
from repro.geo.point import GeoPoint
from repro.geo.projection import LocalProjection


@dataclass(frozen=True)
class CityConfig:
    """Parameters of the synthetic city.

    The default city is a 10 km x 10 km square centred on Bordeaux (the
    venue of Middleware'14 — any city-scale extent works identically).
    """

    center: GeoPoint = field(default_factory=lambda: GeoPoint(44.8378, -0.5792))
    half_extent_m: float = 5_000.0
    n_residential: int = 120
    n_workplaces: int = 40
    n_leisure: int = 30
    #: Workplaces and leisure venues concentrate towards the center with
    #: this Gaussian spread (fraction of the half extent).
    downtown_spread: float = 0.35

    def __post_init__(self) -> None:
        if self.half_extent_m <= 0:
            raise GeoError(f"city half extent must be positive: {self.half_extent_m}")
        if min(self.n_residential, self.n_workplaces, self.n_leisure) < 1:
            raise GeoError("the city needs at least one place of each kind")


@dataclass(frozen=True)
class City:
    """A sampled city: pools of residential, work and leisure anchors.

    Residences are uniform over the extent; workplaces and leisure venues
    cluster downtown, which creates the shared hotspots the crowded-places
    utility metric (experiment E4) relies on.
    """

    config: CityConfig
    residential: tuple[GeoPoint, ...]
    workplaces: tuple[GeoPoint, ...]
    leisure: tuple[GeoPoint, ...]

    @classmethod
    def generate(cls, config: CityConfig, rng: np.random.Generator) -> "City":
        """Sample a city layout from ``config`` using ``rng``."""
        projection = LocalProjection(config.center)
        extent = config.half_extent_m

        def uniform_places(count: int) -> tuple[GeoPoint, ...]:
            xs = rng.uniform(-extent, extent, size=count)
            ys = rng.uniform(-extent, extent, size=count)
            return tuple(projection.to_point(x, y) for x, y in zip(xs, ys))

        def downtown_places(count: int) -> tuple[GeoPoint, ...]:
            spread = extent * config.downtown_spread
            xs = np.clip(rng.normal(0.0, spread, size=count), -extent, extent)
            ys = np.clip(rng.normal(0.0, spread, size=count), -extent, extent)
            return tuple(projection.to_point(x, y) for x, y in zip(xs, ys))

        return cls(
            config=config,
            residential=uniform_places(config.n_residential),
            workplaces=downtown_places(config.n_workplaces),
            leisure=downtown_places(config.n_leisure),
        )

    @property
    def bounding_box(self) -> BoundingBox:
        """The city extent as a geographic bounding box."""
        projection = LocalProjection(self.config.center)
        extent = self.config.half_extent_m
        south_west = projection.to_point(-extent, -extent)
        north_east = projection.to_point(extent, extent)
        return BoundingBox(
            south=south_west.lat,
            west=south_west.lon,
            north=north_east.lat,
            east=north_east.lon,
        )
