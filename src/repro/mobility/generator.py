"""POI-anchored synthetic mobility generator.

Generates a population of users, each with a home / work / leisure profile
drawn from a shared :class:`~repro.mobility.city.City`, then simulates day
after day of stay-and-commute movement sampled at a fixed GPS period with
configurable fix noise and dropout.  The output is a
:class:`~repro.mobility.dataset.MobilityDataset` plus exact
:class:`~repro.mobility.ground_truth.GroundTruth`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GeoError
from repro.geo.point import GeoPoint, Record
from repro.geo.projection import LocalProjection
from repro.geo.trajectory import Trajectory
from repro.mobility.city import City, CityConfig
from repro.mobility.dataset import MobilityDataset
from repro.mobility.ground_truth import GroundTruth, PoiVisit, UserTruth
from repro.mobility.schedule import DailySchedule, UserProfile
from repro.units import DAY


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the synthetic workload.

    The defaults produce a dataset comparable in structure to two weeks of
    a small deployment: enough days for POI profiles to stabilise, 60 s GPS
    period as in typical crowd-sensing campaigns.
    """

    n_users: int = 20
    n_days: int = 7
    sampling_period: float = 60.0
    gps_noise_m: float = 10.0
    #: Probability that any individual fix is lost (radio off, indoors...).
    dropout: float = 0.03
    leisure_per_user: int = 3
    city: CityConfig = field(default_factory=CityConfig)

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise GeoError("population must have at least one user")
        if self.n_days < 1:
            raise GeoError("need at least one day of data")
        if self.sampling_period <= 0:
            raise GeoError(f"sampling period must be positive: {self.sampling_period}")
        if not (0.0 <= self.dropout < 1.0):
            raise GeoError(f"dropout must be in [0, 1): {self.dropout}")


@dataclass
class PopulationData:
    """Everything the generator produces for one population."""

    dataset: MobilityDataset
    truth: GroundTruth
    profiles: dict[str, UserProfile]
    city: City


#: A movement plan segment in local metres: the user moves linearly from
#: (x0, y0) at t0 to (x1, y1) at t1.  Stays are segments with equal
#: endpoints.
_Segment = tuple[float, float, float, float, float, float]


class MobilityGenerator:
    """Deterministic (seeded) generator of synthetic mobility datasets."""

    def __init__(self, config: GeneratorConfig | None = None):
        self.config = config or GeneratorConfig()

    def generate(self, seed: int = 0) -> PopulationData:
        """Generate a full population; identical seeds give identical data."""
        rng = np.random.default_rng(seed)
        city = City.generate(self.config.city, rng)
        profiles = self._draw_profiles(city, rng)
        truth = GroundTruth(
            users={
                user: UserTruth(user=user, home=profile.home, work=profile.work)
                for user, profile in profiles.items()
            }
        )
        projection = LocalProjection(city.config.center)
        trajectories = []
        for user, profile in profiles.items():
            records: list[Record] = []
            for day in range(self.config.n_days):
                schedule = profile.sample_day(rng)
                self._record_truth(truth, user, schedule, day)
                segments = self._plan_segments(schedule, profile, projection)
                records.extend(
                    self._sample_day(segments, day, projection, rng)
                )
            trajectories.append(Trajectory.from_records(user, records))
        dataset = MobilityDataset(trajectories)
        return PopulationData(dataset=dataset, truth=truth, profiles=profiles, city=city)

    # ------------------------------------------------------------------
    # Profile sampling
    # ------------------------------------------------------------------

    def _draw_profiles(
        self, city: City, rng: np.random.Generator
    ) -> dict[str, UserProfile]:
        profiles: dict[str, UserProfile] = {}
        used_pairs: set[tuple[GeoPoint, GeoPoint]] = set()
        for index in range(self.config.n_users):
            # Distinct (home, work) pairs make users separable, which is
            # the property the re-identification attack exploits.
            for _ in range(100):
                home = city.residential[int(rng.integers(len(city.residential)))]
                work = city.workplaces[int(rng.integers(len(city.workplaces)))]
                if (home, work) not in used_pairs and home != work:
                    used_pairs.add((home, work))
                    break
            k = min(self.config.leisure_per_user, len(city.leisure))
            venues = tuple(
                city.leisure[i]
                for i in rng.choice(len(city.leisure), size=k, replace=False)
            )
            user = f"user-{index:04d}"
            profiles[user] = UserProfile(
                user=user,
                home=home,
                work=work,
                leisure=venues,
                work_start_mean=float(rng.uniform(8.0, 10.0)) * 3600.0,
                work_duration_mean=float(rng.uniform(7.0, 9.0)) * 3600.0,
                leisure_probability=float(rng.uniform(0.25, 0.6)),
                home_day_probability=float(rng.uniform(0.05, 0.2)),
                commute_speed=float(rng.uniform(6.0, 14.0)),
            )
        return profiles

    # ------------------------------------------------------------------
    # Day planning
    # ------------------------------------------------------------------

    @staticmethod
    def _record_truth(
        truth: GroundTruth, user: str, schedule: DailySchedule, day: int
    ) -> None:
        base = day * DAY
        for stay in schedule.stays:
            truth.add_visit(
                user,
                PoiVisit(
                    place=stay.place,
                    start=base + stay.start,
                    end=base + stay.end,
                    label=stay.label,
                ),
            )

    @staticmethod
    def _plan_segments(
        schedule: DailySchedule, profile: UserProfile, projection: LocalProjection
    ) -> list[_Segment]:
        """Compile a day schedule into a continuous piecewise-linear plan.

        Commutes depart as late as possible at the profile's commute speed,
        so the user lingers at the origin anchor (extending the stop — the
        realistic behaviour) rather than crawling between places.
        """
        segments: list[_Segment] = []
        stays = schedule.stays
        for index, stay in enumerate(stays):
            x, y = projection.to_xy(stay.place)
            segments.append((stay.start, stay.end, x, y, x, y))
            if index + 1 >= len(stays):
                break
            nxt = stays[index + 1]
            nx, ny = projection.to_xy(nxt.place)
            gap = nxt.start - stay.end
            distance = float(np.hypot(nx - x, ny - y))
            travel = distance / profile.commute_speed if distance > 0 else 0.0
            if travel >= gap or gap <= 0:
                # Commute fills (or overflows) the gap: move for the whole
                # gap; arrival position still reaches the next anchor.
                segments.append((stay.end, nxt.start, x, y, nx, ny))
            else:
                depart = nxt.start - travel
                segments.append((stay.end, depart, x, y, x, y))
                segments.append((depart, nxt.start, x, y, nx, ny))
        return segments

    # ------------------------------------------------------------------
    # GPS sampling
    # ------------------------------------------------------------------

    def _sample_day(
        self,
        segments: list[_Segment],
        day: int,
        projection: LocalProjection,
        rng: np.random.Generator,
    ) -> list[Record]:
        """Sample GPS fixes for one planned day, with noise and dropout."""
        period = self.config.sampling_period
        ticks = np.arange(0.0, DAY, period)
        # Small per-fix phase jitter keeps ticks strictly increasing while
        # avoiding aliasing artefacts across users.
        ticks = ticks + rng.uniform(0.0, 0.2 * period, size=ticks.shape)

        xs = np.empty_like(ticks)
        ys = np.empty_like(ticks)
        xs.fill(np.nan)
        ys.fill(np.nan)
        for t0, t1, x0, y0, x1, y1 in segments:
            if t1 <= t0:
                continue
            mask = (ticks >= t0) & (ticks < t1)
            if not mask.any():
                continue
            fraction = (ticks[mask] - t0) / (t1 - t0)
            xs[mask] = x0 + (x1 - x0) * fraction
            ys[mask] = y0 + (y1 - y0) * fraction
        valid = ~np.isnan(xs)
        if self.config.dropout > 0:
            valid &= rng.uniform(size=ticks.shape) >= self.config.dropout

        noise = self.config.gps_noise_m
        xs = xs + rng.normal(0.0, noise, size=ticks.shape)
        ys = ys + rng.normal(0.0, noise, size=ticks.shape)

        base = day * DAY
        records = []
        for keep, t, x, y in zip(valid, ticks, xs, ys):
            if not keep:
                continue
            records.append(Record(point=projection.to_point(x, y), time=base + float(t)))
        return records
