"""Mobility-analysis statistics over datasets.

Standard descriptive measures from the human-mobility literature, used
to sanity-check generated workloads against real-world stylised facts
and to characterise what a protected release preserves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geo.distance import centroid, haversine_m
from repro.geo.grid import SpatialGrid
from repro.geo.trajectory import Trajectory
from repro.mobility.dataset import MobilityDataset
from repro.units import DAY


def radius_of_gyration_m(trajectory: Trajectory) -> float:
    """Root-mean-square distance of fixes from their centroid (metres).

    The classic compactness measure of a user's mobility (Gonzalez et
    al., Nature 2008): commuters typically sit in the 1-10 km range.
    """
    center = centroid(trajectory.points)
    squared = [haversine_m(record.point, center) ** 2 for record in trajectory]
    return math.sqrt(sum(squared) / len(squared))


def daily_distance_km(trajectory: Trajectory) -> list[float]:
    """Path length travelled per day, in kilometres."""
    return [day.length_m / 1000.0 for day in trajectory.split_by_day(DAY)]


def visited_cell_entropy(trajectory: Trajectory, grid: SpatialGrid) -> float:
    """Shannon entropy (bits) of the user's cell-visit distribution.

    Low entropy = predictable user (a few dominant places); this is the
    property that makes POI profiles identifying.
    """
    counts: dict[tuple[int, int], int] = {}
    for record in trajectory:
        cell = grid.cell_of(record.point)
        counts[cell] = counts.get(cell, 0) + 1
    total = sum(counts.values())
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


@dataclass(frozen=True)
class DatasetSummary:
    """Descriptive statistics of a mobility dataset."""

    n_users: int
    n_records: int
    span_days: float
    mean_records_per_user: float
    mean_radius_of_gyration_km: float
    mean_daily_distance_km: float
    mean_cell_entropy_bits: float

    def to_text(self) -> str:
        return (
            f"users={self.n_users} records={self.n_records} "
            f"span={self.span_days:.1f}d "
            f"records/user={self.mean_records_per_user:.0f} "
            f"rgyr={self.mean_radius_of_gyration_km:.2f}km "
            f"daily={self.mean_daily_distance_km:.1f}km "
            f"entropy={self.mean_cell_entropy_bits:.2f}b"
        )


def summarize(dataset: MobilityDataset, cell_size_m: float = 500.0) -> DatasetSummary:
    """Compute a :class:`DatasetSummary` for a non-empty dataset."""
    if len(dataset) == 0:
        raise ValueError("cannot summarize an empty dataset")
    grid = SpatialGrid(dataset.bounding_box.expanded(0.005), cell_size_m)
    gyrations = []
    daily = []
    entropies = []
    for trajectory in dataset:
        gyrations.append(radius_of_gyration_m(trajectory) / 1000.0)
        daily.extend(daily_distance_km(trajectory))
        entropies.append(visited_cell_entropy(trajectory, grid))
    start = min(t.start_time for t in dataset)
    end = max(t.end_time for t in dataset)
    return DatasetSummary(
        n_users=len(dataset),
        n_records=dataset.n_records,
        span_days=(end - start) / DAY,
        mean_records_per_user=dataset.n_records / len(dataset),
        mean_radius_of_gyration_km=float(np.mean(gyrations)),
        mean_daily_distance_km=float(np.mean(daily)) if daily else 0.0,
        mean_cell_entropy_bits=float(np.mean(entropies)),
    )
