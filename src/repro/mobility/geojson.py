"""GeoJSON export: trajectories and POIs as standard map features.

Downstream users drop these files straight onto geojson.io / QGIS /
Leaflet to inspect raw and protected datasets side by side.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.geo.point import GeoPoint
from repro.geo.trajectory import Trajectory
from repro.mobility.dataset import MobilityDataset
from repro.privacy.pois import Poi


def trajectory_feature(trajectory: Trajectory) -> dict:
    """One LineString feature per trajectory (coordinates are lon, lat)."""
    return {
        "type": "Feature",
        "geometry": {
            "type": "LineString",
            "coordinates": [[record.lon, record.lat] for record in trajectory],
        },
        "properties": {
            "user": trajectory.user,
            "start": trajectory.start_time,
            "end": trajectory.end_time,
            "n_records": len(trajectory),
        },
    }


def poi_feature(poi: Poi | GeoPoint, user: str | None = None) -> dict:
    """One Point feature per POI (or bare point)."""
    if isinstance(poi, Poi):
        point, properties = poi.center, {
            "total_dwell": poi.total_dwell,
            "n_visits": poi.n_visits,
        }
    else:
        point, properties = poi, {}
    if user is not None:
        properties["user"] = user
    return {
        "type": "Feature",
        "geometry": {"type": "Point", "coordinates": [point.lon, point.lat]},
        "properties": properties,
    }


def dataset_to_geojson(dataset: MobilityDataset) -> dict:
    """A FeatureCollection with one LineString per user."""
    return {
        "type": "FeatureCollection",
        "features": [trajectory_feature(t) for t in dataset],
    }


def pois_to_geojson(pois_by_user: dict[str, Sequence[Poi]]) -> dict:
    """A FeatureCollection of every user's POIs."""
    features = []
    for user, pois in sorted(pois_by_user.items()):
        features.extend(poi_feature(poi, user) for poi in pois)
    return {"type": "FeatureCollection", "features": features}


def write_geojson(obj: dict, path: str | Path) -> None:
    """Serialize a GeoJSON dict to a file."""
    with open(path, "w") as handle:
        json.dump(obj, handle)
