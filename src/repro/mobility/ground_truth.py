"""Ground-truth records emitted alongside generated mobility data.

Real datasets force researchers to *infer* points of interest; the
generator knows them exactly, which is what lets the privacy experiments
compute true POI recall and re-identification rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geo.distance import haversine_m
from repro.geo.point import GeoPoint


@dataclass(frozen=True)
class PoiVisit:
    """One ground-truth dwell of a user at a place."""

    place: GeoPoint
    start: float
    end: float
    label: str

    @property
    def dwell(self) -> float:
        return self.end - self.start


@dataclass
class UserTruth:
    """All ground truth for one user: profile anchors and actual visits."""

    user: str
    home: GeoPoint
    work: GeoPoint
    visits: list[PoiVisit] = field(default_factory=list)

    def pois(self, min_total_dwell: float = 0.0) -> list[GeoPoint]:
        """Distinct places visited, ordered by total dwell (descending).

        Places visited for less than ``min_total_dwell`` seconds in total
        are dropped; an attacker cannot be expected to find those either.
        """
        totals: dict[GeoPoint, float] = {}
        for visit in self.visits:
            totals[visit.place] = totals.get(visit.place, 0.0) + visit.dwell
        ranked = sorted(totals.items(), key=lambda kv: -kv[1])
        return [place for place, dwell in ranked if dwell >= min_total_dwell]


@dataclass
class GroundTruth:
    """Ground truth for a whole generated population."""

    users: dict[str, UserTruth] = field(default_factory=dict)

    def add_visit(self, user: str, visit: PoiVisit) -> None:
        self.users[user].visits.append(visit)

    def pois_of(self, user: str, min_total_dwell: float = 0.0) -> list[GeoPoint]:
        return self.users[user].pois(min_total_dwell)

    def match_rate(
        self,
        user: str,
        found: list[GeoPoint],
        radius_m: float,
        min_total_dwell: float = 0.0,
    ) -> float:
        """Fraction of the user's true POIs matched by ``found`` points.

        A true POI counts as recovered when any found point lies within
        ``radius_m`` of it.  This is the paper's "re-identify X % of the
        points of interest" measure.
        """
        truth = self.pois_of(user, min_total_dwell)
        if not truth:
            return 0.0
        recovered = sum(
            1
            for true_poi in truth
            if any(haversine_m(true_poi, candidate) <= radius_m for candidate in found)
        )
        return recovered / len(truth)
