"""User profiles and daily schedules (stay/commute structure)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GeoError
from repro.geo.point import GeoPoint
from repro.units import DAY, HOUR, MINUTE


@dataclass(frozen=True)
class Stay:
    """One dwell period at a fixed place within a day.

    ``start`` and ``end`` are seconds from the day's midnight; ``place`` is
    the anchor point the user jitters around while staying.
    """

    place: GeoPoint
    start: float
    end: float
    label: str = "stay"

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise GeoError(f"stay ends before it starts: {self.start}..{self.end}")

    @property
    def dwell(self) -> float:
        """Dwell time in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class DailySchedule:
    """An ordered, non-overlapping sequence of stays for one day.

    Gaps between consecutive stays are commutes; the generator fills them
    with movement between the two anchors.
    """

    stays: tuple[Stay, ...]

    def __post_init__(self) -> None:
        for earlier, later in zip(self.stays, self.stays[1:]):
            if later.start < earlier.end:
                raise GeoError(
                    f"overlapping stays: {earlier.label} ends {earlier.end}, "
                    f"{later.label} starts {later.start}"
                )


@dataclass(frozen=True)
class UserProfile:
    """The stable behavioural profile of one synthetic user.

    The profile is the user's *ground-truth identity*: the home/work pair is
    what POI-based re-identification attacks exploit, so each user gets a
    distinct combination.
    """

    user: str
    home: GeoPoint
    work: GeoPoint
    leisure: tuple[GeoPoint, ...]
    #: Mean work start (seconds from midnight) around which days jitter.
    work_start_mean: float = 9 * HOUR
    work_duration_mean: float = 8 * HOUR
    #: Probability that a day includes an evening leisure stop.
    leisure_probability: float = 0.45
    #: Probability the user stays home all day (weekend / sick day).
    home_day_probability: float = 0.12
    #: Preferred commute speed in m/s (driving ~ 11, cycling ~ 5).
    commute_speed: float = 10.0

    def sample_day(self, rng: np.random.Generator) -> DailySchedule:
        """Draw one day's schedule from the profile's distributions."""
        if rng.uniform() < self.home_day_probability:
            return DailySchedule(
                stays=(Stay(self.home, 0.0, DAY, label="home"),)
            )

        work_start = self.work_start_mean + rng.normal(0.0, 30 * MINUTE)
        work_start = float(np.clip(work_start, 6 * HOUR, 11 * HOUR))
        work_end = work_start + self.work_duration_mean + rng.normal(0.0, 45 * MINUTE)
        work_end = float(np.clip(work_end, work_start + 4 * HOUR, 21 * HOUR))

        # Leave enough commute slack around the work stay.
        commute_slack = 45 * MINUTE
        stays = [Stay(self.home, 0.0, work_start - commute_slack, label="home")]
        stays.append(Stay(self.work, work_start, work_end, label="work"))

        cursor = work_end + commute_slack
        if self.leisure and rng.uniform() < self.leisure_probability:
            venue = self.leisure[int(rng.integers(len(self.leisure)))]
            leisure_end = cursor + float(rng.uniform(1 * HOUR, 2.5 * HOUR))
            leisure_end = min(leisure_end, DAY - 2 * HOUR)
            if leisure_end > cursor + 30 * MINUTE:
                stays.append(Stay(venue, cursor, leisure_end, label="leisure"))
                cursor = leisure_end + commute_slack

        if cursor < DAY - MINUTE:
            stays.append(Stay(self.home, cursor, DAY, label="home"))
        return DailySchedule(stays=tuple(stays))
