"""Origin-destination matrices: the transport planner's workhorse.

A *trip* is what happens between two *stops*, so OD extraction uses the
standard stay-point detector to find each user-day's stops, maps the
stop centres to planner zones (grid cells), and counts every ordered
pair of consecutive stop zones as one trip.  The utility score of a
protected release is the cosine similarity between its OD matrix and
the raw one — "would the planner see the same flows?".

OD analysis is inherently *stop-based*.  That makes it the analyst task
that does **not** survive speed smoothing (stops are exactly what
smoothing erases, so the protected release yields no trips at all),
while generalization mechanisms (cloaking, k-anonymity) preserve it at
zone granularity — the cleanest demonstration that PRIVAPI's
per-objective mechanism selection is necessary rather than nice-to-have.
"""

from __future__ import annotations

import numpy as np

from repro.geo.grid import CellIndex, SpatialGrid
from repro.geo.trajectory import Trajectory
from repro.mobility.dataset import MobilityDataset
from repro.privacy.pois import PoiExtractor, PoiExtractorConfig
from repro.units import DAY


def trip_zones(
    trajectory: Trajectory,
    grid: SpatialGrid,
    extractor: PoiExtractor,
) -> list[CellIndex]:
    """Zones of one (daily) trajectory's consecutive stops.

    Stops are stay points (time-dense dwell episodes); consecutive stops
    in the same zone collapse, since a zone-internal move is not a trip
    at this granularity.
    """
    zones: list[CellIndex] = []
    for stay in extractor.stay_points(trajectory):
        zone = grid.cell_of(stay.center)
        if not zones or zones[-1] != zone:
            zones.append(zone)
    return zones


def od_matrix(
    dataset: MobilityDataset,
    grid: SpatialGrid,
    stay_config: PoiExtractorConfig | None = None,
) -> dict[tuple[CellIndex, CellIndex], float]:
    """Trip counts between consecutive stop zones, over all user-days."""
    extractor = PoiExtractor(stay_config)
    matrix: dict[tuple[CellIndex, CellIndex], float] = {}
    for day in dataset.split_by_day(DAY):
        zones = trip_zones(day, grid, extractor)
        for origin, destination in zip(zones, zones[1:]):
            key = (origin, destination)
            matrix[key] = matrix.get(key, 0.0) + 1.0
    return matrix


def od_similarity(
    raw: dict[tuple[CellIndex, CellIndex], float],
    protected: dict[tuple[CellIndex, CellIndex], float],
) -> float:
    """Cosine similarity between two OD matrices (sparse dict form).

    An empty protected matrix scores 0: a release from which no trips
    can be extracted has no OD utility at all.
    """
    if not raw or not protected:
        return 0.0
    keys = set(raw) | set(protected)
    a = np.array([raw.get(key, 0.0) for key in keys])
    b = np.array([protected.get(key, 0.0) for key in keys])
    denom = float(np.linalg.norm(a) * np.linalg.norm(b))
    if denom == 0:
        return 0.0
    return float(np.dot(a, b) / denom)
