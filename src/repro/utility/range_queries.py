"""Range-query distortion: the standard utility metric of the era.

An analyst asks "how many (user, record) hits fall inside disc D during
window W?".  We sample a workload of random spatio-temporal discs over
the raw dataset's extent and compare the answers computed from raw vs
protected data.  The reported error is the mean relative error over the
workload — the metric the Promesse-line of work used to demonstrate that
time-distorted datasets still answer spatial analytics correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.geo.distance import haversine_m
from repro.geo.point import GeoPoint
from repro.geo.projection import LocalProjection
from repro.mobility.dataset import MobilityDataset


@dataclass(frozen=True)
class RangeQuery:
    """One spatio-temporal counting query."""

    center: GeoPoint
    radius_m: float
    t_start: float
    t_end: float

    def count(self, dataset: MobilityDataset) -> int:
        """Records of ``dataset`` inside the disc during the window."""
        hits = 0
        for trajectory in dataset:
            piece = trajectory.slice_time(self.t_start, self.t_end)
            if piece is None:
                continue
            for record in piece:
                if haversine_m(record.point, self.center) <= self.radius_m:
                    hits += 1
        return hits


def sample_query_workload(
    dataset: MobilityDataset,
    n_queries: int = 50,
    radius_range_m: tuple[float, float] = (500.0, 2000.0),
    duration_range: tuple[float, float] = (3600.0, 6 * 3600.0),
    seed: int = 0,
) -> list[RangeQuery]:
    """Random discs x windows over the dataset's spatio-temporal extent."""
    rng = np.random.default_rng(seed)
    bbox: BoundingBox = dataset.bounding_box
    projection = LocalProjection(bbox.center)
    half_x, half_y = projection.to_xy(bbox.north_east)
    start = min(t.start_time for t in dataset)
    end = max(t.end_time for t in dataset)

    queries = []
    for _ in range(n_queries):
        x = float(rng.uniform(-abs(half_x), abs(half_x)))
        y = float(rng.uniform(-abs(half_y), abs(half_y)))
        duration = float(rng.uniform(*duration_range))
        t0 = float(rng.uniform(start, max(start, end - duration)))
        queries.append(
            RangeQuery(
                center=projection.to_point(x, y),
                radius_m=float(rng.uniform(*radius_range_m)),
                t_start=t0,
                t_end=t0 + duration,
            )
        )
    return queries


def range_query_error(
    raw: MobilityDataset,
    protected: MobilityDataset,
    queries: list[RangeQuery],
    min_true_count: int = 5,
) -> float:
    """Mean relative error of protected answers over a query workload.

    Queries whose true answer is below ``min_true_count`` are skipped
    (relative error on near-empty queries is noise, the convention in
    the literature).  Record-count answers are normalized by each
    dataset's total record count first, so mechanisms that legitimately
    change the publication *rate* (downsampling, smoothing) are scored on
    distribution, not volume.
    """
    raw_total = raw.n_records
    protected_total = protected.n_records
    if raw_total == 0 or protected_total == 0:
        return float("inf")
    errors = []
    for query in queries:
        true_count = query.count(raw)
        if true_count < min_true_count:
            continue
        true_share = true_count / raw_total
        protected_share = query.count(protected) / protected_total
        errors.append(abs(protected_share - true_share) / true_share)
    if not errors:
        return float("inf")
    return float(np.mean(errors))
