"""One-call utility evaluation of a protected release.

Bundles every analyst task this package implements into a single
structured report, so operators (and the CLI) can see at a glance what a
given mechanism preserved and what it cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.grid import SpatialGrid
from repro.mobility.dataset import MobilityDataset
from repro.privacy.metrics import dataset_distortion_m, suppression_rate
from repro.utility.coverage import area_coverage, record_rate, temporal_coverage
from repro.utility.heatmap import density_similarity, footfall_density, hotspot_f1
from repro.utility.od_matrix import od_matrix, od_similarity
from repro.utility.traffic import flow_correlation, transit_counts


@dataclass(frozen=True)
class UtilityReport:
    """Every utility measure of one protected release vs its raw source."""

    hotspot_f1: float
    footfall_cosine: float
    transit_flow_correlation: float
    od_similarity: float
    spatial_distortion_m: float
    suppression: float
    area_coverage_ratio: float
    temporal_coverage_ratio: float
    record_rate_ratio: float

    def to_text(self) -> str:
        distortion = (
            f"{self.spatial_distortion_m:.0f} m"
            if self.spatial_distortion_m != float("inf")
            else "inf"
        )
        return "\n".join(
            [
                f"crowded places (hotspot F1):   {self.hotspot_f1:.2f}",
                f"footfall map (cosine):         {self.footfall_cosine:.2f}",
                f"traffic flows (rank corr.):    {self.transit_flow_correlation:.2f}",
                f"OD trip matrix (cosine):       {self.od_similarity:.2f}",
                f"spatial distortion:            {distortion}",
                f"users suppressed:              {self.suppression:.0%}",
                f"area coverage (vs raw):        {self.area_coverage_ratio:.2f}",
                f"temporal coverage (vs raw):    {self.temporal_coverage_ratio:.2f}",
                f"record rate (vs raw):          {self.record_rate_ratio:.2f}",
            ]
        )


def evaluate_release(
    raw: MobilityDataset,
    protected: MobilityDataset,
    cell_size_m: float = 500.0,
    od_cell_size_m: float = 2000.0,
    hotspot_k: int = 15,
    time_step: float = 120.0,
) -> UtilityReport:
    """Compute the full utility report of ``protected`` against ``raw``."""
    grid = SpatialGrid(raw.bounding_box.expanded(0.005), cell_size_m)
    od_grid = SpatialGrid(raw.bounding_box.expanded(0.005), od_cell_size_m)

    raw_footfall = footfall_density(raw, grid, time_step)
    protected_footfall = footfall_density(protected, grid, time_step)
    raw_flow = transit_counts(raw, grid, time_step).reshape(-1, 1)
    protected_flow = transit_counts(protected, grid, time_step).reshape(-1, 1)

    raw_rate = record_rate(raw)
    protected_rate = record_rate(protected)
    raw_area = area_coverage(raw, grid)
    protected_area = area_coverage(protected, grid)
    raw_temporal = temporal_coverage(raw)
    protected_temporal = temporal_coverage(protected)

    return UtilityReport(
        hotspot_f1=hotspot_f1(raw_footfall, protected_footfall, hotspot_k),
        footfall_cosine=density_similarity(raw_footfall, protected_footfall),
        transit_flow_correlation=flow_correlation(raw_flow, protected_flow),
        od_similarity=od_similarity(od_matrix(raw, od_grid), od_matrix(protected, od_grid)),
        spatial_distortion_m=dataset_distortion_m(raw, protected),
        suppression=suppression_rate(raw, protected),
        area_coverage_ratio=protected_area / raw_area if raw_area else 0.0,
        temporal_coverage_ratio=(
            protected_temporal / raw_temporal if raw_temporal else 0.0
        ),
        record_rate_ratio=protected_rate / raw_rate if raw_rate else 0.0,
    )
