"""Generic coverage measures of a published dataset."""

from __future__ import annotations

import numpy as np

from repro.geo.grid import SpatialGrid
from repro.mobility.dataset import MobilityDataset


def area_coverage(dataset: MobilityDataset, grid: SpatialGrid) -> float:
    """Fraction of grid cells containing at least one published record."""
    seen: set[tuple[int, int]] = set()
    for _, record in dataset.all_records():
        seen.add(grid.cell_of(record.point))
    return len(seen) / grid.n_cells


def temporal_coverage(dataset: MobilityDataset, window: float = 3600.0) -> float:
    """Fraction of time windows (over the dataset span) with any record.

    A mechanism that suppresses whole days or users leaves holes that
    this measure exposes even when spatial metrics look fine.
    """
    times = [record.time for _, record in dataset.all_records()]
    if not times:
        return 0.0
    start, end = min(times), max(times)
    n_windows = max(1, int(np.ceil((end - start) / window)))
    seen = {int((t - start) // window) for t in times}
    return len(seen) / n_windows


def record_rate(dataset: MobilityDataset) -> float:
    """Published records per user-hour (over each user's own span)."""
    total_records = 0
    total_hours = 0.0
    for trajectory in dataset:
        total_records += len(trajectory)
        total_hours += trajectory.duration / 3600.0
    if total_hours == 0:
        return 0.0
    return total_records / total_hours
