"""Utility evaluation of published mobility datasets.

The paper claims speed-smoothed datasets remain useful "for useful data
mining tasks such as finding out crowded places or predicting traffic".
This package implements both tasks plus generic coverage measures, each
scoring a *protected* dataset against the raw one.
"""

from repro.utility.heatmap import (
    DensityGrid,
    density_similarity,
    footfall_density,
    hotspot_f1,
    hotspot_overlap,
    presence_density,
)
from repro.utility.traffic import (
    TrafficModel,
    flow_correlation,
    seasonal_naive_error,
    traffic_matrix,
    transit_counts,
)
from repro.utility.coverage import area_coverage, record_rate, temporal_coverage
from repro.utility.od_matrix import od_matrix, od_similarity
from repro.utility.release_report import UtilityReport, evaluate_release
from repro.utility.range_queries import (
    RangeQuery,
    range_query_error,
    sample_query_workload,
)

__all__ = [
    "DensityGrid",
    "presence_density",
    "footfall_density",
    "density_similarity",
    "hotspot_f1",
    "hotspot_overlap",
    "transit_counts",
    "TrafficModel",
    "traffic_matrix",
    "flow_correlation",
    "seasonal_naive_error",
    "area_coverage",
    "record_rate",
    "temporal_coverage",
    "RangeQuery",
    "sample_query_workload",
    "range_query_error",
    "od_matrix",
    "od_similarity",
    "UtilityReport",
    "evaluate_release",
]
