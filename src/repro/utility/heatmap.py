"""Crowded-places utility: presence density grids and hotspot agreement.

The analyst's task: find where people concentrate.  We score a protected
dataset by building the same presence-density heatmap from raw and
protected data and comparing their top-k hotspot cells — the F1 score of
"the analyst would have pointed at the same places".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.grid import CellIndex, SpatialGrid
from repro.mobility.dataset import MobilityDataset


@dataclass(frozen=True)
class DensityGrid:
    """A presence-density heatmap over a spatial grid."""

    grid: SpatialGrid
    counts: np.ndarray  # shape (rows, cols), float

    def top_cells(self, k: int) -> set[CellIndex]:
        """The ``k`` densest cells (ties broken by row-major order)."""
        if k <= 0:
            return set()
        flat = self.counts.ravel()
        k = min(k, flat.size)
        order = np.argsort(-flat, kind="stable")[:k]
        cols = self.counts.shape[1]
        return {(int(i) // cols, int(i) % cols) for i in order if flat[i] > 0}

    def normalized(self) -> np.ndarray:
        """Counts as a probability distribution (sums to 1)."""
        total = self.counts.sum()
        if total == 0:
            return self.counts.copy()
        return self.counts / total


def presence_density(
    dataset: MobilityDataset,
    grid: SpatialGrid,
    time_step: float = 300.0,
) -> DensityGrid:
    """Time-uniform presence density of a dataset over ``grid``.

    Each trajectory is sampled every ``time_step`` seconds via linear
    interpolation, so mechanisms that change the record *rate* (speed
    smoothing publishes far fewer records) are compared fairly: what is
    measured is where users *spend time*, not how often their device
    reported.
    """
    counts = np.zeros((grid.rows, grid.cols), dtype=float)
    for trajectory in dataset:
        if trajectory.duration <= 0:
            continue
        times = np.arange(trajectory.start_time, trajectory.end_time, time_step)
        for time in times:
            row, col = grid.cell_of(trajectory.point_at_time(float(time)))
            counts[row, col] += 1.0
    return DensityGrid(grid=grid, counts=counts)


def footfall_density(
    dataset: MobilityDataset,
    grid: SpatialGrid,
    time_step: float = 60.0,
) -> DensityGrid:
    """Distinct-user footfall per cell: how many users visited each cell.

    This is the "finding out crowded places" task as an analyst actually
    poses it — *how many people were here* — and it depends only on the
    spatial shape of trajectories, not on dwell times.  Speed smoothing
    preserves shape, so footfall survives it (experiment E4); per-fix
    noise scatters shape, so footfall degrades under strong Laplace noise.
    """
    counts = np.zeros((grid.rows, grid.cols), dtype=float)
    for trajectory in dataset:
        visited: set[CellIndex] = set()
        if trajectory.duration <= 0:
            visited.add(grid.cell_of(trajectory.records[0].point))
        else:
            times = np.arange(trajectory.start_time, trajectory.end_time, time_step)
            for time in times:
                visited.add(grid.cell_of(trajectory.point_at_time(float(time))))
        for row, col in visited:
            counts[row, col] += 1.0
    return DensityGrid(grid=grid, counts=counts)


def hotspot_overlap(
    raw: DensityGrid, protected: DensityGrid, k: int = 10
) -> tuple[set[CellIndex], set[CellIndex]]:
    """The top-k hotspot cell sets of the raw and protected heatmaps."""
    return raw.top_cells(k), protected.top_cells(k)


def hotspot_f1(raw: DensityGrid, protected: DensityGrid, k: int = 10) -> float:
    """F1 agreement between raw and protected top-k hotspots.

    1.0 means the analyst finds exactly the same crowded places from the
    protected data; 0.0 means none of them.
    """
    truth, found = hotspot_overlap(raw, protected, k)
    if not truth and not found:
        return 1.0
    if not truth or not found:
        return 0.0
    intersection = len(truth & found)
    precision = intersection / len(found)
    recall = intersection / len(truth)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def density_similarity(raw: DensityGrid, protected: DensityGrid) -> float:
    """Cosine similarity between the two normalized density maps.

    A softer companion to hotspot F1 that rewards approximately-right
    mass placement instead of exact top-k membership.
    """
    a = raw.normalized().ravel()
    b = protected.normalized().ravel()
    denom = float(np.linalg.norm(a) * np.linalg.norm(b))
    if denom == 0:
        return 0.0
    return float(np.dot(a, b) / denom)
