"""Traffic-prediction utility.

The analyst's task: estimate how busy each area is over the day and
predict the near future.  We build a (cell x time-window) traffic matrix
from a dataset and score a protected dataset two ways:

- :func:`flow_correlation` — rank correlation between raw and protected
  traffic matrices (does the protected data rank busy cells/hours the
  same way?);
- :func:`seasonal_naive_error` — error of a seasonal-naive predictor
  *trained on protected data* but *evaluated against raw reality*, i.e.
  the operational cost of working from the anonymized release.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.grid import SpatialGrid
from repro.mobility.dataset import MobilityDataset
from repro.units import DAY


def traffic_matrix(
    dataset: MobilityDataset,
    grid: SpatialGrid,
    window: float = 1800.0,
    time_step: float = 300.0,
) -> np.ndarray:
    """Presence counts per (cell, absolute time window).

    Shape is ``(rows * cols, n_windows)`` where ``n_windows`` covers the
    dataset's time span.  Sampling is time-uniform (see
    :func:`repro.utility.heatmap.presence_density` for why).
    """
    start = min(t.start_time for t in dataset)
    end = max(t.end_time for t in dataset)
    n_windows = max(1, int(np.ceil((end - start) / window)))
    matrix = np.zeros((grid.rows * grid.cols, n_windows), dtype=float)
    for trajectory in dataset:
        if trajectory.duration <= 0:
            continue
        times = np.arange(trajectory.start_time, trajectory.end_time, time_step)
        for time in times:
            row, col = grid.cell_of(trajectory.point_at_time(float(time)))
            window_index = min(int((time - start) // window), n_windows - 1)
            matrix[row * grid.cols + col, window_index] += 1.0
    return matrix


def transit_counts(
    dataset: MobilityDataset,
    grid: SpatialGrid,
    time_step: float = 60.0,
) -> np.ndarray:
    """Cell-entry counts: how many times users *entered* each cell.

    This is spatial traffic volume ("which areas are busy thoroughfares"),
    the quantity road-traffic analyses start from.  It depends on the
    spatial shape of trajectories only, so it survives time-distorting
    mechanisms like speed smoothing; the time-windowed
    :func:`traffic_matrix` exposes the temporal resolution those
    mechanisms give up.

    Returns a flat array of length ``grid.n_cells``.
    """
    counts = np.zeros(grid.rows * grid.cols, dtype=float)
    for trajectory in dataset:
        if trajectory.duration <= 0:
            continue
        times = np.arange(trajectory.start_time, trajectory.end_time, time_step)
        previous: tuple[int, int] | None = None
        for time in times:
            cell = grid.cell_of(trajectory.point_at_time(float(time)))
            if cell != previous:
                row, col = cell
                counts[row * grid.cols + col] += 1.0
                previous = cell
    return counts


def _spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation of two flat arrays (numpy-only)."""
    if a.size != b.size or a.size < 2:
        raise ValueError("arrays must have equal size >= 2")

    def ranks(values: np.ndarray) -> np.ndarray:
        order = np.argsort(values, kind="stable")
        rank = np.empty_like(order, dtype=float)
        rank[order] = np.arange(values.size, dtype=float)
        # average ties
        sorted_values = values[order]
        i = 0
        while i < values.size:
            j = i
            while j + 1 < values.size and sorted_values[j + 1] == sorted_values[i]:
                j += 1
            if j > i:
                rank[order[i : j + 1]] = (i + j) / 2.0
            i = j + 1
        return rank

    ra, rb = ranks(a), ranks(b)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = float(np.sqrt((ra**2).sum() * (rb**2).sum()))
    if denom == 0:
        return 0.0
    return float((ra * rb).sum() / denom)


def flow_correlation(raw_matrix: np.ndarray, protected_matrix: np.ndarray) -> float:
    """Spearman correlation between raw and protected traffic matrices.

    Only entries where at least one matrix saw traffic participate, so
    the score is not inflated by the (huge, trivially-agreeing) set of
    always-empty cells.
    """
    if raw_matrix.shape != protected_matrix.shape:
        raise ValueError(
            f"matrix shapes differ: {raw_matrix.shape} vs {protected_matrix.shape}"
        )
    a = raw_matrix.ravel()
    b = protected_matrix.ravel()
    active = (a > 0) | (b > 0)
    if active.sum() < 2:
        return 0.0
    return _spearman(a[active], b[active])


@dataclass
class TrafficModel:
    """Seasonal-naive per-cell traffic predictor.

    Predicts the traffic of (cell, window-of-day) as the mean of that
    same window-of-day over the training days — the standard baseline for
    daily-periodic series.
    """

    windows_per_day: int
    profile: np.ndarray  # shape (n_cells, windows_per_day)

    @classmethod
    def fit(cls, matrix: np.ndarray, window: float) -> "TrafficModel":
        """Fit from an absolute-time traffic matrix (cells x windows)."""
        windows_per_day = max(1, int(round(DAY / window)))
        n_cells, n_windows = matrix.shape
        profile = np.zeros((n_cells, windows_per_day), dtype=float)
        counts = np.zeros(windows_per_day, dtype=float)
        for w in range(n_windows):
            slot = w % windows_per_day
            profile[:, slot] += matrix[:, w]
            counts[slot] += 1.0
        counts[counts == 0] = 1.0
        return cls(windows_per_day=windows_per_day, profile=profile / counts)

    def predict_day(self) -> np.ndarray:
        """Predicted traffic for one full day (cells x windows_per_day)."""
        return self.profile.copy()


def seasonal_naive_error(
    train_protected: np.ndarray,
    eval_raw: np.ndarray,
    window: float,
) -> float:
    """Normalized RMSE of a predictor trained on protected data.

    Fits :class:`TrafficModel` on the protected matrix, fits another on
    the raw matrix, and returns
    ``rmse(protected_model, raw_model) / mean(raw_model)`` — the relative
    error an analyst inherits by training on the anonymized release.
    Lower is better; 0 means the protected release trains an identical
    predictor.
    """
    protected_model = TrafficModel.fit(train_protected, window)
    raw_model = TrafficModel.fit(eval_raw, window)
    truth = raw_model.predict_day()
    estimate = protected_model.predict_day()
    rmse = float(np.sqrt(np.mean((truth - estimate) ** 2)))
    scale = float(truth.mean())
    if scale == 0:
        return float("inf")
    return rmse / scale
