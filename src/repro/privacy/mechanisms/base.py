"""Common interface of location-privacy mechanisms."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.geo.trajectory import Trajectory
from repro.mobility.dataset import MobilityDataset
from repro.units import DAY


class LocationPrivacyMechanism(ABC):
    """Transforms trajectories to reduce what they leak.

    Subclasses implement :meth:`protect_trajectory`; the default
    :meth:`protect` maps it over a whole dataset.  Mechanisms that operate
    on bounded time windows (the paper smooths "typically one day of
    data") set :attr:`per_day` so the dataset driver splits trajectories
    into days, protects each day, and re-assembles the user's trace.

    Mechanisms are deterministic given the seed passed to :meth:`protect`,
    which keeps every experiment reproducible.
    """

    #: Human-readable mechanism name used in reports and registries.
    name: str = "abstract"
    #: Whether :meth:`protect` should feed the mechanism one day at a time.
    per_day: bool = False

    @abstractmethod
    def protect_trajectory(
        self, trajectory: Trajectory, rng: np.random.Generator
    ) -> Trajectory | None:
        """Protect one trajectory; ``None`` suppresses it entirely."""

    def protect(self, dataset: MobilityDataset, seed: int = 0) -> MobilityDataset:
        """Protect every trajectory of a dataset.

        Users whose whole trace is suppressed simply disappear from the
        output dataset (suppression is a legitimate mechanism outcome).
        """
        rng = np.random.default_rng(seed)
        if not self.per_day:
            return dataset.map_trajectories(
                lambda trajectory: self.protect_trajectory(trajectory, rng)
            )
        return dataset.map_trajectories(
            lambda trajectory: self._protect_per_day(trajectory, rng)
        )

    def _protect_per_day(
        self, trajectory: Trajectory, rng: np.random.Generator
    ) -> Trajectory | None:
        protected_records = []
        for day in trajectory.split_by_day(DAY):
            protected = self.protect_trajectory(day, rng)
            if protected is not None:
                protected_records.extend(protected.records)
        if not protected_records:
            return None
        return Trajectory.from_records(trajectory.user, protected_records)

    def describe(self) -> dict[str, object]:
        """Mechanism name and parameters, for publication reports."""
        params = {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_")
        }
        return {"mechanism": self.name, **params}

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"
