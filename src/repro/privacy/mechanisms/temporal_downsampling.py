"""Temporal downsampling: publish at most one fix per time window."""

from __future__ import annotations

import numpy as np

from repro.errors import MechanismError
from repro.geo.point import Record
from repro.geo.trajectory import Trajectory
from repro.privacy.mechanisms.base import LocationPrivacyMechanism


class TemporalDownsamplingMechanism(LocationPrivacyMechanism):
    """Keeps the first fix of every ``window`` seconds, dropping the rest.

    Coarsening the sampling rate weakens dwell evidence (fewer records per
    stop) at a proportional cost in temporal resolution.  It is the
    simplest member of the registry and a useful lower bound: it degrades
    everything uniformly instead of targeting POIs.
    """

    name = "temporal-downsampling"

    def __init__(self, window: float):
        if window <= 0:
            raise MechanismError(f"window must be positive: {window}")
        self.window = window

    def protect_trajectory(
        self, trajectory: Trajectory, rng: np.random.Generator
    ) -> Trajectory | None:
        kept: list[Record] = []
        current_window = None
        for record in trajectory.records:
            window_index = int(record.time // self.window)
            if window_index != current_window:
                kept.append(record)
                current_window = window_index
        if not kept:
            return None
        return Trajectory(user=trajectory.user, records=tuple(kept))
