"""Location-privacy mechanisms available to PRIVAPI.

The paper's position is that there is no single always-best anonymization
strategy; PRIVAPI keeps a registry of mechanisms and picks per publication.
This package ships the paper's novel strategy (speed smoothing) plus the
baselines it is judged against.
"""

from repro.privacy.mechanisms.base import LocationPrivacyMechanism
from repro.privacy.mechanisms.identity import IdentityMechanism
from repro.privacy.mechanisms.geo_indistinguishability import (
    GeoIndistinguishabilityMechanism,
)
from repro.privacy.mechanisms.spatial_cloaking import SpatialCloakingMechanism
from repro.privacy.mechanisms.temporal_downsampling import (
    TemporalDownsamplingMechanism,
)
from repro.privacy.mechanisms.speed_smoothing import SpeedSmoothingMechanism
from repro.privacy.mechanisms.poi_suppression import PoiSuppressionMechanism
from repro.privacy.mechanisms.composite import CompositeMechanism
from repro.privacy.mechanisms.k_anonymity import KAnonymityCloakingMechanism

__all__ = [
    "LocationPrivacyMechanism",
    "IdentityMechanism",
    "GeoIndistinguishabilityMechanism",
    "SpatialCloakingMechanism",
    "TemporalDownsamplingMechanism",
    "SpeedSmoothingMechanism",
    "PoiSuppressionMechanism",
    "CompositeMechanism",
    "KAnonymityCloakingMechanism",
]
