"""Spatial k-anonymity cloaking (Gruteser & Grunwald style).

Each published position is generalized to the centre of the smallest
grid region that at least ``k`` distinct users of the dataset visit.
Unlike fixed-pitch cloaking, the region size *adapts to density*: dense
downtown cells stay fine-grained, sparse suburbs coarsen until k users
share them.

This mechanism is the registry's cleanest showcase of PRIVAPI's "global
knowledge of the whole system": the anonymity sets are computed from the
entire dataset, which an on-device mechanism could never do.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MechanismError
from repro.geo.grid import SpatialGrid
from repro.geo.point import GeoPoint
from repro.geo.trajectory import Trajectory
from repro.mobility.dataset import MobilityDataset
from repro.privacy.mechanisms.base import LocationPrivacyMechanism


class KAnonymityCloakingMechanism(LocationPrivacyMechanism):
    """Density-adaptive cloaking with per-region anonymity >= ``k``.

    Parameters
    ----------
    k:
        Minimum number of distinct users per published region.
    base_cell_m:
        Finest region size; regions double (base, 2x, 4x, ...) until the
        anonymity constraint is met, up to ``max_levels`` doublings.
        Positions whose region never reaches ``k`` users are suppressed.
    """

    name = "k-anonymity-cloaking"

    def __init__(self, k: int = 5, base_cell_m: float = 250.0, max_levels: int = 6):
        if k < 2:
            raise MechanismError(f"k must be >= 2: {k}")
        if base_cell_m <= 0:
            raise MechanismError(f"base cell must be positive: {base_cell_m}")
        if max_levels < 1:
            raise MechanismError(f"max_levels must be >= 1: {max_levels}")
        self.k = k
        self.base_cell_m = base_cell_m
        self.max_levels = max_levels
        self._grids: list[SpatialGrid] | None = None
        self._user_counts: list[dict[tuple[int, int], int]] | None = None

    # ------------------------------------------------------------------
    # Dataset-level pass: build the anonymity-set index
    # ------------------------------------------------------------------

    def protect(self, dataset: MobilityDataset, seed: int = 0) -> MobilityDataset:
        bbox = dataset.bounding_box.expanded(0.01)
        self._grids = [
            SpatialGrid(bbox, self.base_cell_m * (2**level))
            for level in range(self.max_levels)
        ]
        self._user_counts = []
        for grid in self._grids:
            visitors: dict[tuple[int, int], set[str]] = {}
            for user, record in dataset.all_records():
                visitors.setdefault(grid.cell_of(record.point), set()).add(user)
            self._user_counts.append(
                {cell: len(users) for cell, users in visitors.items()}
            )
        try:
            return super().protect(dataset, seed)
        finally:
            self._grids = None
            self._user_counts = None

    # ------------------------------------------------------------------
    # Per-record generalization
    # ------------------------------------------------------------------

    def _generalize(self, point: GeoPoint) -> GeoPoint | None:
        assert self._grids is not None and self._user_counts is not None
        for grid, counts in zip(self._grids, self._user_counts):
            cell = grid.cell_of(point)
            if counts.get(cell, 0) >= self.k:
                return grid.center_of(cell)
        return None

    def protect_trajectory(
        self, trajectory: Trajectory, rng: np.random.Generator
    ) -> Trajectory | None:
        if self._grids is None:
            raise MechanismError(
                "k-anonymity cloaking needs the whole dataset; call protect() "
                "rather than protect_trajectory()"
            )
        kept = []
        for record in trajectory.records:
            generalized = self._generalize(record.point)
            if generalized is not None:
                kept.append(record.moved(generalized))
        if len(kept) < 2:
            return None
        return Trajectory(user=trajectory.user, records=tuple(kept))
