"""Mechanism composition: apply several strategies in sequence.

PRIVAPI's registry benefits from compositions — e.g. speed smoothing
followed by light planar-Laplace noise hides stops *and* adds per-point
deniability along the path.  The composite presents itself as a single
mechanism so the audit and report treat it uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MechanismError
from repro.geo.trajectory import Trajectory
from repro.mobility.dataset import MobilityDataset
from repro.privacy.mechanisms.base import LocationPrivacyMechanism


class CompositeMechanism(LocationPrivacyMechanism):
    """Applies member mechanisms left to right.

    Dataset-level ``protect`` chains the members' own ``protect``
    implementations, so per-day members split days and dataset-aware
    members (grid cloaking) anchor on the intermediate dataset exactly as
    they would standalone.
    """

    def __init__(self, mechanisms: list[LocationPrivacyMechanism]):
        if len(mechanisms) < 2:
            raise MechanismError("a composite needs at least two member mechanisms")
        self.mechanisms = list(mechanisms)
        self.name = "+".join(mechanism.name for mechanism in self.mechanisms)

    def protect_trajectory(
        self, trajectory: Trajectory, rng: np.random.Generator
    ) -> Trajectory | None:
        current: Trajectory | None = trajectory
        for mechanism in self.mechanisms:
            if current is None:
                return None
            current = mechanism.protect_trajectory(current, rng)
        return current

    def protect(self, dataset: MobilityDataset, seed: int = 0) -> MobilityDataset:
        current = dataset
        for offset, mechanism in enumerate(self.mechanisms):
            current = mechanism.protect(current, seed=seed + offset)
        return current

    def describe(self) -> dict[str, object]:
        return {
            "mechanism": self.name,
            "members": [mechanism.describe() for mechanism in self.mechanisms],
        }
