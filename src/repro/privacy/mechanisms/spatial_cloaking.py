"""Spatial cloaking: snap every fix to the centre of a grid cell."""

from __future__ import annotations

import numpy as np

from repro.errors import MechanismError
from repro.geo.grid import SpatialGrid
from repro.geo.trajectory import Trajectory
from repro.mobility.dataset import MobilityDataset
from repro.privacy.mechanisms.base import LocationPrivacyMechanism


class SpatialCloakingMechanism(LocationPrivacyMechanism):
    """Grid generalization baseline.

    Every fix is replaced by the centre of its grid cell, so the adversary
    learns positions only at ``cell_size_m`` granularity.  When protecting
    a whole dataset the grid is anchored on the *dataset* bounding box —
    an example of the global knowledge PRIVAPI has — so all users share
    cell boundaries; a standalone trajectory falls back to its own box.
    """

    name = "spatial-cloaking"

    def __init__(self, cell_size_m: float):
        if cell_size_m <= 0:
            raise MechanismError(f"cell size must be positive: {cell_size_m}")
        self.cell_size_m = cell_size_m
        self._grid: SpatialGrid | None = None

    def protect(self, dataset: MobilityDataset, seed: int = 0) -> MobilityDataset:
        self._grid = SpatialGrid(
            bbox=dataset.bounding_box.expanded(0.01), cell_size_m=self.cell_size_m
        )
        try:
            return super().protect(dataset, seed)
        finally:
            self._grid = None

    def protect_trajectory(
        self, trajectory: Trajectory, rng: np.random.Generator
    ) -> Trajectory:
        grid = self._grid or SpatialGrid(
            bbox=trajectory.bounding_box.expanded(0.01), cell_size_m=self.cell_size_m
        )
        return trajectory.map_points(lambda record: grid.snap(record.point))
