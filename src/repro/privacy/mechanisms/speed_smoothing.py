"""Speed smoothing: the paper's novel anonymization strategy.

Section 3 of the paper: *"we use an algorithm that smoothes speed along a
trajectory (typically one day of data) to guarantee that speed is
constant. This still allows to analyze the trajectory of a user but
prevents to find out places where he stopped during his day."*

The algorithm (later published as *Promesse*, Primault et al. 2015) has
three steps per daily trajectory:

1. **Spatial resampling** — emit a point each time the user has moved
   ``epsilon_m`` metres (chord distance) away from the last emitted
   point, discarding the original fix times.  A dwell episode emits *no*
   points at all: GPS jitter at a stop accumulates curvilinear length but
   never strays ``epsilon_m`` from the last emitted point.
2. **Edge trimming** — drop the first and last emitted points, hiding the
   exact start/end locations (usually home).
3. **Uniform re-timestamping** — assign timestamps linearly between the
   day's original start and end times, which makes speed exactly constant
   along the published path.

The published trace keeps the *shape* of the day's movement (so flows and
crowded places remain measurable — experiments E4/E5) while destroying
both the spatial density and the time-density signatures every stay-point
detector relies on (E3).

The constructor's ``resampling`` switch also offers the naive
*curvilinear* variant (uniform distance along the noisy path) as an
ablation: it looks equivalent on paper but leaks stops, because fix noise
turns an 8-hour dwell into kilometres of path length and therefore into a
dense cluster of resampled points.  Experiment ``bench_poi_ablation``
quantifies the difference.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MechanismError
from repro.geo.point import Record
from repro.geo.trajectory import Trajectory
from repro.privacy.mechanisms.base import LocationPrivacyMechanism

_RESAMPLINGS = ("chord", "curvilinear")


class SpeedSmoothingMechanism(LocationPrivacyMechanism):
    """Constant-speed rewriting of each daily trajectory.

    Parameters
    ----------
    epsilon_m:
        Resampling step in metres.  Larger steps hide stops harder (and
        trim more of the edges) at the cost of spatial resolution.  100 m
        is the paper-era default.
    resampling:
        ``"chord"`` (the robust default, see module docstring) or
        ``"curvilinear"`` (ablation variant).
    min_points:
        Daily traces yielding fewer resampled points than this are
        *suppressed*: the user barely moved, and a constant-speed rewrite
        could only paint a blob on their home.
    """

    name = "speed-smoothing"
    per_day = True

    def __init__(
        self,
        epsilon_m: float = 100.0,
        resampling: str = "chord",
        min_points: int = 4,
    ):
        if epsilon_m <= 0:
            raise MechanismError(f"resampling step must be positive: {epsilon_m}")
        if resampling not in _RESAMPLINGS:
            raise MechanismError(
                f"unknown resampling {resampling!r}; expected one of {_RESAMPLINGS}"
            )
        if min_points < 4:
            raise MechanismError(
                f"min_points must be >= 4 so trimming leaves a publishable "
                f"path (got {min_points})"
            )
        self.epsilon_m = epsilon_m
        self.resampling = resampling
        self.min_points = min_points

    def protect_trajectory(
        self, trajectory: Trajectory, rng: np.random.Generator
    ) -> Trajectory | None:
        if trajectory.duration <= 0:
            return None
        if self.resampling == "chord":
            resampled = trajectory.resample_chord(self.epsilon_m)
        else:
            resampled = trajectory.resample_uniform_distance(self.epsilon_m)
        if len(resampled) < self.min_points:
            return None

        # Trim both ends to hide the exact departure/arrival places.
        trimmed = resampled[1:-1]
        times = np.linspace(trajectory.start_time, trajectory.end_time, num=len(trimmed))
        records = tuple(
            Record(point=point, time=float(time))
            for point, time in zip(trimmed, times)
        )
        return Trajectory(user=trajectory.user, records=records)
