"""The no-op mechanism, used as the unprotected control in experiments."""

from __future__ import annotations

import numpy as np

from repro.geo.trajectory import Trajectory
from repro.privacy.mechanisms.base import LocationPrivacyMechanism


class IdentityMechanism(LocationPrivacyMechanism):
    """Publishes trajectories unchanged.

    Serves as the control arm of every experiment: attack success against
    the identity mechanism is the ceiling, utility under it the reference.
    """

    name = "identity"

    def protect_trajectory(
        self, trajectory: Trajectory, rng: np.random.Generator
    ) -> Trajectory:
        return trajectory
