"""POI suppression: erase records near detected stops.

A defender-side use of the POI extractor: find the dwell episodes in each
trajectory and delete every record within ``erase_radius_m`` of a stay
centre (plus the stay's records themselves).  The classic alternative to
speed smoothing — it removes the sensitive *places* but leaves the
movement between them at full fidelity, so timing analyses survive while
coverage near POIs (where people actually are) is lost.

Included both as a registry candidate and as the comparison point that
motivates the paper's preference for smoothing: suppression visibly
punches holes around exactly the places that make data valuable
(workplaces, venues), whereas smoothing keeps the path through them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MechanismError
from repro.geo.distance import haversine_m
from repro.geo.trajectory import Trajectory
from repro.privacy.mechanisms.base import LocationPrivacyMechanism
from repro.privacy.pois import PoiExtractor, PoiExtractorConfig


class PoiSuppressionMechanism(LocationPrivacyMechanism):
    """Deletes every record close to a detected stay point.

    Parameters
    ----------
    erase_radius_m:
        Records within this distance of any stay-point centre are
        removed.  Should exceed the extractor's roam gate, otherwise the
        edges of a dwell survive and re-cluster.
    extractor_config:
        Thresholds of the defender's own stay-point detection; defaults
        match the attack's defaults (defend against what will be tried).
    """

    name = "poi-suppression"
    per_day = True

    def __init__(
        self,
        erase_radius_m: float = 400.0,
        extractor_config: PoiExtractorConfig | None = None,
    ):
        if erase_radius_m <= 0:
            raise MechanismError(f"erase radius must be positive: {erase_radius_m}")
        self.erase_radius_m = erase_radius_m
        self._extractor = PoiExtractor(extractor_config)

    def protect_trajectory(
        self, trajectory: Trajectory, rng: np.random.Generator
    ) -> Trajectory | None:
        stays = self._extractor.stay_points(trajectory)
        if not stays:
            return trajectory
        centres = [stay.center for stay in stays]
        kept = tuple(
            record
            for record in trajectory.records
            if all(
                haversine_m(record.point, centre) > self.erase_radius_m
                for centre in centres
            )
        )
        if len(kept) < 2:
            return None
        return Trajectory(user=trajectory.user, records=kept)
