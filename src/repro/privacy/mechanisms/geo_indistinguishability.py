"""Geo-indistinguishability: the state-of-the-art baseline of the paper.

Implements the planar Laplace mechanism of Andrés et al. (CCS'13), the
mechanism the paper's reference [3] (Primault et al., MOST'14) evaluates
and finds wanting: applied at usable privacy budgets it perturbs each fix
independently, so dwell episodes survive as dense noisy clouds around the
true stop and POI extraction still succeeds — the "at least 60 % of POIs
re-identified" claim reproduced by experiment E2.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import MechanismError
from repro.geo.projection import LocalProjection
from repro.geo.trajectory import Trajectory
from repro.privacy.mechanisms.base import LocationPrivacyMechanism


class GeoIndistinguishabilityMechanism(LocationPrivacyMechanism):
    """Planar Laplace noise, calibrated by ``epsilon`` (in 1/metres).

    Each fix is displaced by a polar-Laplace sample: angle uniform in
    [0, 2pi), radius Gamma(shape=2, scale=1/epsilon) — the exact radial
    law of the planar Laplace distribution.  Smaller epsilon = more noise.
    """

    name = "geo-indistinguishability"

    def __init__(self, epsilon: float):
        if epsilon <= 0:
            raise MechanismError(f"epsilon must be positive: {epsilon}")
        self.epsilon = epsilon

    @classmethod
    def from_radius(cls, level: float, radius_m: float) -> "GeoIndistinguishabilityMechanism":
        """Calibrate from the (l, r) formulation of geo-indistinguishability.

        ``level`` is the privacy level to guarantee within ``radius_m``
        metres; the resulting budget is ``epsilon = level / radius_m``.
        E.g. ``from_radius(math.log(4), 200)`` protects each fix within a
        200 m disc at level ln(4).
        """
        if radius_m <= 0:
            raise MechanismError(f"radius must be positive: {radius_m}")
        return cls(epsilon=level / radius_m)

    def expected_displacement_m(self) -> float:
        """Mean displacement of one fix: E[Gamma(2, 1/eps)] = 2/eps."""
        return 2.0 / self.epsilon

    def protect_trajectory(
        self, trajectory: Trajectory, rng: np.random.Generator
    ) -> Trajectory:
        projection = LocalProjection(trajectory.bounding_box.center)
        n = len(trajectory)
        radii = rng.gamma(shape=2.0, scale=1.0 / self.epsilon, size=n)
        angles = rng.uniform(0.0, 2.0 * math.pi, size=n)
        dxs = radii * np.cos(angles)
        dys = radii * np.sin(angles)
        records = tuple(
            record.moved(projection.translate(record.point, float(dx), float(dy)))
            for record, dx, dy in zip(trajectory.records, dxs, dys)
        )
        return Trajectory(user=trajectory.user, records=records)
