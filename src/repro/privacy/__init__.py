"""PRIVAPI's algorithmic core: POI analysis, mechanisms, attacks, metrics.

The threat model follows the paper: points of interest (POIs) — places
where a user dwells — leak semantics and identity.  This package provides

- POI extraction (:mod:`repro.privacy.pois`), used both defensively (to
  audit a dataset) and offensively (the attacker's tool);
- location-privacy mechanisms (:mod:`repro.privacy.mechanisms`), including
  the paper's novel *speed smoothing* and the state-of-the-art baseline it
  is compared against (geo-indistinguishability);
- attacks (:mod:`repro.privacy.attacks`): POI retrieval and POI-profile
  re-identification;
- privacy metrics (:mod:`repro.privacy.metrics`);
- secure-aggregation orchestration (:mod:`repro.privacy.
  secure_aggregation`): the :mod:`repro.crypto` protocols (Paillier,
  pairwise masking, Shamir-backed dropout recovery) run as a platform
  service over a task's enrolled devices, with per-device protocol
  selection — the integration points are
  :meth:`repro.federation.query.FederatedDataset.secure_aggregate` and
  :meth:`repro.federation.streams.FederatedStreamMerger.secure_totals`.
"""

from repro.privacy.pois import Poi, PoiExtractor, PoiExtractorConfig, StayPoint
from repro.privacy.mechanisms import (
    GeoIndistinguishabilityMechanism,
    IdentityMechanism,
    LocationPrivacyMechanism,
    SpatialCloakingMechanism,
    SpeedSmoothingMechanism,
    TemporalDownsamplingMechanism,
)
from repro.privacy.attacks import (
    HomeIdentificationAttack,
    PoiAttack,
    ReidentificationAttack,
    home_identification_rate,
)
from repro.privacy.budget import PrivacyBudgetLedger, UserBudget
from repro.privacy.secure_aggregation import (
    PROTOCOLS,
    ParticipantProfile,
    SecureAggregate,
    SecureAggregationPolicy,
    SecureAggregationSession,
    histogram_components,
)
from repro.privacy.metrics import (
    mean_spatial_distortion_m,
    poi_precision,
    poi_recall,
    reidentification_rate,
)

__all__ = [
    "Poi",
    "PoiExtractor",
    "PoiExtractorConfig",
    "StayPoint",
    "LocationPrivacyMechanism",
    "IdentityMechanism",
    "GeoIndistinguishabilityMechanism",
    "SpatialCloakingMechanism",
    "SpeedSmoothingMechanism",
    "TemporalDownsamplingMechanism",
    "PoiAttack",
    "ReidentificationAttack",
    "HomeIdentificationAttack",
    "home_identification_rate",
    "PrivacyBudgetLedger",
    "UserBudget",
    "PROTOCOLS",
    "ParticipantProfile",
    "SecureAggregate",
    "SecureAggregationPolicy",
    "SecureAggregationSession",
    "histogram_components",
    "mean_spatial_distortion_m",
    "poi_precision",
    "poi_recall",
    "reidentification_rate",
]
