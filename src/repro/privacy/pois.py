"""Point-of-interest extraction from mobility traces.

Implements the classic two-stage pipeline:

1. **Stay-point detection** (Hariharan & Toyama style): scan a trajectory
   for maximal record runs that remain within ``roam_distance_m`` of their
   first record and span at least ``min_dwell`` seconds.
2. **Stay-point clustering**: greedily merge stay points whose centroids
   lie within ``merge_radius_m`` into POIs, accumulating dwell time.

The same extractor serves the defender (auditing what a dataset leaks) and
the attacker (recovering POIs from a *protected* dataset) — which is
exactly why the paper's speed-smoothing strategy targets the temporal
signature this pipeline depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MechanismError
from repro.geo.distance import centroid, haversine_m
from repro.geo.point import GeoPoint
from repro.geo.trajectory import Trajectory
from repro.units import MINUTE


@dataclass(frozen=True)
class StayPoint:
    """A maximal dwell episode found in one trajectory."""

    center: GeoPoint
    start: float
    end: float
    n_records: int

    @property
    def dwell(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Poi:
    """A clustered point of interest: one or more stay points merged."""

    center: GeoPoint
    total_dwell: float
    n_visits: int


@dataclass(frozen=True)
class PoiExtractorConfig:
    """Thresholds of the extraction pipeline.

    The defaults (200 m roam gate, 15 min dwell gate, 100 m merge radius)
    match the values commonly used in the location-privacy literature and
    in the paper's companion work.
    """

    roam_distance_m: float = 200.0
    min_dwell: float = 15 * MINUTE
    merge_radius_m: float = 100.0
    #: POIs with less accumulated dwell than this are discarded.
    min_total_dwell: float = 0.0

    def __post_init__(self) -> None:
        if self.roam_distance_m <= 0:
            raise MechanismError(f"roam distance must be positive: {self.roam_distance_m}")
        if self.min_dwell <= 0:
            raise MechanismError(f"min dwell must be positive: {self.min_dwell}")
        if self.merge_radius_m < 0:
            raise MechanismError(f"merge radius must be >= 0: {self.merge_radius_m}")


class PoiExtractor:
    """Extracts stay points and POIs from trajectories."""

    def __init__(self, config: PoiExtractorConfig | None = None):
        self.config = config or PoiExtractorConfig()

    # ------------------------------------------------------------------
    # Stage 1: stay points
    # ------------------------------------------------------------------

    def stay_points(self, trajectory: Trajectory) -> list[StayPoint]:
        """Maximal dwell episodes of one trajectory, in time order."""
        records = trajectory.records
        stay_points: list[StayPoint] = []
        i = 0
        n = len(records)
        while i < n:
            anchor = records[i].point
            j = i + 1
            while j < n and haversine_m(anchor, records[j].point) <= self.config.roam_distance_m:
                j += 1
            # records[i:j] stay within the roam gate of records[i].
            span = records[j - 1].time - records[i].time
            if span >= self.config.min_dwell:
                stay_points.append(
                    StayPoint(
                        center=centroid([r.point for r in records[i:j]]),
                        start=records[i].time,
                        end=records[j - 1].time,
                        n_records=j - i,
                    )
                )
                i = j
            else:
                i += 1
        return stay_points

    # ------------------------------------------------------------------
    # Stage 2: clustering
    # ------------------------------------------------------------------

    def cluster(self, stay_points: list[StayPoint]) -> list[Poi]:
        """Greedy centroid clustering of stay points into POIs.

        Returns POIs ordered by total dwell, descending, after applying the
        ``min_total_dwell`` filter.
        """
        clusters: list[list[StayPoint]] = []
        for stay in stay_points:
            best: list[StayPoint] | None = None
            best_distance = self.config.merge_radius_m
            for cluster in clusters:
                cluster_center = centroid([s.center for s in cluster])
                distance = haversine_m(cluster_center, stay.center)
                if distance <= best_distance:
                    best = cluster
                    best_distance = distance
            if best is None:
                clusters.append([stay])
            else:
                best.append(stay)

        pois = [
            Poi(
                center=centroid([s.center for s in cluster]),
                total_dwell=sum(s.dwell for s in cluster),
                n_visits=len(cluster),
            )
            for cluster in clusters
        ]
        pois = [p for p in pois if p.total_dwell >= self.config.min_total_dwell]
        return sorted(pois, key=lambda p: -p.total_dwell)

    # ------------------------------------------------------------------
    # End-to-end
    # ------------------------------------------------------------------

    def extract(self, trajectory: Trajectory) -> list[Poi]:
        """Stay-point detection + clustering for a single trajectory."""
        return self.cluster(self.stay_points(trajectory))

    def extract_many(self, trajectories: list[Trajectory]) -> list[Poi]:
        """Extraction across several trajectories of the *same* user.

        Stay points from all trajectories (e.g. the per-day pieces of a
        multi-day trace) are pooled before clustering, so recurring places
        accumulate dwell across days.
        """
        pooled: list[StayPoint] = []
        for trajectory in trajectories:
            pooled.extend(self.stay_points(trajectory))
        return self.cluster(pooled)
