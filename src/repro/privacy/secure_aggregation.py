"""Secure-aggregation orchestration: the crypto protocols as a platform service.

The :mod:`repro.crypto` substrate ships the *protocols* — a Paillier
cryptosystem with homomorphic sums, pairwise additive masking, and a
Shamir-backed dropout-resilient masking variant.  This module turns them
into the platform's privacy tier: a :class:`SecureAggregationSession`
runs one aggregation round over a task's enrolled participants so that

- every participant contributes a *vector* of fixed-point-encoded
  partial aggregates (record counts, value sums, histogram bins...);
- the aggregating middle parties (Hives, the federation merger) only
  ever see ciphertexts or uniformly masked integers — component sums
  come out, individual contributions never do;
- the protocol is chosen **per participant** from its device profile
  (battery level, public-key capability) through a
  :class:`SecureAggregationPolicy`, echoing adapt-to-endpoint-capability
  middleware design: strong devices run Paillier, weak ones run the
  cheap masking protocol, and the two cohorts' decrypted/unmasked sums
  fold into one result;
- participants that drop mid-session (an explicit ``down`` set or a
  :class:`~repro.simulation.FaultInjector` outage) are survived: the
  masking cohort recovers dangling masks through Shamir shares
  (:mod:`repro.crypto.resilient_masking`), the Paillier cohort simply
  contributes nothing, and the session reports exactly who dropped so
  callers can compare against the survivors' plaintext aggregate.

The session is deliberately dependency-light (crypto + errors only);
the data-plane integrations live where the data lives —
:meth:`repro.federation.query.FederatedDataset.secure_aggregate` for
the batch stores, :meth:`repro.federation.streams.FederatedStreamMerger.
secure_totals` for live windows, and :meth:`repro.apisense.hive.Hive.
secure_aggregate` for a single deployment.
"""

from __future__ import annotations

import math
import random
import time as _time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro import obs as _obs
from repro.obs.instruments import SecureAggInstruments
from repro.crypto import (
    DeviceContributor,
    FixedPointCodec,
    MaskedAggregation,
    MaskingDealer,
    MaskingParticipant,
    ObliviousAggregator,
    QueryCoordinator,
    ResilientAggregation,
)
from repro.errors import ProtocolError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.crypto.paillier import PaillierCiphertext
    from repro.crypto.resilient_masking import ResilientParticipant
    from repro.simulation import FaultInjector

#: The concrete wire protocols a participant can run.
PROTOCOLS = ("paillier", "masking")


@dataclass(frozen=True)
class SecureAggregationPolicy:
    """Deployment-wide knobs of the privacy tier.

    ``protocol`` forces one protocol for everyone; ``"auto"`` picks per
    participant: devices that cannot run public-key crypto, or whose
    battery is below ``paillier_battery_floor``, run the masking
    protocol (hash arithmetic only), everyone else runs Paillier.
    ``resilient`` selects the Shamir-backed masking variant that
    survives dropouts at the cost of an O(n²) pairwise dealing step;
    non-resilient masking is the cheap benchmark baseline and aborts if
    any cohort member drops.
    """

    protocol: str = "auto"
    paillier_battery_floor: float = 0.3
    key_bits: int = 256
    decimals: int = 3
    resilient: bool = True
    #: Shamir threshold as a fraction of the masking cohort (clamped to
    #: [2, cohort size]); recovery needs that many *surviving* members.
    dropout_threshold: float = 0.6

    def __post_init__(self) -> None:
        if self.protocol not in ("auto", *PROTOCOLS):
            raise ProtocolError(
                f"unknown protocol {self.protocol!r}; one of ('auto', {PROTOCOLS})"
            )
        if not (0.0 < self.dropout_threshold <= 1.0):
            raise ProtocolError(
                f"dropout threshold must be in (0, 1]: {self.dropout_threshold}"
            )

    def select_protocol(self, profile: "ParticipantProfile") -> str:
        """The protocol one participant runs under this policy."""
        if self.protocol != "auto":
            return self.protocol
        if not profile.supports_paillier:
            return "masking"
        if (
            profile.battery is not None
            and profile.battery < self.paillier_battery_floor
        ):
            return "masking"
        return "paillier"


@dataclass(frozen=True)
class ParticipantProfile:
    """What protocol selection knows about one enrolled participant.

    ``battery`` is the device's charge in [0, 1] (``None`` = unknown,
    treated as strong); ``member`` optionally records which federation
    Hive homes the participant so the Paillier fold can run per member.
    """

    participant_id: str
    battery: float | None = None
    supports_paillier: bool = True
    member: str | None = None


@dataclass(frozen=True)
class SecureAggregate:
    """The decrypted/unmasked result of one aggregation session."""

    task: str
    components: tuple[str, ...]
    #: Component label -> securely computed sum over the contributors.
    sums: Mapping[str, float]
    contributors: int
    dropped: tuple[str, ...]
    #: Participant id -> protocol it was enrolled under.
    protocol_of: Mapping[str, str]

    @property
    def protocol_split(self) -> dict[str, int]:
        """Live contributors per protocol (dropped excluded)."""
        down = set(self.dropped)
        split = {name: 0 for name in PROTOCOLS}
        for pid, protocol in self.protocol_of.items():
            if pid not in down:
                split[protocol] += 1
        return split

    def sum(self, component: str) -> float:
        if component not in self.sums:
            raise ProtocolError(
                f"unknown component {component!r}; session computed {self.components}"
            )
        return self.sums[component]

    def mean(self, component: str, count_component: str) -> float:
        """``sum(component) / sum(count_component)`` (0.0 on empty)."""
        count = self.sum(count_component)
        return self.sum(component) / count if count else 0.0


class SecureAggregationSession:
    """One aggregation round over a task's enrolled participants.

    Lifecycle: construct with the participant profiles (cohorts are
    fixed here), :meth:`setup` performs the enrolment-time work (key
    generation, pairwise mask dealing + Shamir sharing), then one
    :meth:`run` collects every live participant's contribution vector
    and returns the component sums.  Between ``setup`` and ``run`` the
    simulation may take devices down — a :class:`~repro.simulation.
    FaultInjector` passed at construction (components named
    ``{fault_prefix}{participant_id}``) or an explicit ``down`` set
    marks them, and the session still reconstructs the survivors' sums.
    """

    def __init__(
        self,
        task: str,
        participants: Iterable[ParticipantProfile],
        *,
        components: Sequence[str] = ("value",),
        policy: SecureAggregationPolicy | None = None,
        rng: random.Random | None = None,
        faults: "FaultInjector | None" = None,
        fault_prefix: str = "device:",
    ):
        self.task = task
        self.policy = policy or SecureAggregationPolicy()
        self.components = tuple(components)
        if not self.components:
            raise ProtocolError("session needs at least one component to aggregate")
        if len(set(self.components)) != len(self.components):
            raise ProtocolError(f"duplicate component labels: {self.components}")
        self._rng = rng or random.SystemRandom()
        self._faults = faults
        self._fault_prefix = fault_prefix
        self.profiles: dict[str, ParticipantProfile] = {}
        for profile in participants:
            if profile.participant_id in self.profiles:
                raise ProtocolError(
                    f"participant {profile.participant_id!r} enrolled twice"
                )
            self.profiles[profile.participant_id] = profile
        if not self.profiles:
            raise ProtocolError("session needs at least one participant")

        self.protocol_of: dict[str, str] = {
            pid: self.policy.select_protocol(profile)
            for pid, profile in self.profiles.items()
        }
        masking = sorted(p for p, proto in self.protocol_of.items() if proto == "masking")
        if len(masking) == 1:
            if self.policy.protocol == "masking":
                raise ProtocolError("masking needs at least two participants")
            lone = masking[0]
            if not self.profiles[lone].supports_paillier:
                # The capability bit is hard: a device that cannot run
                # public-key crypto has no protocol left to fall back to.
                raise ProtocolError(
                    f"participant {lone!r} cannot run Paillier and is the "
                    "only masking-capable-cohort member; masking needs a "
                    "second participant"
                )
            # A lone battery-weak device cannot pairwise-mask with
            # anyone; battery preference is soft, so it falls back to
            # the public-key protocol.
            self.protocol_of[lone] = "paillier"
        self.masking_cohort = tuple(
            sorted(p for p, proto in self.protocol_of.items() if proto == "masking")
        )
        self.paillier_cohort = tuple(
            sorted(p for p, proto in self.protocol_of.items() if proto == "paillier")
        )
        self._codec = FixedPointCodec(self.policy.decimals)
        self._coordinator: QueryCoordinator | None = None
        self._queries: list = []
        self._masking_participants: "list[ResilientParticipant]" = []
        self._group_seed: bytes | None = None
        self.threshold: int | None = None
        self._setup_done = False
        self._ran = False
        self.obs = SecureAggInstruments(
            _obs.metrics_registry(), _obs.next_instance("secure_agg")
        )
        self._tracer = _obs.tracer()

    # ------------------------------------------------------------------
    # Enrolment-time work
    # ------------------------------------------------------------------

    def setup(self) -> "SecureAggregationSession":
        """Key generation and mask dealing; idempotent via :meth:`run`."""
        if self._setup_done:
            raise ProtocolError("session already set up")
        timed = self.obs.registry.enabled
        started = _time.perf_counter() if timed else 0.0
        self._setup_phases(timed, started)
        return self

    def _setup_phases(self, timed: bool, started: float) -> None:
        if self.paillier_cohort:
            self._coordinator = QueryCoordinator(self.policy.key_bits, rng=self._rng)
            self._queries = [
                self._coordinator.open_query(
                    f"{self.task}/{index}:{label}", codec=self._codec
                )
                for index, label in enumerate(self.components)
            ]
        if self.masking_cohort:
            n = len(self.masking_cohort)
            if self.policy.resilient:
                self.threshold = min(
                    n, max(2, math.ceil(self.policy.dropout_threshold * n))
                )
                dealer = MaskingDealer(
                    n, self.threshold, rng=self._rng, codec=self._codec
                )
                self._masking_participants = dealer.deal()
            else:
                self._group_seed = self._rng.getrandbits(128).to_bytes(16, "big")
        self._setup_done = True
        if timed:
            self.obs.phase_seconds("setup").observe(_time.perf_counter() - started)

    # ------------------------------------------------------------------
    # Collection round
    # ------------------------------------------------------------------

    def _is_down(self, pid: str, down: frozenset[str] | set[str]) -> bool:
        if pid in down:
            return True
        return self._faults is not None and self._faults.is_down(
            self._fault_prefix + pid
        )

    def run(
        self,
        contributions: Mapping[str, Sequence[float]],
        down: "set[str] | frozenset[str]" = frozenset(),
    ) -> SecureAggregate:
        """Collect one contribution vector per live participant.

        ``contributions`` maps every *enrolled* participant id to its
        component vector (down participants' entries are ignored — in a
        deployment their values never leave the device).  Returns the
        component sums over the survivors.
        """
        if not self._setup_done:
            self.setup()
        if self._ran:
            raise ProtocolError("session already ran; build a new session per round")
        missing = sorted(set(self.profiles) - set(contributions))
        if missing:
            raise ProtocolError(f"missing contributions for {missing}")
        width = len(self.components)
        for pid in self.profiles:
            if len(contributions[pid]) != width:
                raise ProtocolError(
                    f"participant {pid!r} contributed "
                    f"{len(contributions[pid])} components, expected {width}"
                )
        self._ran = True
        dropped = sorted(pid for pid in self.profiles if self._is_down(pid, down))
        down_set = set(dropped)
        sums = [0.0] * width
        timed = self.obs.registry.enabled
        self.obs.dropouts.inc(len(dropped))

        live_paillier = [p for p in self.paillier_cohort if p not in down_set]
        if live_paillier:
            started = _time.perf_counter() if timed else 0.0
            with self._tracer.span(
                "secure_agg.paillier", task=self.task, cohort=len(live_paillier)
            ):
                self._run_paillier(contributions, live_paillier, sums)
            if timed:
                self.obs.phase_seconds("paillier").observe(
                    _time.perf_counter() - started
                )
            self.obs.round_done("paillier")
        if self.masking_cohort:
            started = _time.perf_counter() if timed else 0.0
            with self._tracer.span(
                "secure_agg.masking", task=self.task, cohort=len(self.masking_cohort)
            ):
                self._run_masking(contributions, down_set, sums)
            if timed:
                self.obs.phase_seconds("masking").observe(
                    _time.perf_counter() - started
                )
            self.obs.round_done("masking")

        return SecureAggregate(
            task=self.task,
            components=self.components,
            sums=dict(zip(self.components, sums)),
            contributors=len(self.profiles) - len(dropped),
            dropped=tuple(dropped),
            protocol_of=dict(self.protocol_of),
        )

    def _run_paillier(
        self,
        contributions: Mapping[str, Sequence[float]],
        live: list[str],
        sums: list[float],
    ) -> None:
        """Homomorphic fold: per-member encrypted partials, one decrypt.

        Each federation member aggregates only its own participants'
        ciphertexts; the member partials are themselves combined under
        encryption, so no aggregator anywhere sees an individual value
        — and the coordinator sees only the final totals.
        """
        assert self._coordinator is not None
        contributor = DeviceContributor(self._rng)
        for index, query in enumerate(self._queries):
            # Conservative per-device headroom: the homomorphic sum of
            # every live encoding must stay inside +/- max_plaintext.
            limit = query.public_key.max_plaintext // max(1, len(live))
            by_member: dict[str | None, ObliviousAggregator] = {}
            for pid in live:
                value = contributions[pid][index]
                if abs(self._codec.encode(value)) > limit:
                    raise ProtocolError(
                        f"contribution {value} of {pid!r} exceeds the key's "
                        f"sum headroom for {len(live)} devices; raise "
                        f"key_bits (= {self.policy.key_bits})"
                    )
                member = self.profiles[pid].member
                aggregator = by_member.get(member)
                if aggregator is None:
                    aggregator = by_member[member] = ObliviousAggregator(query)
                aggregator.accept(contributor.contribute_value(query, value))
            total: "PaillierCiphertext | None" = None
            for aggregator in by_member.values():
                partial = aggregator.scalar_result()
                total = partial if total is None else total + partial
            assert total is not None
            sums[index] += self._coordinator.decrypt_sum(query, total)

    def _run_masking(
        self,
        contributions: Mapping[str, Sequence[float]],
        down: set[str],
        sums: list[float],
    ) -> None:
        n = len(self.masking_cohort)
        if not self.policy.resilient:
            # Abort on ANY cohort dropout — including the whole cohort
            # dropping — before touching a single masked value.
            cohort_down = sorted(p for p in self.masking_cohort if p in down)
            if cohort_down:
                raise ProtocolError(
                    f"participants {cohort_down} dropped but the policy is "
                    "non-resilient; set SecureAggregationPolicy(resilient=True)"
                )
        if all(p in down for p in self.masking_cohort):
            return  # nobody left to contribute (or recover anything)
        for index in range(len(self.components)):
            if self.policy.resilient:
                assert self.threshold is not None
                aggregation = ResilientAggregation(
                    n, self.threshold, codec=self._codec, round_id=index
                )
                for position, pid in enumerate(self.masking_cohort):
                    if pid in down:
                        continue
                    participant = self._masking_participants[position]
                    aggregation.accept(
                        position,
                        participant.masked_value(
                            contributions[pid][index], round_id=index
                        ),
                    )
                survivors = {
                    position: self._masking_participants[position]
                    for position, pid in enumerate(self.masking_cohort)
                    if pid not in down
                }
                sums[index] += aggregation.recover_and_sum(survivors)
            else:
                assert self._group_seed is not None
                aggregation = MaskedAggregation(n, codec=self._codec)
                for position, pid in enumerate(self.masking_cohort):
                    participant = MaskingParticipant(
                        position, n, self._group_seed, codec=self._codec
                    )
                    aggregation.accept(
                        participant.masked_value(
                            contributions[pid][index], round_id=index
                        )
                    )
                sums[index] += aggregation.result_sum()


def histogram_components(bin_edges: Sequence[float]) -> tuple[str, ...]:
    """Component labels for a histogram over ``bin_edges``.

    ``k+1`` edges make ``k`` bins; the last bin is closed on both ends
    (numpy convention), every other bin is half-open ``[lo, hi)``.
    """
    edges = [float(e) for e in bin_edges]
    if len(edges) < 2:
        raise ProtocolError(f"histogram needs >= 2 bin edges: {edges}")
    if any(hi <= lo for lo, hi in zip(edges, edges[1:])):
        raise ProtocolError(f"bin edges must be strictly increasing: {edges}")
    labels = []
    for position, (lo, hi) in enumerate(zip(edges, edges[1:])):
        bracket = "]" if position == len(edges) - 2 else ")"
        labels.append(f"bin[{lo:g},{hi:g}{bracket}")
    return tuple(labels)
