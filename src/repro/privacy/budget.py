"""Privacy budget accounting across repeated publications.

A platform that publishes the same users' data repeatedly cannot reason
release-by-release: perturbation guarantees compose.  The ledger tracks
per-user cumulative spend in two currencies —

- **epsilon** (differential-privacy style, additive under sequential
  composition) for calibrated-noise mechanisms, and
- **exposures** (publication count) for structural mechanisms (smoothing,
  cloaking) whose repeated releases leak through intersection rather
  than noise cancellation.

The platform owner sets caps; :meth:`PrivacyBudgetLedger.authorize`
rejects a release that would push any included user past either cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PrivacyRequirementError


@dataclass
class UserBudget:
    """Cumulative spend of one user."""

    user: str
    epsilon_spent: float = 0.0
    exposures: int = 0


@dataclass
class PrivacyBudgetLedger:
    """Per-user spend tracking with platform-wide caps.

    Parameters
    ----------
    epsilon_cap:
        Maximum cumulative epsilon per user (sequential composition).
    exposure_cap:
        Maximum number of releases any user may appear in.
    """

    epsilon_cap: float = 1.0
    exposure_cap: int = 10
    _accounts: dict[str, UserBudget] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.epsilon_cap <= 0:
            raise PrivacyRequirementError(f"epsilon cap must be positive: {self.epsilon_cap}")
        if self.exposure_cap < 1:
            raise PrivacyRequirementError(f"exposure cap must be >= 1: {self.exposure_cap}")

    def account(self, user: str) -> UserBudget:
        if user not in self._accounts:
            self._accounts[user] = UserBudget(user=user)
        return self._accounts[user]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def remaining_epsilon(self, user: str) -> float:
        return max(0.0, self.epsilon_cap - self.account(user).epsilon_spent)

    def remaining_exposures(self, user: str) -> int:
        return max(0, self.exposure_cap - self.account(user).exposures)

    def can_release(self, users: list[str], epsilon: float = 0.0) -> bool:
        """Whether a release including ``users`` at ``epsilon`` fits."""
        if epsilon < 0:
            raise PrivacyRequirementError(f"epsilon must be >= 0: {epsilon}")
        return all(
            self.remaining_exposures(user) >= 1
            and self.remaining_epsilon(user) >= epsilon
            for user in users
        )

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def authorize(self, users: list[str], epsilon: float = 0.0) -> None:
        """Record a release, or raise if any user would exceed a cap.

        The check-and-charge is atomic: either every user is charged or
        none is.
        """
        if not self.can_release(users, epsilon):
            blocked = [
                user
                for user in users
                if self.remaining_exposures(user) < 1
                or self.remaining_epsilon(user) < epsilon
            ]
            raise PrivacyRequirementError(
                f"release would exceed the privacy budget of users {blocked}; "
                f"caps: epsilon={self.epsilon_cap}, exposures={self.exposure_cap}"
            )
        for user in users:
            budget = self.account(user)
            budget.epsilon_spent += epsilon
            budget.exposures += 1

    def summary(self) -> list[UserBudget]:
        """All accounts, highest spend first."""
        return sorted(
            self._accounts.values(),
            key=lambda b: (-b.epsilon_spent, -b.exposures),
        )
