"""POI-profile re-identification (linkage) attack.

Background knowledge: raw traces of the user population from an earlier
period (or any side channel yielding per-user POI profiles).  Target: a
pseudonymized, protected dataset from a later period.  The attack extracts
a POI profile from each pseudonymous trace and links it to the known user
whose profile matches best.  Krumm (Pervasive'07) and the paper's
reference [3] showed this succeeds against naive pseudonymization because
home/work pairs are near-unique.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mobility.dataset import MobilityDataset
from repro.geo.distance import haversine_m
from repro.privacy.attacks.poi_attack import PoiAttack
from repro.privacy.pois import Poi, PoiExtractorConfig


@dataclass(frozen=True)
class LinkageResult:
    """Outcome of linking one pseudonym."""

    pseudonym: str
    guessed_user: str | None
    score_m: float


class ReidentificationAttack:
    """Links pseudonymous protected traces to known user profiles.

    Parameters
    ----------
    config:
        POI-extraction thresholds the adversary uses on both sides.
    profile_size:
        Number of top-dwell POIs kept per profile (home/work dominate, so
        small profiles already identify most users).
    max_match_distance_m:
        A pseudonym is linked only when its best profile distance is below
        this gate; otherwise the attack abstains (``guessed_user=None``).
    denoise_window:
        Rolling-median window forwarded to :class:`PoiAttack`; essential
        against per-fix perturbation mechanisms.
    """

    def __init__(
        self,
        config: PoiExtractorConfig | None = None,
        profile_size: int = 4,
        max_match_distance_m: float = 500.0,
        denoise_window: int = 1,
    ):
        self._attack = PoiAttack(config, denoise_window=denoise_window)
        self.profile_size = profile_size
        self.max_match_distance_m = max_match_distance_m
        self._profiles: dict[str, list[Poi]] = {}

    # ------------------------------------------------------------------
    # Phase 1: background knowledge
    # ------------------------------------------------------------------

    def fit(self, background: MobilityDataset) -> "ReidentificationAttack":
        """Build per-user POI profiles from the attacker's side knowledge."""
        profiles = self._attack.run(background)
        self._profiles = {
            user: pois[: self.profile_size] for user, pois in profiles.items() if pois
        }
        return self

    @property
    def known_users(self) -> list[str]:
        return list(self._profiles)

    # ------------------------------------------------------------------
    # Phase 2: linkage
    # ------------------------------------------------------------------

    def _profile_distance(self, observed: list[Poi], profile: list[Poi]) -> float:
        """Mean nearest-neighbour distance from observed POIs to a profile.

        Dwell-weighted so that an attacker trusts long stops (home, work)
        more than incidental ones.
        """
        total_weight = 0.0
        total = 0.0
        for poi in observed:
            nearest = min(haversine_m(poi.center, p.center) for p in profile)
            total += poi.total_dwell * nearest
            total_weight += poi.total_dwell
        return total / total_weight if total_weight > 0 else float("inf")

    def link(self, protected: MobilityDataset) -> dict[str, LinkageResult]:
        """Best-profile linkage for every pseudonym of ``protected``."""
        if not self._profiles:
            raise RuntimeError("call fit() with background knowledge before link()")
        observed_profiles = self._attack.run(protected)
        results: dict[str, LinkageResult] = {}
        for pseudonym, observed in observed_profiles.items():
            observed = observed[: self.profile_size]
            if not observed:
                results[pseudonym] = LinkageResult(pseudonym, None, float("inf"))
                continue
            best_user: str | None = None
            best_score = float("inf")
            for user, profile in self._profiles.items():
                score = self._profile_distance(observed, profile)
                if score < best_score:
                    best_user = user
                    best_score = score
            if best_score > self.max_match_distance_m:
                best_user = None
            results[pseudonym] = LinkageResult(pseudonym, best_user, best_score)
        return results
