"""POI retrieval attack: extract stops from a (protected) dataset."""

from __future__ import annotations

from repro.geo.filtering import rolling_median
from repro.geo.trajectory import Trajectory
from repro.mobility.dataset import MobilityDataset
from repro.privacy.pois import Poi, PoiExtractor, PoiExtractorConfig
from repro.units import DAY


class PoiAttack:
    """Runs POI extraction against every user of a published dataset.

    The adversary is assumed to know the standard stay-point pipeline and
    its usual thresholds.  Two standard refinements make the attack as
    strong as the literature's:

    - **denoising**: a rolling-median filter (``denoise_window`` fixes,
      odd, 1 = off) applied before extraction.  Per-fix perturbation such
      as geo-indistinguishability is independent across fixes, so the
      median collapses the noise cloud back onto the true stop — the core
      of the paper's "still re-identify >= 60 % of POIs" observation;
    - **top-k reporting** (``max_pois``): a real attacker reports a
      plausible number of POIs per user, not hundreds; candidates are
      ranked by accumulated dwell.

    Stay points are pooled across the days of each trace before
    clustering so recurring places accumulate evidence.
    """

    def __init__(
        self,
        config: PoiExtractorConfig | None = None,
        denoise_window: int = 1,
        max_pois: int | None = 10,
    ):
        self.extractor = PoiExtractor(config)
        self.denoise_window = denoise_window
        self.max_pois = max_pois

    def run_trajectory(self, trajectory: Trajectory) -> list[Poi]:
        """Candidate POIs of a single multi-day trajectory."""
        days = trajectory.split_by_day(DAY)
        if self.denoise_window > 1:
            days = [rolling_median(day, self.denoise_window) for day in days]
        pois = self.extractor.extract_many(days)
        if self.max_pois is not None:
            pois = pois[: self.max_pois]
        return pois

    def run(self, dataset: MobilityDataset) -> dict[str, list[Poi]]:
        """Candidate POIs per (pseudonymous) user id."""
        return {
            trajectory.user: self.run_trajectory(trajectory)
            for trajectory in dataset
        }
