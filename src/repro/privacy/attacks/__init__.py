"""Attacks against published mobility datasets.

Two attacks from the paper's threat model:

- :class:`PoiAttack` — recover points of interest from protected traces;
- :class:`ReidentificationAttack` — link pseudonymous protected traces
  back to known users via their POI profiles (the attack behind the
  paper's "re-identify at least 60 % of the POIs" finding).
"""

from repro.privacy.attacks.poi_attack import PoiAttack
from repro.privacy.attacks.reident import ReidentificationAttack
from repro.privacy.attacks.home_identification import (
    HomeGuess,
    HomeIdentificationAttack,
    home_identification_rate,
)

__all__ = [
    "PoiAttack",
    "ReidentificationAttack",
    "HomeIdentificationAttack",
    "HomeGuess",
    "home_identification_rate",
]
