"""Home-identification attack (Krumm, Pervasive'07 — the paper's [2]).

The highest-value semantic inference on mobility data: *where does this
user live?*  The attack scores every candidate POI by night-time
presence (the published trace's positions during the night window) and
returns the best-scoring location per user.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.distance import haversine_m
from repro.geo.point import GeoPoint
from repro.geo.trajectory import Trajectory
from repro.mobility.dataset import MobilityDataset
from repro.units import DAY, HOUR


@dataclass(frozen=True)
class HomeGuess:
    """The attack's answer for one user."""

    user: str
    location: GeoPoint | None
    night_fixes: int


class HomeIdentificationAttack:
    """Guess each user's home as the modal night-time position.

    Night fixes (``night_start``..``night_end``, wrapping midnight) are
    snapped to a fine grid; the densest grid cell's centroid is the home
    guess.  Works directly on protected traces — no background knowledge
    required — which makes it the floor any mechanism must clear.
    """

    def __init__(
        self,
        night_start: float = 22 * HOUR,
        night_end: float = 6 * HOUR,
        cell_m: float = 150.0,
    ):
        self.night_start = night_start
        self.night_end = night_end
        self.cell_m = cell_m

    def _is_night(self, time: float) -> bool:
        time_of_day = time % DAY
        if self.night_start <= self.night_end:
            return self.night_start <= time_of_day < self.night_end
        return time_of_day >= self.night_start or time_of_day < self.night_end

    def guess_home(self, trajectory: Trajectory) -> HomeGuess:
        """Home guess for a single (protected) trajectory."""
        from repro.geo.bbox import BoundingBox
        from repro.geo.grid import SpatialGrid

        night_records = [r for r in trajectory.records if self._is_night(r.time)]
        if not night_records:
            return HomeGuess(user=trajectory.user, location=None, night_fixes=0)
        bbox = BoundingBox.around([r.point for r in night_records]).expanded(0.01)
        grid = SpatialGrid(bbox, self.cell_m)
        counts: dict[tuple[int, int], list[GeoPoint]] = {}
        for record in night_records:
            counts.setdefault(grid.cell_of(record.point), []).append(record.point)
        best_cell = max(counts, key=lambda cell: len(counts[cell]))
        cluster = counts[best_cell]
        centroid = GeoPoint(
            sum(p.lat for p in cluster) / len(cluster),
            sum(p.lon for p in cluster) / len(cluster),
        )
        return HomeGuess(
            user=trajectory.user, location=centroid, night_fixes=len(night_records)
        )

    def run(self, dataset: MobilityDataset) -> dict[str, HomeGuess]:
        """Home guesses for every user of a dataset."""
        return {t.user: self.guess_home(t) for t in dataset}


def home_identification_rate(
    guesses: dict[str, HomeGuess],
    true_homes: dict[str, GeoPoint],
    radius_m: float = 250.0,
) -> float:
    """Fraction of users whose true home was found within ``radius_m``.

    ``guesses`` may be keyed by pseudonym; callers resolve the secret
    mapping first when scoring pseudonymized releases.
    """
    if not true_homes:
        return 0.0
    correct = 0
    for user, home in true_homes.items():
        guess = guesses.get(user)
        if guess is None or guess.location is None:
            continue
        if haversine_m(guess.location, home) <= radius_m:
            correct += 1
    return correct / len(true_homes)
