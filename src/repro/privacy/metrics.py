"""Privacy metrics: what an adversary recovers, and at what distortion."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.geo.distance import haversine_m
from repro.geo.point import GeoPoint
from repro.geo.trajectory import Trajectory
from repro.mobility.dataset import MobilityDataset
from repro.privacy.pois import Poi


def _as_points(found: Sequence[Poi] | Sequence[GeoPoint]) -> list[GeoPoint]:
    return [p.center if isinstance(p, Poi) else p for p in found]


def poi_recall(
    true_pois: Sequence[GeoPoint],
    found: Sequence[Poi] | Sequence[GeoPoint],
    radius_m: float = 200.0,
) -> float:
    """Fraction of true POIs recovered within ``radius_m`` by ``found``.

    This is the paper's headline privacy measure ("re-identify at least
    60 % of the points of interest").  Returns 0 for an empty truth set.
    """
    if not true_pois:
        return 0.0
    candidates = _as_points(found)
    recovered = sum(
        1
        for truth in true_pois
        if any(haversine_m(truth, candidate) <= radius_m for candidate in candidates)
    )
    return recovered / len(true_pois)


def poi_precision(
    true_pois: Sequence[GeoPoint],
    found: Sequence[Poi] | Sequence[GeoPoint],
    radius_m: float = 200.0,
) -> float:
    """Fraction of found POIs that match some true POI within ``radius_m``."""
    candidates = _as_points(found)
    if not candidates:
        return 0.0
    matched = sum(
        1
        for candidate in candidates
        if any(haversine_m(truth, candidate) <= radius_m for truth in true_pois)
    )
    return matched / len(candidates)


def poi_f1(
    true_pois: Sequence[GeoPoint],
    found: Sequence[Poi] | Sequence[GeoPoint],
    radius_m: float = 200.0,
) -> float:
    """Harmonic mean of POI recall and precision."""
    recall = poi_recall(true_pois, found, radius_m)
    precision = poi_precision(true_pois, found, radius_m)
    if recall + precision == 0:
        return 0.0
    return 2 * recall * precision / (recall + precision)


def reidentification_rate(
    secret_mapping: Mapping[str, str],
    guesses: Mapping[str, str | None],
) -> float:
    """Fraction of pseudonyms correctly linked back to their user.

    ``secret_mapping`` is the platform's private ``pseudonym -> user``
    table; ``guesses`` maps pseudonyms to the attacker's answers (``None``
    = abstained, counted as a miss).
    """
    if not secret_mapping:
        return 0.0
    correct = sum(
        1
        for pseudonym, user in secret_mapping.items()
        if guesses.get(pseudonym) == user
    )
    return correct / len(secret_mapping)


def mean_spatial_distortion_m(raw: Trajectory, protected: Trajectory) -> float:
    """Mean distance between the raw fix and the protected path at the
    same instant.

    Utility cost of a mechanism at the trajectory level: for every raw
    record inside the protected trace's time span, measure the distance to
    the protected trajectory's (interpolated) position at that time.
    """
    distances = []
    for record in raw.records:
        if not (protected.start_time <= record.time <= protected.end_time):
            continue
        distances.append(
            haversine_m(record.point, protected.point_at_time(record.time))
        )
    if not distances:
        return float("inf")
    return sum(distances) / len(distances)


def dataset_distortion_m(raw: MobilityDataset, protected: MobilityDataset) -> float:
    """Record-weighted mean spatial distortion across common users.

    Users suppressed by the mechanism do not contribute (their privacy is
    perfect and their utility zero; suppression is reported separately).
    """
    total = 0.0
    count = 0
    for trajectory in raw:
        if trajectory.user not in protected:
            continue
        shielded = protected.get(trajectory.user)
        for record in trajectory.records:
            if not (shielded.start_time <= record.time <= shielded.end_time):
                continue
            total += haversine_m(record.point, shielded.point_at_time(record.time))
            count += 1
    if count == 0:
        return float("inf")
    return total / count


def suppression_rate(raw: MobilityDataset, protected: MobilityDataset) -> float:
    """Fraction of users whose whole trace the mechanism suppressed."""
    if len(raw) == 0:
        return 0.0
    kept = sum(1 for trajectory in raw if trajectory.user in protected)
    return 1.0 - kept / len(raw)
