"""The PRIVAPI middleware: audit every mechanism, publish the best.

The selection algorithm implements the paper's "optimal anonymization
strategy" using the middleware's global view of the dataset:

1. Extract the dataset's *sensitive places* — the POIs an attacker could
   find in the raw data.  These are what must be hidden.
2. For every registered mechanism: protect the dataset, attack the
   protected version with the reference attacker, and measure (a) how
   many sensitive places survive (POI recall), (b) optionally the
   linkage rate, and (c) the requested utility objective's score.
3. Discard mechanisms that miss the privacy bar; among the survivors,
   publish with the highest-utility one.

The audit is honest *by construction*: the attacker used for auditing is
the same implementation benchmarked in experiments E2/E3, including its
denoising preprocessing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.report import MechanismEvaluation, PublicationReport
from repro.core.requirements import PrivacyRequirement, UtilityObjective
from repro.errors import PrivacyRequirementError
from repro.mobility.dataset import MobilityDataset
from repro.privacy.attacks.poi_attack import PoiAttack
from repro.privacy.attacks.reident import ReidentificationAttack
from repro.privacy.mechanisms import (
    GeoIndistinguishabilityMechanism,
    KAnonymityCloakingMechanism,
    LocationPrivacyMechanism,
    SpatialCloakingMechanism,
    SpeedSmoothingMechanism,
    TemporalDownsamplingMechanism,
)
from repro.privacy.metrics import poi_recall, reidentification_rate, suppression_rate
from repro.units import MINUTE


def default_registry() -> list[LocationPrivacyMechanism]:
    """The mechanisms a stock PRIVAPI deployment considers.

    A spread of strategies and parameters: the paper's novel speed
    smoothing at two resolutions, geo-indistinguishability at three
    budgets, grid cloaking at two pitches, and temporal downsampling.
    """
    return [
        SpeedSmoothingMechanism(epsilon_m=100.0),
        SpeedSmoothingMechanism(epsilon_m=250.0),
        GeoIndistinguishabilityMechanism(epsilon=0.01),
        GeoIndistinguishabilityMechanism(epsilon=0.005),
        GeoIndistinguishabilityMechanism(epsilon=0.001),
        SpatialCloakingMechanism(cell_size_m=400.0),
        SpatialCloakingMechanism(cell_size_m=800.0),
        KAnonymityCloakingMechanism(k=4, base_cell_m=250.0),
        TemporalDownsamplingMechanism(window=15 * MINUTE),
    ]


@dataclass(frozen=True)
class PublicationResult:
    """What PRIVAPI hands back: the publishable dataset plus audit trail.

    ``dataset`` is pseudonymized and protected (or ``None`` when no
    mechanism met the bar and ``strict`` publishing was requested);
    ``pseudonym_mapping`` stays with the platform and MUST NOT be
    released — it exists so operators can audit and notify users.
    """

    dataset: MobilityDataset | None
    pseudonym_mapping: dict[str, str] | None
    report: PublicationReport


class PrivApi:
    """The publication middleware."""

    def __init__(
        self,
        mechanisms: list[LocationPrivacyMechanism] | None = None,
        seed: int = 0,
    ):
        self.mechanisms = mechanisms if mechanisms is not None else default_registry()
        if not self.mechanisms:
            raise PrivacyRequirementError("PRIVAPI needs at least one mechanism")
        self.seed = seed

    # ------------------------------------------------------------------
    # Audit primitives
    # ------------------------------------------------------------------

    def sensitive_places(
        self, dataset: MobilityDataset, requirement: PrivacyRequirement
    ) -> dict[str, list]:
        """Per-user POIs found in the *raw* data (what must be hidden)."""
        attack = PoiAttack(denoise_window=requirement.attacker_denoise_window)
        return attack.run(dataset)

    def audit_mechanism(
        self,
        mechanism: LocationPrivacyMechanism,
        dataset: MobilityDataset,
        requirement: PrivacyRequirement,
        objective: UtilityObjective,
        sensitive: dict[str, list] | None = None,
    ) -> MechanismEvaluation:
        """Protect, attack and score one mechanism."""
        if sensitive is None:
            sensitive = self.sensitive_places(dataset, requirement)
        protected = mechanism.protect(dataset, seed=self.seed)
        attack = PoiAttack(denoise_window=requirement.attacker_denoise_window)
        found = attack.run(protected)

        recalls = []
        for user, places in sensitive.items():
            if not places:
                continue
            centers = [p.center for p in places]
            recalls.append(
                poi_recall(centers, found.get(user, []), requirement.attack_radius_m)
            )
        mean_recall = sum(recalls) / len(recalls) if recalls else 0.0

        reident: float | None = None
        if requirement.max_reidentification is not None:
            linker = ReidentificationAttack(
                denoise_window=requirement.attacker_denoise_window
            ).fit(dataset)
            pseudo, secret = protected.pseudonymized()
            guesses = {
                pseudonym: result.guessed_user
                for pseudonym, result in linker.link(pseudo).items()
            }
            reident = reidentification_rate(secret, guesses)

        utility = objective.score(dataset, protected) if len(protected) else 0.0
        suppression = suppression_rate(dataset, protected)

        satisfied = mean_recall <= requirement.max_poi_recall
        if requirement.max_reidentification is not None and reident is not None:
            satisfied = satisfied and reident <= requirement.max_reidentification

        return MechanismEvaluation(
            mechanism=f"{mechanism.name}{self._param_tag(mechanism)}",
            parameters={
                str(k): v for k, v in mechanism.describe().items() if k != "mechanism"
            },
            poi_recall=mean_recall,
            reidentification=reident,
            utility=utility,
            suppression=suppression,
            satisfies_privacy=satisfied,
        )

    @staticmethod
    def _param_tag(mechanism: LocationPrivacyMechanism) -> str:
        params = {
            key: value
            for key, value in mechanism.describe().items()
            if key != "mechanism"
        }
        if not params:
            return ""
        inner = ",".join(f"{key}={value}" for key, value in sorted(params.items()))
        return f"({inner})"

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------

    def publish(
        self,
        dataset: MobilityDataset,
        requirement: PrivacyRequirement | None = None,
        objective: UtilityObjective | None = None,
        strict: bool = True,
    ) -> PublicationResult:
        """Choose the best mechanism and produce the publishable dataset.

        With ``strict=True`` (the default, and the paper's "minimum level
        of privacy must be enforced") no dataset is returned when every
        mechanism fails the bar; with ``strict=False`` the most private
        mechanism is used as a fallback and flagged in the report.
        """
        from repro.core.requirements import CrowdedPlacesObjective

        requirement = requirement or PrivacyRequirement()
        objective = objective or CrowdedPlacesObjective()
        sensitive = self.sensitive_places(dataset, requirement)

        evaluations = [
            self.audit_mechanism(mechanism, dataset, requirement, objective, sensitive)
            for mechanism in self.mechanisms
        ]
        candidates = [
            (evaluation, mechanism)
            for evaluation, mechanism in zip(evaluations, self.mechanisms)
            if evaluation.satisfies_privacy
        ]
        if candidates:
            chosen_eval, chosen_mechanism = max(
                candidates, key=lambda pair: pair[0].utility
            )
        elif strict:
            report = PublicationReport(
                objective=objective.name,
                requirement_max_poi_recall=requirement.max_poi_recall,
                evaluations=tuple(evaluations),
                chosen=None,
            )
            return PublicationResult(dataset=None, pseudonym_mapping=None, report=report)
        else:
            index = min(
                range(len(evaluations)), key=lambda i: evaluations[i].poi_recall
            )
            chosen_eval, chosen_mechanism = evaluations[index], self.mechanisms[index]

        protected = chosen_mechanism.protect(dataset, seed=self.seed)
        published, mapping = protected.pseudonymized()
        report = PublicationReport(
            objective=objective.name,
            requirement_max_poi_recall=requirement.max_poi_recall,
            evaluations=tuple(evaluations),
            chosen=chosen_eval.mechanism,
        )
        return PublicationResult(
            dataset=published, pseudonym_mapping=mapping, report=report
        )
