"""Parameter tuning: find the best-utility parameter that meets the bar.

The paper's PRIVAPI applies "an *optimal* anonymization strategy".  The
registry audit picks among fixed candidates; this module refines that by
searching a mechanism's parameter space — e.g. the smallest smoothing
step (best spatial resolution) whose audit still clears the privacy
requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.report import MechanismEvaluation
from repro.core.requirements import PrivacyRequirement, UtilityObjective
from repro.errors import PrivacyRequirementError
from repro.mobility.dataset import MobilityDataset
from repro.privacy.mechanisms.base import LocationPrivacyMechanism


@dataclass(frozen=True)
class ParameterSearch:
    """A one-dimensional mechanism family to search.

    ``factory`` builds the mechanism from a parameter value; ``values``
    is the (ordered) candidate grid.
    """

    name: str
    factory: Callable[[float], LocationPrivacyMechanism]
    values: Sequence[float]

    def __post_init__(self) -> None:
        if not self.values:
            raise PrivacyRequirementError(f"search {self.name!r} has no values")


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a parameter search."""

    search: ParameterSearch
    best_value: float | None
    best_mechanism: LocationPrivacyMechanism | None
    evaluations: dict[float, MechanismEvaluation]

    @property
    def satisfied(self) -> bool:
        return self.best_value is not None


def tune_mechanism(
    privapi,
    search: ParameterSearch,
    dataset: MobilityDataset,
    requirement: PrivacyRequirement,
    objective: UtilityObjective,
) -> TuningResult:
    """Audit every value of ``search`` and keep the best compliant one.

    "Best" = highest utility among parameter values whose audit satisfies
    the privacy requirement.  All evaluations are returned so callers can
    plot the privacy/utility frontier.

    ``privapi`` is a :class:`repro.core.privapi.PrivApi` (passed in, not
    imported, to avoid a circular dependency).
    """
    sensitive = privapi.sensitive_places(dataset, requirement)
    evaluations: dict[float, MechanismEvaluation] = {}
    best_value: float | None = None
    best_mechanism: LocationPrivacyMechanism | None = None
    best_utility = -1.0
    for value in search.values:
        mechanism = search.factory(value)
        evaluation = privapi.audit_mechanism(
            mechanism, dataset, requirement, objective, sensitive
        )
        evaluations[value] = evaluation
        if evaluation.satisfies_privacy and evaluation.utility > best_utility:
            best_value = value
            best_mechanism = mechanism
            best_utility = evaluation.utility
    return TuningResult(
        search=search,
        best_value=best_value,
        best_mechanism=best_mechanism,
        evaluations=evaluations,
    )
