"""Publication reports: what PRIVAPI measured and why it chose."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MechanismEvaluation:
    """Audit outcome of one candidate mechanism on one dataset."""

    mechanism: str
    parameters: dict[str, object]
    poi_recall: float
    reidentification: float | None
    utility: float
    suppression: float
    satisfies_privacy: bool

    def summary_row(self) -> str:
        reident = (
            f"{self.reidentification:.2f}" if self.reidentification is not None else "-"
        )
        mark = "ok" if self.satisfies_privacy else "REJECTED"
        return (
            f"{self.mechanism:<28} recall={self.poi_recall:.2f} "
            f"reident={reident} utility={self.utility:.2f} "
            f"suppressed={self.suppression:.2f} [{mark}]"
        )


@dataclass(frozen=True)
class PublicationReport:
    """Full audit trail of one publication decision."""

    objective: str
    requirement_max_poi_recall: float
    evaluations: tuple[MechanismEvaluation, ...]
    chosen: str | None

    def chosen_evaluation(self) -> MechanismEvaluation | None:
        for evaluation in self.evaluations:
            if evaluation.mechanism == self.chosen:
                return evaluation
        return None

    def to_text(self) -> str:
        """Human-readable report (what the platform owner reads)."""
        lines = [
            f"PRIVAPI publication report (objective: {self.objective}, "
            f"max POI recall: {self.requirement_max_poi_recall:.2f})",
            "-" * 78,
        ]
        lines.extend(e.summary_row() for e in self.evaluations)
        lines.append("-" * 78)
        if self.chosen is None:
            lines.append("NO mechanism satisfied the privacy requirement; nothing published.")
        else:
            lines.append(f"chosen: {self.chosen}")
        return "\n".join(lines)
