"""PRIVAPI: the privacy-preserving publication middleware (paper Section 3).

PRIVAPI sits between the platform's collected mobility data and its
public release.  Its design points, straight from the paper:

- it *"leverages the global knowledge of the whole system to apply an
  optimal anonymization strategy"* — implemented as an empirical audit:
  every registered mechanism is applied to the dataset, attacked with the
  standard POI pipeline, and scored against the requested utility
  objective;
- *"there is not one unique anonymization strategy that always performs
  well but many from which we can choose the one that fits the best to
  the usage that will be done with the anonymized dataset"* — the
  registry + objective-driven selection;
- a *"minimum level of privacy must be enforced, as parametrized by the
  users and/or the platform owner"* — the :class:`PrivacyRequirement`
  constraint every candidate must satisfy before utility is even
  considered.
"""

from repro.core.requirements import (
    CrowdedPlacesObjective,
    DistortionObjective,
    OdFlowObjective,
    PrivacyRequirement,
    TrafficFlowObjective,
    UtilityObjective,
)
from repro.core.report import MechanismEvaluation, PublicationReport
from repro.core.privapi import PrivApi, PublicationResult, default_registry
from repro.core.tuning import ParameterSearch, TuningResult, tune_mechanism
from repro.core.pipeline import ContinuousPublisher, EpochRecord

__all__ = [
    "ParameterSearch",
    "TuningResult",
    "tune_mechanism",
    "ContinuousPublisher",
    "EpochRecord",
    "PrivacyRequirement",
    "UtilityObjective",
    "CrowdedPlacesObjective",
    "TrafficFlowObjective",
    "OdFlowObjective",
    "DistortionObjective",
    "MechanismEvaluation",
    "PublicationReport",
    "PrivApi",
    "PublicationResult",
    "default_registry",
]
