"""Continuous publication: PRIVAPI + budget ledger over rolling batches.

A deployed platform does not publish once; it releases every epoch
(weekly dumps, monthly challenges).  :class:`ContinuousPublisher` wraps
:class:`~repro.core.privapi.PrivApi` with the
:class:`~repro.privacy.budget.PrivacyBudgetLedger`: each epoch's batch
is audited, charged against every included user's budget, and refused
outright when any user would exceed the platform cap — privacy debt is
enforced across releases, not per release.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.privapi import PrivApi, PublicationResult
from repro.core.requirements import PrivacyRequirement, UtilityObjective
from repro.errors import PrivacyRequirementError
from repro.mobility.dataset import MobilityDataset
from repro.privacy.budget import PrivacyBudgetLedger
from repro.privacy.mechanisms.geo_indistinguishability import (
    GeoIndistinguishabilityMechanism,
)


@dataclass
class EpochRecord:
    """What happened in one publication epoch."""

    epoch: int
    published: bool
    chosen: str | None
    users: list[str] = field(default_factory=list)
    refused_reason: str | None = None


class ContinuousPublisher:
    """Budgeted, repeated publication of rolling dataset batches."""

    def __init__(
        self,
        privapi: PrivApi,
        ledger: PrivacyBudgetLedger,
        requirement: PrivacyRequirement,
        objective: UtilityObjective,
    ):
        self.privapi = privapi
        self.ledger = ledger
        self.requirement = requirement
        self.objective = objective
        self.history: list[EpochRecord] = []

    @staticmethod
    def _epsilon_cost(result: PublicationResult) -> float:
        """Budget charge of the chosen mechanism.

        Calibrated-noise mechanisms charge their epsilon (one release =
        one query under sequential composition at trajectory level);
        structural mechanisms charge 0 epsilon and rely on the exposure
        cap.  The mapping is deliberately conservative and documented —
        exact DP accounting for trajectory releases is an open problem.
        """
        chosen = result.report.chosen_evaluation()
        if chosen is None:
            return 0.0
        epsilon = chosen.parameters.get("epsilon")
        if isinstance(epsilon, (int, float)):
            return float(epsilon) * 100.0  # per-metre budget -> per-release scale
        return 0.0

    def publish_epoch(self, batch: MobilityDataset) -> EpochRecord:
        """Audit, budget-check and release one epoch's batch."""
        epoch = len(self.history)
        result = self.privapi.publish(
            batch, self.requirement, self.objective, strict=True
        )
        if result.dataset is None:
            record = EpochRecord(
                epoch=epoch,
                published=False,
                chosen=None,
                refused_reason="no mechanism satisfied the privacy requirement",
            )
            self.history.append(record)
            return record

        assert result.pseudonym_mapping is not None
        users = sorted(set(result.pseudonym_mapping.values()))
        epsilon = self._epsilon_cost(result)
        try:
            self.ledger.authorize(users, epsilon=epsilon)
        except PrivacyRequirementError as error:
            record = EpochRecord(
                epoch=epoch,
                published=False,
                chosen=result.report.chosen,
                users=users,
                refused_reason=str(error),
            )
            self.history.append(record)
            return record

        record = EpochRecord(
            epoch=epoch,
            published=True,
            chosen=result.report.chosen,
            users=users,
        )
        self.history.append(record)
        return record

    @property
    def epochs_published(self) -> int:
        return sum(1 for record in self.history if record.published)
