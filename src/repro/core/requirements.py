"""Privacy requirements and utility objectives for publication."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import PrivacyRequirementError
from repro.geo.grid import SpatialGrid
from repro.mobility.dataset import MobilityDataset
from repro.privacy.metrics import dataset_distortion_m
from repro.utility.heatmap import footfall_density, hotspot_f1
from repro.utility.od_matrix import od_matrix, od_similarity
from repro.utility.traffic import flow_correlation, transit_counts


@dataclass(frozen=True)
class PrivacyRequirement:
    """The minimum privacy bar a release must clear.

    Parameters
    ----------
    max_poi_recall:
        Highest tolerable fraction of sensitive places (POIs found in the
        *raw* data — PRIVAPI's global knowledge) that the reference
        attacker may recover from the protected release.
    max_reidentification:
        Highest tolerable linkage rate of the reference re-identification
        attacker; ``None`` skips that (slower) audit.
    attack_radius_m:
        Match radius used when checking recovered POIs against sensitive
        places.
    attacker_denoise_window:
        Strength of the audit attacker's median filter; odd, 1 = off.
        Auditing against a denoising attacker is what makes the bar
        honest for perturbation mechanisms.
    """

    max_poi_recall: float = 0.2
    max_reidentification: float | None = None
    attack_radius_m: float = 250.0
    attacker_denoise_window: int = 9

    def __post_init__(self) -> None:
        if not (0.0 <= self.max_poi_recall <= 1.0):
            raise PrivacyRequirementError(
                f"max_poi_recall must be in [0, 1]: {self.max_poi_recall}"
            )
        if self.max_reidentification is not None and not (
            0.0 <= self.max_reidentification <= 1.0
        ):
            raise PrivacyRequirementError(
                f"max_reidentification must be in [0, 1]: {self.max_reidentification}"
            )
        if self.attack_radius_m <= 0:
            raise PrivacyRequirementError(
                f"attack_radius_m must be positive: {self.attack_radius_m}"
            )
        if self.attacker_denoise_window < 1 or self.attacker_denoise_window % 2 == 0:
            raise PrivacyRequirementError(
                f"attacker_denoise_window must be odd >= 1: {self.attacker_denoise_window}"
            )


class UtilityObjective(ABC):
    """Scores a protected release against the raw dataset; higher wins."""

    name: str = "abstract"

    @abstractmethod
    def score(self, raw: MobilityDataset, protected: MobilityDataset) -> float:
        """Utility in [0, 1] of publishing ``protected`` instead of ``raw``."""


@dataclass(frozen=True)
class CrowdedPlacesObjective(UtilityObjective):
    """"Finding out crowded places": footfall hotspot agreement."""

    cell_size_m: float = 500.0
    top_k: int = 15
    time_step: float = 120.0

    name = "crowded-places"

    def score(self, raw: MobilityDataset, protected: MobilityDataset) -> float:
        grid = SpatialGrid(raw.bounding_box.expanded(0.005), self.cell_size_m)
        raw_density = footfall_density(raw, grid, self.time_step)
        protected_density = footfall_density(protected, grid, self.time_step)
        return hotspot_f1(raw_density, protected_density, self.top_k)


@dataclass(frozen=True)
class TrafficFlowObjective(UtilityObjective):
    """"Predicting traffic": spatial transit-flow agreement."""

    cell_size_m: float = 500.0
    time_step: float = 120.0

    name = "traffic-flow"

    def score(self, raw: MobilityDataset, protected: MobilityDataset) -> float:
        grid = SpatialGrid(raw.bounding_box.expanded(0.005), self.cell_size_m)
        raw_flow = transit_counts(raw, grid, self.time_step).reshape(-1, 1)
        protected_flow = transit_counts(protected, grid, self.time_step).reshape(-1, 1)
        return max(0.0, flow_correlation(raw_flow, protected_flow))


@dataclass(frozen=True)
class OdFlowObjective(UtilityObjective):
    """Origin-destination trip flows at planner-zone granularity.

    OD analysis is stop-based, so this objective *disfavours* speed
    smoothing (which erases stops) and favours generalization
    mechanisms — the registry member that wins flips with the analyst's
    task, which is PRIVAPI's core thesis.
    """

    cell_size_m: float = 2000.0

    name = "od-flows"

    def score(self, raw: MobilityDataset, protected: MobilityDataset) -> float:
        grid = SpatialGrid(raw.bounding_box.expanded(0.005), self.cell_size_m)
        raw_od = od_matrix(raw, grid)
        protected_od = od_matrix(protected, grid)
        return max(0.0, od_similarity(raw_od, protected_od))


@dataclass(frozen=True)
class DistortionObjective(UtilityObjective):
    """Generic objective: keep published positions close to reality.

    Maps mean spatial distortion ``d`` to a [0, 1] score via
    ``scale / (scale + d)`` so 0 m of distortion scores 1 and ``scale``
    metres scores 0.5.
    """

    scale_m: float = 200.0

    name = "distortion"

    def score(self, raw: MobilityDataset, protected: MobilityDataset) -> float:
        if len(protected) == 0:
            return 0.0
        distortion = dataset_distortion_m(raw, protected)
        if distortion == float("inf"):
            return 0.0
        return self.scale_m / (self.scale_m + distortion)
