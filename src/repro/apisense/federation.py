"""Hive federation: syndicate tasks across communities.

"One of the benefits of building a common platform like APISENSE lies in
the federation of communities of mobile users" (paper Section 2).  A
federation groups several Hives (e.g. one per city or per partner
institution); a task deployed at its home Hive can be *syndicated* to
partner Hives, whose crowds contribute to the same Honeycomb.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apisense.hive import Hive
from repro.apisense.honeycomb import Honeycomb
from repro.apisense.tasks import SensingTask
from repro.errors import PlatformError


@dataclass(frozen=True)
class SyndicationReceipt:
    """Where a syndicated task ended up."""

    task: str
    home_hive: str
    partner_hives: tuple[str, ...]
    total_offers: int


class HiveFederation:
    """A named group of Hives that share task syndication."""

    def __init__(self) -> None:
        self._hives: dict[str, Hive] = {}

    def register_hive(self, name: str, hive: Hive) -> None:
        if name in self._hives:
            raise PlatformError(f"hive {name!r} already federated")
        self._hives[name] = hive

    @property
    def hive_names(self) -> list[str]:
        return list(self._hives)

    def hive(self, name: str) -> Hive:
        if name not in self._hives:
            raise PlatformError(f"unknown federated hive {name!r}")
        return self._hives[name]

    def total_devices(self) -> int:
        """Community size across the whole federation."""
        return sum(len(hive.devices) for hive in self._hives.values())

    def syndicate(
        self,
        task: SensingTask,
        owner: Honeycomb,
        home: str,
        partners: list[str] | None = None,
        recruitment=None,
    ) -> SyndicationReceipt:
        """Publish ``task`` at its home Hive and every partner Hive.

        All collected data routes back to the single owning Honeycomb
        regardless of which community produced it.  ``partners`` defaults
        to every other federated Hive.
        """
        if home not in self._hives:
            raise PlatformError(f"unknown home hive {home!r}")
        partner_names = (
            [name for name in self._hives if name != home]
            if partners is None
            else list(partners)
        )
        for name in partner_names:
            if name not in self._hives:
                raise PlatformError(f"unknown partner hive {name!r}")
            if name == home:
                raise PlatformError("home hive listed among partners")

        owner.register_task(task)
        self._hives[home].publish_task(task, owner=owner, recruitment=recruitment)
        for name in partner_names:
            self._hives[name].publish_task(task, owner=owner, recruitment=recruitment)

        total_offers = sum(
            self._hives[name].stats.per_task[task.name].offers
            for name in [home, *partner_names]
        )
        return SyndicationReceipt(
            task=task.name,
            home_hive=home,
            partner_hives=tuple(partner_names),
            total_offers=total_offers,
        )

    def task_stats(self, task_name: str) -> dict[str, tuple[int, int, int]]:
        """Per-hive (offers, acceptances, records) for a syndicated task."""
        stats: dict[str, tuple[int, int, int]] = {}
        for name, hive in self._hives.items():
            per_task = hive.stats.per_task.get(task_name)
            if per_task is not None:
                stats[name] = (per_task.offers, per_task.acceptances, per_task.records)
        return stats
