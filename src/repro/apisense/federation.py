"""Legacy federation facade — superseded by :mod:`repro.federation`.

The original :class:`HiveFederation` syndicated a task across Hives
sharing one process and nothing more.  The real federation tier now
lives in :mod:`repro.federation`: consistent-hash device placement,
membership changes with migration, failure/rejoin injection, gossip over
the lossy transport, and a federated query plane.  This module keeps the
old surface working as a thin wrapper over
:class:`~repro.federation.router.FederationRouter` with an ideal
(synchronous, lossless) control plane — exactly the semantics the stub
had — so existing deployments keep running; new code should use the
router directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.apisense.hive import Hive
from repro.apisense.honeycomb import Honeycomb
from repro.apisense.tasks import SensingTask
from repro.errors import PlatformError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.router import FederationRouter


@dataclass(frozen=True)
class SyndicationReceipt:
    """Where a syndicated task ended up."""

    task: str
    home_hive: str
    partner_hives: tuple[str, ...]
    total_offers: int


class HiveFederation:
    """A named group of Hives that share task syndication.

    Deprecated facade: delegates to
    :class:`repro.federation.FederationRouter` (reachable as
    :attr:`router` for incremental migration).
    """

    def __init__(self) -> None:
        self._router: "FederationRouter | None" = None

    @property
    def router(self) -> "FederationRouter":
        """The backing federation router (migration escape hatch)."""
        if self._router is None:
            raise PlatformError("federation has no hives yet")
        return self._router

    def register_hive(self, name: str, hive: Hive) -> None:
        if self._router is None:
            from repro.federation.router import FederationRouter

            # The legacy facade has no control transport: announcements
            # are synchronous and lossless, as the old stub behaved.
            self._router = FederationRouter(hive.sim)
        self._router.join(name, hive)

    @property
    def hive_names(self) -> list[str]:
        return [] if self._router is None else self._router.member_names

    def hive(self, name: str) -> Hive:
        return self.router.hive(name)

    def total_devices(self) -> int:
        """Community size across the whole federation."""
        return 0 if self._router is None else self._router.total_devices()

    def syndicate(
        self,
        task: SensingTask,
        owner: Honeycomb,
        home: str,
        partners: list[str] | None = None,
        recruitment=None,
    ) -> SyndicationReceipt:
        """Publish ``task`` at its home Hive and every partner Hive.

        All collected data routes back to the single owning Honeycomb
        regardless of which community produced it.  ``partners`` defaults
        to every other federated Hive.
        """
        if self._router is None:
            raise PlatformError(f"unknown home hive {home!r}")
        receipt = self._router.syndicate(
            task, owner, home=home, partners=partners, recruitment=recruitment
        )
        # Synchronous control plane: every offer is already counted.
        total_offers = sum(
            stats.offers for stats in self._router.task_stats(task.name).values()
        )
        return SyndicationReceipt(
            task=receipt.task,
            home_hive=receipt.home_hive,
            partner_hives=receipt.partner_hives,
            total_offers=total_offers,
        )

    def task_stats(self, task_name: str) -> dict[str, tuple[int, int, int]]:
        """Per-hive (offers, acceptances, records) for a syndicated task."""
        if self._router is None:
            return {}
        return {
            name: (stats.offers, stats.acceptances, stats.records)
            for name, stats in self._router.task_stats(task_name).items()
        }
