"""Virtual sensors: device groups behind a scheduling strategy.

"The APISENSE platform also implements the concept of virtual sensors as
a mean to abstract the individual devices" (paper Section 2).  A virtual
sensor answers reads like a single device would, internally delegating
each read to one member device chosen by its strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apisense.device import MobileDevice
from repro.apisense.scheduling import SchedulingStrategy
from repro.errors import PlatformError
from repro.simulation import Simulator


@dataclass
class VirtualSensorStats:
    """Observable counters of one virtual sensor."""

    reads_requested: int = 0
    reads_served: int = 0
    reads_unavailable: int = 0
    served_per_device: dict[str, int] = field(default_factory=dict)

    @property
    def availability(self) -> float:
        if self.reads_requested == 0:
            return 0.0
        return self.reads_served / self.reads_requested


class VirtualSensor:
    """A group of devices exposed as one logical sensor."""

    def __init__(
        self,
        name: str,
        sensor_name: str,
        devices: list[MobileDevice],
        strategy: SchedulingStrategy,
        sim: Simulator,
        seed: int = 0,
    ):
        if not devices:
            raise PlatformError(f"virtual sensor {name!r} needs at least one device")
        if any(sensor_name not in device.sensors for device in devices):
            raise PlatformError(
                f"virtual sensor {name!r}: every member must have sensor {sensor_name!r}"
            )
        self.name = name
        self.sensor_name = sensor_name
        self._devices = devices
        self.strategy = strategy
        self._sim = sim
        self._rng = np.random.default_rng(seed)
        self.stats = VirtualSensorStats()

    def read(self) -> tuple[str, object] | None:
        """One orchestrated read: (serving device id, value) or None.

        ``None`` means no member device was available (all batteries
        dead or users in quiet hours) — the availability gap energy-aware
        scheduling is designed to shrink.
        """
        now = self._sim.now
        self.stats.reads_requested += 1
        available = [device for device in self._devices if device.is_available(now)]
        device = self.strategy.select(available, now, self._rng)
        if device is None:
            self.stats.reads_unavailable += 1
            return None
        try:
            value = device.read_sensor(self.sensor_name, now)
        except PlatformError:
            self.stats.reads_unavailable += 1
            return None
        self.stats.reads_served += 1
        counts = self.stats.served_per_device
        counts[device.device_id] = counts.get(device.device_id, 0) + 1
        return (device.device_id, value)

    def battery_levels(self) -> dict[str, float]:
        """Current battery level of every member device."""
        now = self._sim.now
        return {
            device.device_id: device.battery.level(now) for device in self._devices
        }

    def battery_fairness(self) -> float:
        """Jain's fairness index over member battery levels (1 = equal)."""
        levels = np.array(list(self.battery_levels().values()))
        if levels.size == 0 or levels.sum() == 0:
            return 0.0
        return float(levels.sum() ** 2 / (levels.size * (levels**2).sum()))
