"""Honeycomb: the scientist-facing endpoint.

A Honeycomb describes crowd-sensing tasks, uploads them to the Hive, and
receives the datasets produced by the crowd.  Processing hooks let other
middleware — PRIVAPI above all — intercept a task's dataset before the
scientist consumes it.
"""

from __future__ import annotations

from typing import Callable

from repro.apisense.device import SensorRecord
from repro.apisense.hive import Hive
from repro.apisense.tasks import SensingTask
from repro.errors import PlatformError
from repro.geo.point import GeoPoint, Record
from repro.geo.trajectory import Trajectory
from repro.mobility.dataset import MobilityDataset

#: Hook signature: receives (task_name, batch) after each routed upload.
DatasetHook = Callable[[str, list[SensorRecord]], None]


class Honeycomb:
    """One data-collection endpoint owned by an experimenter."""

    def __init__(self, name: str, hive: Hive):
        self.name = name
        self._hive = hive
        self._tasks: dict[str, SensingTask] = {}
        self._records: dict[str, list[SensorRecord]] = {}
        self._hooks: list[DatasetHook] = []

    # ------------------------------------------------------------------
    # Task side
    # ------------------------------------------------------------------

    def register_task(self, task: SensingTask) -> None:
        """Register a task without publishing it.

        Used by :class:`repro.apisense.federation.HiveFederation`, which
        handles publication across several Hives itself.
        """
        task.validate()
        if task.name in self._tasks:
            raise PlatformError(f"honeycomb {self.name!r} already deployed {task.name!r}")
        self._tasks[task.name] = task
        self._records[task.name] = []

    def deploy(self, task: SensingTask, recruitment=None, vet: bool = False) -> None:
        """Validate and publish a task through the Hive.

        ``recruitment`` optionally restricts which devices are offered
        the task (see :mod:`repro.apisense.recruitment`).  With
        ``vet=True`` the task's script is dry-run against synthetic
        samples first and deployment is refused when it crashes or drops
        (nearly) everything — the platform's script-vetting gate.
        """
        if vet:
            from repro.apisense.vetting import dry_run_task
            from repro.errors import TaskValidationError

            report = dry_run_task(task)
            if not report.acceptable():
                raise TaskValidationError(
                    f"task {task.name!r} failed vetting: error rate "
                    f"{report.error_rate:.0%}, drop rate {report.drop_rate:.0%}; "
                    f"first errors: {report.error_messages[:3]}"
                )
        self.register_task(task)
        self._hive.publish_task(task, owner=self, recruitment=recruitment)

    @property
    def tasks(self) -> list[SensingTask]:
        return list(self._tasks.values())

    # ------------------------------------------------------------------
    # Data side
    # ------------------------------------------------------------------

    def add_hook(self, hook: DatasetHook) -> None:
        """Register a processing hook (e.g. PRIVAPI ingestion)."""
        self._hooks.append(hook)

    def receive_dataset(self, task_name: str, records: list[SensorRecord]) -> None:
        """Store a routed upload batch and fire hooks."""
        if task_name not in self._tasks:
            raise PlatformError(
                f"honeycomb {self.name!r} received data for foreign task {task_name!r}"
            )
        self._records[task_name].extend(records)
        for hook in self._hooks:
            hook(task_name, records)

    def records(self, task_name: str) -> list[SensorRecord]:
        """All records collected so far for a task."""
        if task_name not in self._records:
            raise PlatformError(f"unknown task {task_name!r}")
        return list(self._records[task_name])

    def dataset_view(
        self,
        task_name: str,
        t0: float | None = None,
        t1: float | None = None,
        bbox=None,
        user: str | None = None,
    ):
        """Columnar scan of a task's data from the Hive's dataset store.

        This is the scalable read path: numpy ``time/lat/lon/value/user``
        arrays straight from the store's segments, with optional
        time-range / bbox / per-user filters (see
        :meth:`repro.store.DatasetStore.scan`).  In a federation it
        covers the home Hive's store only; :meth:`records` remains the
        cross-community record list.
        """
        if task_name not in self._tasks:
            raise PlatformError(f"unknown task {task_name!r}")
        return self._hive.store.scan(task_name, t0=t0, t1=t1, bbox=bbox, user=user)

    def aggregate(self, task_name: str):
        """The store's streaming aggregate view of a task.

        Returns ``None`` until the first flush lands (the view is
        created with the task's first stored batch).
        """
        if task_name not in self._tasks:
            raise PlatformError(f"unknown task {task_name!r}")
        return self._hive.store.aggregates.get(task_name)

    def n_records(self, task_name: str) -> int:
        return len(self._records.get(task_name, []))

    def mobility_dataset(self, task_name: str) -> MobilityDataset:
        """Assemble the GPS stream of a task into a mobility dataset.

        This is the dataset PRIVAPI protects before publication.  Records
        without a GPS value (dropped field, non-location task) are
        skipped; devices contribute under their *user* id, matching the
        mobility ground truth.
        """
        per_user: dict[str, list[Record]] = {}
        for record in self.records(task_name):
            position = record.values.get("gps")
            if not isinstance(position, GeoPoint):
                continue
            per_user.setdefault(record.user, []).append(
                Record(point=position, time=record.time)
            )
        trajectories = [
            Trajectory.from_records(user, records)
            for user, records in per_user.items()
            if records
        ]
        return MobilityDataset(trajectories)
