"""Recruitment policies: which devices a task is offered to.

"One of the benefits of building a common platform like APISENSE lies in
the federation of communities of mobile users ... to ease their
recruitment" (paper Section 2).  A recruitment policy filters/selects
the community before offers go out; policies compose with ``&``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.apisense.device import MobileDevice
from repro.apisense.tasks import SensingTask
from repro.errors import PlatformError
from repro.geo.bbox import BoundingBox


class RecruitmentPolicy(ABC):
    """Selects the subset of registered devices to offer a task to."""

    name: str = "abstract"

    @abstractmethod
    def select(
        self,
        devices: list[MobileDevice],
        task: SensingTask,
        time: float,
        rng: np.random.Generator,
    ) -> list[MobileDevice]:
        """Return the devices to offer ``task`` to, order preserved."""

    def __and__(self, other: "RecruitmentPolicy") -> "RecruitmentPolicy":
        return _ComposedPolicy(self, other)


class _ComposedPolicy(RecruitmentPolicy):
    """Sequential composition: the second policy filters the first's pick."""

    def __init__(self, first: RecruitmentPolicy, second: RecruitmentPolicy):
        self._first = first
        self._second = second
        self.name = f"{first.name}&{second.name}"

    def select(self, devices, task, time, rng):
        return self._second.select(
            self._first.select(devices, task, time, rng), task, time, rng
        )


class AllDevices(RecruitmentPolicy):
    """The default: offer to the whole community."""

    name = "all"

    def select(self, devices, task, time, rng):
        return list(devices)


class RegionRecruitment(RecruitmentPolicy):
    """Offer only to devices currently inside an area.

    Uses the task's own region when ``region`` is None; with neither set
    the policy passes everyone through.
    """

    name = "region"

    def __init__(self, region: BoundingBox | None = None):
        self.region = region

    def select(self, devices, task, time, rng):
        region = self.region if self.region is not None else task.region
        if region is None:
            return list(devices)
        return [d for d in devices if region.contains(d.position(time))]


class BatteryFloorRecruitment(RecruitmentPolicy):
    """Skip devices below a battery level — don't drain the weak."""

    name = "battery-floor"

    def __init__(self, min_level: float = 0.3):
        if not (0.0 <= min_level <= 1.0):
            raise PlatformError(f"min_level must be in [0, 1]: {min_level}")
        self.min_level = min_level

    def select(self, devices, task, time, rng):
        return [d for d in devices if d.battery.level(time) >= self.min_level]


class QuotaRecruitment(RecruitmentPolicy):
    """Uniformly sample at most ``quota`` devices.

    Experiments that need a fixed panel size (or must bound incentive
    spend) recruit a random quota instead of the whole crowd.
    """

    name = "quota"

    def __init__(self, quota: int):
        if quota < 1:
            raise PlatformError(f"quota must be >= 1: {quota}")
        self.quota = quota

    def select(self, devices, task, time, rng):
        if len(devices) <= self.quota:
            return list(devices)
        chosen = rng.choice(len(devices), size=self.quota, replace=False)
        return [devices[int(i)] for i in sorted(chosen)]


class PredicateRecruitment(RecruitmentPolicy):
    """Offer only to devices matching an arbitrary predicate.

    The extension point for selection criteria that live outside the
    device itself — above all federation placement:
    :meth:`repro.federation.FederationRouter.placement_recruitment`
    builds one that keeps a member Hive from offering to devices the
    ring homes elsewhere (e.g. during a registration handover race).
    """

    name = "predicate"

    def __init__(self, predicate, name: str | None = None):
        self._predicate = predicate
        if name is not None:
            self.name = name

    def select(self, devices, task, time, rng):
        return [d for d in devices if self._predicate(d, time)]


class SensorCapabilityRecruitment(RecruitmentPolicy):
    """Offer only to devices that have (and whose users share) the
    requested sensors — saves offers that would be declined anyway."""

    name = "capability"

    def select(self, devices, task, time, rng):
        return [
            d
            for d in devices
            if all(s in d.sensors for s in task.sensors)
            and d.preferences.allows_sensors(task.sensors)
        ]
