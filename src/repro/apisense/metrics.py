"""Shared metric definitions used by more than one dashboard.

The Hive's per-task statistics and the monitoring layer's health
snapshots both report an acceptance rate; defining the ratio once here
keeps the two dashboards (and any future federation roll-up) from
drifting apart on edge cases like zero offers.
"""

from __future__ import annotations


def acceptance_rate(acceptances: int, offers: int) -> float:
    """Fraction of task offers that were accepted (0.0 when none sent)."""
    return acceptances / offers if offers else 0.0
