"""On-device privacy filters (the paper's first privacy layer).

Filters process each sample *before* it enters the upload buffer, so
vetoed data never leaves the device.  A filter returns the (possibly
modified) value map, or ``None`` to drop the sample entirely.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

from repro.geo.distance import haversine_m
from repro.geo.grid import SpatialGrid
from repro.geo.bbox import BoundingBox
from repro.geo.point import GeoPoint
from repro.apisense.preferences import UserPreferences

Sample = Mapping[str, object]


class PrivacyFilter(ABC):
    """One on-device sample filter."""

    @abstractmethod
    def apply(self, values: Sample, time: float) -> Sample | None:
        """Return filtered values, or ``None`` to drop the sample."""


class QuietHoursFilter(PrivacyFilter):
    """Drops every sample inside the user's quiet windows."""

    def __init__(self, preferences: UserPreferences):
        self._preferences = preferences

    def apply(self, values: Sample, time: float) -> Sample | None:
        if self._preferences.in_quiet_hours(time):
            return None
        return values


class AreaFenceFilter(PrivacyFilter):
    """Drops samples taken inside any forbidden zone.

    Only applies when the sample carries a position; tasks without GPS
    cannot leak location, so they pass.
    """

    def __init__(self, zones: tuple[tuple[GeoPoint, float], ...]):
        self._zones = zones

    def apply(self, values: Sample, time: float) -> Sample | None:
        position = values.get("gps")
        if not isinstance(position, GeoPoint) or not self._zones:
            return values
        for center, radius in self._zones:
            if haversine_m(position, center) <= radius:
                return None
        return values


class LocationBlurFilter(PrivacyFilter):
    """Snaps GPS readings to a coarse grid before upload.

    The grid is anchored on a fixed reference so blurring is stable
    across samples (a wandering anchor would leak more, not less).
    """

    #: Grid anchor; any fixed point works since only cell pitch matters.
    _ANCHOR = BoundingBox(south=-85.0, west=-180.0, north=85.0, east=180.0)

    def __init__(self, cell_m: float):
        self._cell_m = cell_m
        self._grid: SpatialGrid | None = None

    def apply(self, values: Sample, time: float) -> Sample | None:
        position = values.get("gps")
        if not isinstance(position, GeoPoint) or self._cell_m <= 0:
            return values
        # Anchor a small local grid lazily around the first observed fix;
        # pitch is what matters for the blur guarantee.
        if self._grid is None:
            box = BoundingBox(
                south=position.lat - 0.5,
                west=position.lon - 0.5,
                north=position.lat + 0.5,
                east=position.lon + 0.5,
            )
            self._grid = SpatialGrid(bbox=box, cell_size_m=self._cell_m)
        blurred = dict(values)
        blurred["gps"] = self._grid.snap(position)
        return blurred


class FieldDropFilter(PrivacyFilter):
    """Removes named fields from every sample (e.g. sensitive sensors)."""

    def __init__(self, fields: frozenset[str]):
        self._fields = fields

    def apply(self, values: Sample, time: float) -> Sample | None:
        if not self._fields:
            return values
        kept = {k: v for k, v in values.items() if k not in self._fields}
        return kept if kept else None


class PrivacyFilterChain(PrivacyFilter):
    """Sequential composition; the first ``None`` wins (sample dropped)."""

    def __init__(self, filters: list[PrivacyFilter]):
        self._filters = filters

    def apply(self, values: Sample, time: float) -> Sample | None:
        current: Sample | None = values
        for privacy_filter in self._filters:
            if current is None:
                return None
            current = privacy_filter.apply(current, time)
        return current

    @classmethod
    def from_preferences(cls, preferences: UserPreferences) -> "PrivacyFilterChain":
        """Compile a user's preferences into the device filter chain."""
        filters: list[PrivacyFilter] = [QuietHoursFilter(preferences)]
        if preferences.forbidden_zones:
            filters.append(AreaFenceFilter(preferences.forbidden_zones))
        if preferences.blur_cell_m > 0:
            filters.append(LocationBlurFilter(preferences.blur_cell_m))
        return cls(filters)
