"""Retrieval strategies for virtual sensors (paper Section 2).

"...offer a set of additional services that self-organize a group of
mobile devices to orchestrate the retrieval of datasets according to
different strategies (e.g., round robin, energy-aware)."

A strategy picks, among the currently available devices, which one should
serve the next read.  Strategies are compared in experiment E6 on total
samples served and battery fairness.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.apisense.device import MobileDevice
from repro.geo.grid import SpatialGrid


class SchedulingStrategy(ABC):
    """Chooses the device that serves the next virtual-sensor read."""

    name: str = "abstract"

    @abstractmethod
    def select(
        self, devices: list[MobileDevice], time: float, rng: np.random.Generator
    ) -> MobileDevice | None:
        """Pick a device from the non-empty availability list."""


class RoundRobinStrategy(SchedulingStrategy):
    """Cycle through devices in registration order.

    Fair in *request count*, blind to battery: weak devices get drained
    at the same rate as strong ones.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def select(
        self, devices: list[MobileDevice], time: float, rng: np.random.Generator
    ) -> MobileDevice | None:
        if not devices:
            return None
        device = devices[self._cursor % len(devices)]
        self._cursor += 1
        return device


class EnergyAwareStrategy(SchedulingStrategy):
    """Prefer devices with charge to spare.

    Selection is randomized proportionally to ``battery_level ** alpha``;
    higher ``alpha`` concentrates load on the fullest batteries.  The
    randomization avoids hammering a single device when levels tie.
    """

    name = "energy-aware"

    def __init__(self, alpha: float = 2.0):
        self.alpha = alpha

    def select(
        self, devices: list[MobileDevice], time: float, rng: np.random.Generator
    ) -> MobileDevice | None:
        if not devices:
            return None
        levels = np.array([device.battery.level(time) for device in devices])
        weights = np.power(np.maximum(levels, 1e-9), self.alpha)
        total = weights.sum()
        if total <= 0:
            return None
        return devices[int(rng.choice(len(devices), p=weights / total))]


class CoverageGreedyStrategy(SchedulingStrategy):
    """Maximise spatial coverage: pick a device in the stalest grid cell.

    Keeps a per-cell last-served clock and selects the available device
    whose current cell has waited longest.
    """

    name = "coverage-greedy"

    def __init__(self, grid: SpatialGrid):
        self.grid = grid
        self._last_served: dict[tuple[int, int], float] = {}

    def select(
        self, devices: list[MobileDevice], time: float, rng: np.random.Generator
    ) -> MobileDevice | None:
        if not devices:
            return None
        best_device = None
        best_staleness = -1.0
        for device in devices:
            cell = self.grid.cell_of(device.position(time))
            staleness = time - self._last_served.get(cell, -float("inf"))
            if staleness > best_staleness:
                best_staleness = staleness
                best_device = device
        assert best_device is not None
        self._last_served[self.grid.cell_of(best_device.position(time))] = time
        return best_device


class FairBudgetStrategy(SchedulingStrategy):
    """Equalise *served sample counts* across devices (strict fairness)."""

    name = "fair-budget"

    def __init__(self) -> None:
        self._served: dict[str, int] = {}

    def select(
        self, devices: list[MobileDevice], time: float, rng: np.random.Generator
    ) -> MobileDevice | None:
        if not devices:
            return None
        device = min(devices, key=lambda d: self._served.get(d.device_id, 0))
        self._served[device.device_id] = self._served.get(device.device_id, 0) + 1
        return device
