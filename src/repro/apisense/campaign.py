"""Campaign orchestration: population + platform + tasks, end to end.

A :class:`Campaign` builds the full deployment of paper Figure 1 from a
generated population: one device per user, a Hive with an incentive
strategy, one Honeycomb per experimenter, the tasks to deploy — then runs
the simulator day by day (with the incentive engine's daily pass) and
produces a :class:`CampaignReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apisense.battery import Battery, BatteryModel
from repro.apisense.device import MobileDevice
from repro.apisense.hive import Hive
from repro.apisense.honeycomb import Honeycomb
from repro.apisense.incentives import IncentiveStrategy, NoIncentive
from repro.apisense.preferences import UserPreferences
from repro.apisense.sensors import SensorSuite, default_sensor_suite
from repro.apisense.tasks import SensingTask
from repro.errors import PlatformError
from repro.mobility.generator import PopulationData
from repro.privacy.secure_aggregation import SecureAggregationPolicy
from repro.simulation import Simulator
from repro.units import DAY


@dataclass(frozen=True)
class CampaignConfig:
    """Deployment-wide knobs."""

    n_days: float = 7.0
    delivery_latency: float = 0.2
    #: Devices start with batteries uniformly in this range.
    initial_battery: tuple[float, float] = (0.5, 1.0)
    #: Battery parameters shared by the fleet's device class; heavier
    #: drain profiles exercise energy-adaptive scripts.
    battery_model: BatteryModel = field(default_factory=BatteryModel)
    #: Daily participation dynamics: a participant drops a task with
    #: probability ``(1 - motivation) * daily_churn``; a lapsed user
    #: re-joins with probability ``acceptance * rejoin_factor``.  This is
    #: the mechanism through which incentive strategies shape collected
    #: volume (experiment E7).
    daily_churn: float = 0.3
    rejoin_factor: float = 0.5
    #: Probability that a wireless message (offer or upload) is lost;
    #: devices retry lost uploads at the next upload tick.
    uplink_loss: float = 0.0
    #: Privacy tier: how secure aggregates over this campaign's data are
    #: computed — per-device protocol selection (battery floor, key
    #: size, dropout resilience); see :meth:`Campaign.secure_aggregate`.
    secure_aggregation: SecureAggregationPolicy = field(
        default_factory=SecureAggregationPolicy
    )
    seed: int = 0


@dataclass
class CampaignReport:
    """What a finished campaign measured."""

    n_devices: int
    duration_days: float
    records_per_task: dict[str, int]
    acceptance_rate_per_task: dict[str, float]
    uploads_per_task: dict[str, int]
    messages_sent: int
    events_processed: int
    mean_motivation: float
    mean_battery: float
    daily_records: list[int] = field(default_factory=list)
    daily_participants: list[int] = field(default_factory=list)

    @property
    def total_records(self) -> int:
        return sum(self.records_per_task.values())


class Campaign:
    """Builds and runs one simulated crowd-sensing deployment."""

    def __init__(
        self,
        population: PopulationData,
        incentive: IncentiveStrategy | None = None,
        config: CampaignConfig | None = None,
        preferences: dict[str, UserPreferences] | None = None,
    ):
        self.population = population
        self.config = config or CampaignConfig()
        self.sim = Simulator()
        from repro.apisense.transport import Transport

        self.hive = Hive(
            self.sim,
            incentive=incentive or NoIncentive(),
            delivery_latency=self.config.delivery_latency,
            transport=Transport(
                latency_mean=self.config.delivery_latency,
                latency_jitter=self.config.delivery_latency * 0.2,
                loss=self.config.uplink_loss,
                seed=self.config.seed,
            ),
            seed=self.config.seed,
        )
        self._honeycombs: dict[str, Honeycomb] = {}
        self._preferences = preferences or {}
        self._rng = np.random.default_rng(self.config.seed)
        self._sensor_suite: SensorSuite = default_sensor_suite(
            population.city, self._rng
        )
        self.devices: list[MobileDevice] = []
        self._build_devices()
        self._daily_records: list[int] = []
        self._daily_participants: list[int] = []
        self._run_days: float | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_devices(self) -> None:
        lo, hi = self.config.initial_battery
        for index, trajectory in enumerate(self.population.dataset):
            user = trajectory.user
            device = MobileDevice(
                device_id=f"device-{index:04d}",
                user=user,
                trajectory=trajectory,
                sensors=self._sensor_suite,
                battery=Battery(
                    self.config.battery_model, level=float(self._rng.uniform(lo, hi))
                ),
                preferences=self._preferences.get(user, UserPreferences()),
                seed=self.config.seed * 100_003 + index,
            )
            self.hive.register_device(device)
            self.devices.append(device)

    def honeycomb(self, name: str) -> Honeycomb:
        """Get or create the Honeycomb endpoint named ``name``."""
        if name not in self._honeycombs:
            self._honeycombs[name] = Honeycomb(name, self.hive)
        return self._honeycombs[name]

    def deploy(
        self,
        task: SensingTask,
        honeycomb: str = "default",
        recruitment=None,
    ) -> Honeycomb:
        """Deploy a task from the given Honeycomb; returns the endpoint.

        ``recruitment`` (a :class:`repro.apisense.recruitment.
        RecruitmentPolicy`) restricts who receives the offer.
        """
        endpoint = self.honeycomb(name=honeycomb)
        endpoint.deploy(task, recruitment=recruitment)
        return endpoint

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self) -> CampaignReport:
        """Run the whole campaign and return its report."""
        if not any(h.tasks for h in self._honeycombs.values()):
            raise PlatformError("campaign has no deployed task; deploy() first")
        n_days = self.config.n_days
        previous_total = 0
        day = 1.0
        while day <= n_days + 1e-9:
            self.sim.run_until(day * DAY)
            self.hive.end_of_day()
            self._daily_participation()
            total = sum(
                stats.records for stats in self.hive.stats.per_task.values()
            )
            self._daily_records.append(total - previous_total)
            previous_total = total
            self._daily_participants.append(
                sum(1 for device in self.devices if device.running_tasks)
            )
            day += 1.0
        # Drain in-flight routing: the last uploads' Honeycomb deliveries
        # are scheduled one latency hop after the final day boundary, and
        # a deep spill backlog may need more flush rounds than the time
        # window allows — flush_all() guarantees nothing stays stranded
        # in the ingest pipeline.
        self._run_days = n_days
        self.sim.run_until(n_days * DAY + 2.0 * self.config.delivery_latency + 1.0)
        self.hive.pipeline.flush_all()
        final_total = sum(
            stats.records for stats in self.hive.stats.per_task.values()
        )
        if self._daily_records and final_total > previous_total:
            self._daily_records[-1] += final_total - previous_total
        return self.report()

    def _daily_participation(self) -> None:
        """Churn and re-join pass, driven by community motivation.

        Users whose motivation lapsed abandon running tasks; lapsed users
        may pick tasks back up when the incentive strategy has restored
        their motivation.  This closes the loop that makes incentive
        strategies (paper Section 2) measurable in collected volume.
        """
        incentive = self.hive.incentive
        for honeycomb in self._honeycombs.values():
            for task in honeycomb.tasks:
                if task.end <= self.sim.now:
                    continue
                for device in self.devices:
                    state = self.hive.community[device.user]
                    if task.name in device.running_tasks:
                        churn = (1.0 - state.motivation) * self.config.daily_churn
                        if self._rng.uniform() < churn:
                            device.stop_task(task.name)
                    else:
                        rejoin = (
                            incentive.acceptance_probability(state)
                            * self.config.rejoin_factor
                        )
                        device.offer_task(task, rejoin)

    def secure_aggregate(self, task_name: str, **kwargs):
        """Aggregator-oblivious aggregates of one task's collected data.

        Runs the config's :class:`~repro.privacy.secure_aggregation.
        SecureAggregationPolicy` over the Hive's store and enrolled
        devices; see :meth:`repro.apisense.hive.Hive.secure_aggregate`.
        """
        kwargs.setdefault("policy", self.config.secure_aggregation)
        return self.hive.secure_aggregate(task_name, **kwargs)

    def report(self) -> CampaignReport:
        """Snapshot the campaign's statistics."""
        now = self.sim.now
        levels = [device.battery.level(now) for device in self.devices]
        per_task = self.hive.stats.per_task
        return CampaignReport(
            n_devices=len(self.devices),
            duration_days=self._run_days if self._run_days is not None else now / DAY,
            records_per_task={name: s.records for name, s in per_task.items()},
            acceptance_rate_per_task={
                name: s.acceptance_rate for name, s in per_task.items()
            },
            uploads_per_task={name: s.uploads for name, s in per_task.items()},
            messages_sent=self.hive.stats.messages_sent,
            events_processed=self.sim.events_processed,
            mean_motivation=self.hive.mean_motivation(),
            mean_battery=float(np.mean(levels)) if levels else 0.0,
            daily_records=list(self._daily_records),
            daily_participants=list(self._daily_participants),
        )
