"""Network transport model: latency, loss, and delivery statistics.

The paper's platform runs over real mobile networks; the simulation's
equivalent is a lossy, jittery message hop.  Devices use store-and-
forward (the buffer survives a lost upload and is retried on the next
upload tick), so loss costs freshness, not data — matching the real
APISENSE client's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import PlatformError
from repro.simulation import Simulator


@dataclass
class TransportStats:
    """Counters of one transport endpoint."""

    messages_sent: int = 0
    messages_lost: int = 0
    payload_items: int = 0

    @property
    def loss_rate(self) -> float:
        if self.messages_sent == 0:
            return 0.0
        return self.messages_lost / self.messages_sent


class Transport:
    """A one-way message channel with latency jitter and random loss.

    Parameters
    ----------
    latency_mean / latency_jitter:
        Delivery delay is ``max(1 ms, Normal(mean, jitter))`` seconds.
    loss:
        Probability that a message is dropped entirely (the sender can
        observe the failure, modelling a failed TCP connect / timeout).
    """

    def __init__(
        self,
        latency_mean: float = 0.15,
        latency_jitter: float = 0.05,
        loss: float = 0.0,
        seed: int = 0,
    ):
        if latency_mean < 0 or latency_jitter < 0:
            raise PlatformError("latency parameters must be non-negative")
        if not (0.0 <= loss < 1.0):
            raise PlatformError(f"loss must be in [0, 1): {loss}")
        self.latency_mean = latency_mean
        self.latency_jitter = latency_jitter
        self.loss = loss
        self._rng = np.random.default_rng(seed)
        self.stats = TransportStats()

    def send(
        self,
        sim: Simulator,
        deliver: Callable[[], None],
        payload_items: int = 1,
    ) -> bool:
        """Attempt delivery; returns False when the message was lost.

        On success ``deliver`` fires after the sampled latency.  The
        boolean return models the sender-visible transport outcome so
        callers can implement retry policies.
        """
        self.stats.messages_sent += 1
        self.stats.payload_items += payload_items
        if self.loss > 0.0 and self._rng.uniform() < self.loss:
            self.stats.messages_lost += 1
            return False
        delay = max(0.001, float(self._rng.normal(self.latency_mean, self.latency_jitter)))
        sim.schedule(delay, deliver)
        return True
