"""The Hive: community management, task publication, dataset routing.

Sits at the centre of the architecture (paper Figure 1): Honeycombs push
tasks to it, it offers them to eligible devices, devices stream uploads
back, and it routes each task's data to the owning Honeycomb.  It also
runs the incentive engine over the user community.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro import obs

from repro.apisense.device import MobileDevice, SensorRecord
from repro.apisense.incentives import (
    IncentiveStrategy,
    NoIncentive,
    UserState,
    draw_initial_motivation,
)
from repro.apisense.metrics import acceptance_rate
from repro.apisense.tasks import SensingTask
from repro.errors import PlatformError
from repro.simulation import Simulator
from repro.store import DatasetStore, IngestPipeline
from repro.streams import StreamEngine

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.apisense.honeycomb import Honeycomb
    from repro.apisense.transport import Transport


@dataclass
class TaskStats:
    """Per-task platform statistics."""

    offers: int = 0
    acceptances: int = 0
    records: int = 0
    uploads: int = 0
    first_record_time: float | None = None

    @property
    def acceptance_rate(self) -> float:
        return acceptance_rate(self.acceptances, self.offers)


@dataclass
class HiveStats:
    """Global platform statistics."""

    devices_registered: int = 0
    messages_sent: int = 0
    tasks_published: int = 0
    per_task: dict[str, TaskStats] = field(default_factory=dict)


class Hive:
    """The central crowd-sensing service."""

    def __init__(
        self,
        sim: Simulator,
        incentive: IncentiveStrategy | None = None,
        delivery_latency: float = 0.2,
        transport: "Transport | None" = None,
        store: DatasetStore | None = None,
        pipeline: IngestPipeline | None = None,
        streams: StreamEngine | None = None,
        seed: int = 0,
    ):
        from repro.apisense.transport import Transport

        self._sim = sim
        self.incentive = incentive or NoIncentive()
        self.delivery_latency = delivery_latency
        #: Wireless hop used for offers (downlink) and uploads (uplink).
        self.transport = transport or Transport(
            latency_mean=delivery_latency,
            latency_jitter=delivery_latency * 0.2,
            loss=0.0,
            seed=seed,
        )
        #: Server-side storage: uploads batch through the ingest pipeline
        #: into the columnar store, and Honeycomb routing happens at
        #: pipeline flush time (see :meth:`_route_flush`).
        if pipeline is not None:
            if store is not None and pipeline.store is not store:
                raise PlatformError("pipeline is bound to a different store")
            self.store = pipeline.store
            self.pipeline = pipeline
        else:
            self.store = store or DatasetStore()
            self.pipeline = IngestPipeline(
                sim, self.store, flush_delay=delivery_latency
            )
        # Exclusive: a pipeline routes to exactly one Hive (sharing one
        # would double-deliver every flush to the owning Honeycombs).
        self.pipeline.set_router(self._route_flush)
        #: Live streaming analytics: every Hive carries a stream engine
        #: tapping its pipeline's flushes.  With no windowed view
        #: registered it costs one no-op listener call per flush; once
        #: views/queries are registered (``hive.streams.register_view``)
        #: the operator dashboard (``monitoring.snapshot``) turns live.
        self.streams = (streams or StreamEngine(sim=sim)).attach(self.pipeline)
        self._rng = np.random.default_rng(seed)
        self._devices: dict[str, MobileDevice] = {}
        self.community: dict[str, UserState] = {}
        self._tasks: dict[str, SensingTask] = {}
        self._task_owner: dict[str, "Honeycomb"] = {}
        self.stats = HiveStats()

    @property
    def sim(self) -> Simulator:
        """The simulator this Hive schedules on (federation wiring)."""
        return self._sim

    def obs_instances(self) -> frozenset:
        """The ``instance`` labels this hive's tiers emit metrics under.

        Federation scrapers use these to partition the shared registry:
        one per-hive scraper selects exactly this set, and the router's
        residual scraper takes everything no member claims.
        """
        return frozenset(
            {
                self.pipeline.obs.instance,
                self.store.obs.instance,
                self.streams.obs.instance,
            }
        )

    # ------------------------------------------------------------------
    # Community management
    # ------------------------------------------------------------------

    def register_device(self, device: MobileDevice) -> None:
        """Enrol a device (and its user) into the community."""
        if device.device_id in self._devices:
            raise PlatformError(f"device {device.device_id!r} already registered")
        device.bind(self._sim, self, transport=self.transport)
        self._devices[device.device_id] = device
        self._ensure_user(device.user)
        self.stats.devices_registered += 1

    def unregister_device(self, device_id: str) -> MobileDevice:
        """Remove a device from the community and return it.

        Used by the federation tier when re-homing a device onto another
        Hive (membership change, hive failure).  The user's community
        state stays behind — another of the user's devices may remain —
        and the device keeps its running tasks and buffered data; only
        the binding moves.
        """
        if device_id not in self._devices:
            raise PlatformError(f"unknown device {device_id!r}")
        return self._devices.pop(device_id)

    def adopt_user_state(self, state: UserState) -> None:
        """Install a migrated user's state (federation re-homing).

        A no-op when the user is already part of this community: the
        local history wins over the carried copy.
        """
        if state.user not in self.community:
            self.community[state.user] = state

    def _ensure_user(self, user: str) -> UserState:
        state = self.community.get(user)
        if state is None:
            state = self.community[user] = UserState(
                user=user, motivation=draw_initial_motivation(self._rng)
            )
        return state

    @property
    def devices(self) -> list[MobileDevice]:
        return list(self._devices.values())

    def device(self, device_id: str) -> MobileDevice:
        if device_id not in self._devices:
            raise PlatformError(f"unknown device {device_id!r}")
        return self._devices[device_id]

    # ------------------------------------------------------------------
    # Task publication
    # ------------------------------------------------------------------

    def publish_task(
        self,
        task: SensingTask,
        owner: "Honeycomb",
        recruitment=None,
    ) -> None:
        """Publish a task: offer it to the recruited devices.

        ``recruitment`` (a :class:`repro.apisense.recruitment.
        RecruitmentPolicy`, default: everyone) selects who receives an
        offer.  Offers are delivered over the wireless transport;
        acceptance is decided device-side against the incentive-driven
        probability.
        """
        self.adopt_task(task, owner)
        self.offer_task(task.name, recruitment=recruitment)

    def adopt_task(self, task: SensingTask, owner: "Honeycomb") -> None:
        """Admit a task for routing without offering it to anyone.

        The federation tier adopts every syndicated task at every member
        Hive so a device re-homed mid-campaign can keep uploading; only
        the Hives the task was actually *published* at send offers.
        """
        if task.name in self._tasks:
            raise PlatformError(f"task {task.name!r} already published")
        self._tasks[task.name] = task
        self._task_owner[task.name] = owner
        self.stats.tasks_published += 1
        self.stats.per_task.setdefault(task.name, TaskStats())

    def offer_task(self, task_name: str, recruitment=None) -> int:
        """Offer an admitted task to the recruited devices.

        Returns the number of offers sent.  Callable more than once (a
        rejoined federation member re-offers to devices homed back onto
        it); devices already running the task decline duplicate offers.
        """
        task = self._tasks.get(task_name)
        if task is None:
            raise PlatformError(f"cannot offer unknown task {task_name!r}")
        stats = self.stats.per_task[task_name]
        recruited = list(self._devices.values())
        if recruitment is not None:
            recruited = recruitment.select(recruited, task, self._sim.now, self._rng)
        offers = 0
        for device in recruited:
            if task.name in device.running_tasks:
                continue
            state = self.community[device.user]
            probability = self.incentive.acceptance_probability(state)
            stats.offers += 1
            offers += 1
            self.stats.messages_sent += 1
            # Lost offers are simply never delivered; the daily
            # participation pass re-offers tasks to lapsed users.
            self.transport.send(
                self._sim,
                lambda d=device, p=probability: self._deliver_offer(task, d, p),
            )
        return offers

    def _deliver_offer(
        self, task: SensingTask, device: MobileDevice, probability: float
    ) -> None:
        if task.name in device.running_tasks:
            # A duplicate offer can race a federation re-offer with a
            # device that migrated in already running the task.
            return
        accepted = device.offer_task(task, probability)
        if accepted:
            self.stats.per_task[task.name].acceptances += 1

    # ------------------------------------------------------------------
    # Upload path
    # ------------------------------------------------------------------

    def receive_upload(
        self, device_id: str, user: str, task_name: str, records: list[SensorRecord]
    ) -> int:
        """Accept an upload batch into the ingest pipeline.

        The batch lands in the pipeline's shard buffer for this (task,
        user) pair; the pipeline's next flush appends it to the columnar
        store and routes it onward to the owning Honeycomb (uploads that
        coalesce into the same flush window arrive as one batch).

        Records the ingest gateway sheds (``reject`` backpressure) are
        neither counted nor rewarded — only admitted records enter the
        platform statistics and the incentive engine.  Returns the
        number of records accepted.
        """
        if task_name not in self._tasks:
            raise PlatformError(f"upload for unknown task {task_name!r}")
        stats = self.stats.per_task[task_name]
        stats.uploads += 1
        self.stats.messages_sent += 1

        # Observability: a sampled upload becomes the root of a trace —
        # its records carry the trace id downstream (flush, store write,
        # window close all happen in *later* simulator events, so the
        # lineage travels with the data, not the call stack).
        tracer = obs.tracer()
        trace_id = tracer.new_trace() if records else None
        if trace_id is not None:
            records = [
                dataclasses.replace(r, trace_id=trace_id) for r in records
            ]

        dropped_before = self.pipeline.stats.dropped
        if trace_id is not None:
            with tracer.span(
                "ingest.admit",
                trace_id=trace_id,
                device=device_id,
                task=task_name,
                batch=len(records),
            ) as span:
                span.add_records({trace_id: [r.time for r in records]})
                accepted = self.pipeline.submit(records)
        else:
            accepted = self.pipeline.submit(records) if records else 0
        stats.records += accepted
        if (
            stats.first_record_time is None
            and records
            and accepted == len(records)
            and self.pipeline.stats.dropped == dropped_before
        ):
            # Only a fully-*retained* batch pins the time: when the gate
            # sheds records (reject) or drop-oldest evicts any — possibly
            # this batch's own head — the shed records' times must not be
            # recorded as collected.
            stats.first_record_time = min(r.time for r in records)

        # A migrated device's first upload can land before (or without)
        # its user state: enrol the user on first contact.
        state = self._ensure_user(user)
        self.incentive.on_contribution(state, accepted)
        return accepted

    #: Alias matching the paper-facing name for the upload path.
    route_upload = receive_upload

    def _route_flush(self, records: list[SensorRecord]) -> None:
        """Deliver one pipeline flush to the owning Honeycombs.

        Fires as a pipeline flush listener: the flushed shard batch is
        split per task and handed to each task's owner, so Honeycomb
        datasets and hooks are driven by store flushes, not by raw
        uploads.
        """
        by_task: dict[str, list[SensorRecord]] = {}
        for record in records:
            by_task.setdefault(record.task, []).append(record)
        for task_name, batch in by_task.items():
            owner = self._task_owner.get(task_name)
            if owner is not None:
                owner.receive_dataset(task_name, batch)

    # ------------------------------------------------------------------
    # Privacy tier (secure aggregation)
    # ------------------------------------------------------------------

    def secure_participants(self, task_name: str | None = None):
        """Protocol-selection profiles of the enrolled devices.

        Maps each contributing user to a :class:`~repro.privacy.
        secure_aggregation.ParticipantProfile` carrying the device's
        *current* battery level, so the secure-aggregation policy can
        route weak devices onto the cheap masking protocol.  With a
        ``task_name``, only devices running that task are profiled; a
        user with several devices is represented by its strongest one.
        """
        from repro.privacy.secure_aggregation import ParticipantProfile

        now = self._sim.now
        profiles: dict[str, ParticipantProfile] = {}
        for device in self._devices.values():
            if task_name is not None and task_name not in device.running_tasks:
                continue
            level = device.battery.level(now)
            existing = profiles.get(device.user)
            if existing is None or (existing.battery or 0.0) < level:
                profiles[device.user] = ParticipantProfile(
                    participant_id=device.user, battery=level
                )
        return profiles

    def secure_aggregate(self, task_name: str, **kwargs):
        """Aggregate one task's collected data aggregator-obliviously.

        Single-deployment convenience over :meth:`repro.federation.
        query.FederatedDataset.secure_aggregate` (this Hive's store as
        the only member); keyword arguments pass through (``bin_edges``,
        ``policy``, ``faults``, ``down``...).
        """
        from repro.federation.query import FederatedDataset

        kwargs.setdefault("profiles", self.secure_participants(task_name))
        return FederatedDataset({"local": self.store}).secure_aggregate(
            task_name, **kwargs
        )

    # ------------------------------------------------------------------
    # Daily bookkeeping
    # ------------------------------------------------------------------

    def end_of_day(self) -> None:
        """Run the incentive engine's daily pass over the community."""
        self.incentive.on_day_end(self.community)

    def mean_motivation(self) -> float:
        """Average community motivation (participation health metric)."""
        if not self.community:
            return 0.0
        return sum(s.motivation for s in self.community.values()) / len(self.community)
