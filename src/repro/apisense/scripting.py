"""Sensing Script API v2: sensor facades, triggers, adaptive sampling.

The real APISENSE offloads *scripts* — event-driven JavaScript programmed
against high-level sensor facades — onto phones.  Version 1 of the
reproduction froze that contract into a single fixed-period hook
(``SensingTask.script``); this module restores the paper's scripting
facade as a Python API:

- a :class:`TaskScript` receives a :class:`TaskContext` once, when the
  task starts on a device, and registers event handlers against it;
- :meth:`TaskContext.every` registers periodic timers whose period can be
  changed at runtime (:meth:`TimerHandle.reschedule`) — the adaptive
  sampling primitive (e.g. back off when ``ctx.battery.level`` is low);
- :meth:`TaskContext.on_location_changed`,
  :meth:`TaskContext.on_battery_below` and
  :meth:`TaskContext.on_region_enter` / :meth:`TaskContext.on_region_exit`
  register sensor-change and geofence triggers, evaluated on the task's
  sampling ticks;
- lazy sensor facades (``ctx.location``, ``ctx.battery``, ``ctx.network``,
  ``ctx.accel``) read sensors on demand — a task only drains battery for
  the sensors a handler actually reads;
- :meth:`TaskContext.save` emits a trace record explicitly (v1 returned
  values implicitly from the hook).

Execution is the same everywhere: a :class:`TaskDispatcher` drives the
script's timers and triggers over a :class:`ScriptRuntime` — the bridge
to a real :class:`~repro.apisense.device.MobileDevice` on phones, or to
a synthetic trajectory + sensor stream when the Honeycomb vets a script
(:mod:`repro.apisense.vetting`).  Legacy one-hook tasks run unchanged
through :class:`LegacyHookScript`, an adapter that is itself an ordinary
v2 script.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from repro.errors import PlatformError, TaskValidationError
from repro.geo.bbox import BoundingBox
from repro.geo.distance import haversine_m
from repro.geo.point import GeoPoint
from repro.simulation import CancelToken, Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.apisense.tasks import SensingTask

#: Handler signature: every handler — timer or trigger — receives the
#: task context; the firing event is available as ``ctx.event``.
Handler = Callable[["TaskContext"], None]

#: v2 entry point signature (a bare function alternative to TaskScript).
SetupFn = Callable[["TaskContext"], None]


class SensorReadRefused(PlatformError):
    """A sensor read was refused by the environment (dead battery).

    The dispatcher swallows this silently after the refusal counters are
    updated — an environmental refusal is not a script bug.  Scripts may
    catch it themselves to run fallback logic.  (Reading a sensor the
    task never declared is a script bug and raises a plain
    :class:`~repro.errors.PlatformError` instead, which vetting counts.)
    """


@dataclass
class TaskRuntimeStats:
    """Per-task counters a device keeps (observable via the Hive)."""

    samples_taken: int = 0
    samples_filtered: int = 0
    samples_script_dropped: int = 0
    script_errors: int = 0
    samples_battery_refused: int = 0
    uploads: int = 0
    uploads_failed: int = 0
    #: Uploads shed whole by the Hive's ingest gateway (backpressure);
    #: the batch is re-buffered and retried like a lost upload.
    uploads_rejected: int = 0


@dataclass
class HandlerStats:
    """Per-handler counters the dispatcher keeps (vetting reads them)."""

    name: str
    kind: str
    fires: int = 0
    errors: int = 0
    saves: int = 0


@dataclass(frozen=True)
class TriggerEvent:
    """Why a handler is firing: event kind, time, and trigger payload."""

    kind: str
    time: float
    value: object | None = None


# ----------------------------------------------------------------------
# Runtime interface
# ----------------------------------------------------------------------


class ScriptRuntime(ABC):
    """What a dispatcher needs from its host (device or vetting harness).

    Physical context (:meth:`position`, :meth:`battery_level`) is the
    simulator's ground truth and free to evaluate — it drives trigger
    predicates.  Actual sensor reads (:meth:`read_sensor`) go through
    :meth:`acquire` first and pay the energy cost.
    """

    sim: Simulator
    stats: TaskRuntimeStats

    @abstractmethod
    def position(self, time: float) -> GeoPoint:
        """Physical position at ``time``."""

    @abstractmethod
    def battery_level(self, time: float) -> float:
        """Battery level in [0, 1] at ``time``."""

    @abstractmethod
    def in_quiet_hours(self, time: float) -> bool:
        """Whether the user's quiet hours suppress sampling at ``time``."""

    @abstractmethod
    def acquire(self, sensors: tuple[str, ...], time: float) -> bool:
        """Pay the energy cost of reading ``sensors`` once; False = refused."""

    @abstractmethod
    def read_sensor(self, name: str, time: float) -> object:
        """One raw sensor reading (energy already paid via acquire)."""

    @abstractmethod
    def emit(self, values: Mapping[str, object], time: float) -> bool:
        """Record one trace sample; returns whether it was kept.

        The device runtime routes this through the user's privacy filter
        chain and the store-and-forward buffer; the vetting runtime just
        counts it.
        """


# ----------------------------------------------------------------------
# Sensor facades
# ----------------------------------------------------------------------


class SensorFacade:
    """Lazy read access to one sensor; reads drain battery on demand."""

    def __init__(self, ctx: "TaskContext", sensor: str):
        self._ctx = ctx
        self._sensor = sensor

    def read(self) -> object:
        """One reading now; raises :class:`SensorReadRefused` on refusal."""
        return self._ctx._read(self._sensor)


class LocationFacade(SensorFacade):
    """The ``gps`` sensor as a facade."""

    @property
    def current(self) -> GeoPoint:
        """The device's current GPS fix."""
        return self.read()  # type: ignore[return-value]


class BatteryFacade(SensorFacade):
    """The ``battery`` sensor as a facade (free to read)."""

    @property
    def level(self) -> float:
        """Battery level in [0, 1]."""
        return float(self.read())  # type: ignore[arg-type]


class NetworkFacade(SensorFacade):
    """The ``network`` sensor as a facade."""

    @property
    def rssi(self) -> float:
        """Signal strength in dBm."""
        return float(self.read())  # type: ignore[arg-type]


class AccelFacade(SensorFacade):
    """The ``accelerometer`` sensor as a facade."""

    @property
    def magnitude(self) -> float:
        """Activity magnitude (m/s-scale)."""
        return float(self.read())  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Timers and triggers
# ----------------------------------------------------------------------


class TimerHandle:
    """One periodic timer of a running script; re-schedulable at runtime."""

    def __init__(self, dispatcher: "TaskDispatcher", period: float, stats: HandlerStats, fn: Handler):
        self.period = period
        self._dispatcher = dispatcher
        self._stats = stats
        self._fn = fn
        self._pending: CancelToken | None = None
        self._cancelled = False
        self._in_fire = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def reschedule(self, period: float) -> None:
        """Change the timer's period — the adaptive-sampling primitive.

        Called from inside the timer's own handler, the new period takes
        effect for the *next* firing; called from anywhere else, the
        pending firing is moved to ``now + period``.  The platform's
        1 Hz sampling floor applies, as it does to task validation.
        """
        if period < 1.0:
            raise PlatformError(
                f"timer period {period} below the platform's 1 s sampling floor"
            )
        self.period = period
        if self._cancelled or self._in_fire:
            return
        if self._pending is not None:
            self._pending.cancel()
        self._schedule_next(self._dispatcher.sim.now + period)

    def cancel(self) -> None:
        """Stop the timer; a cancelled timer never fires again."""
        self._cancelled = True
        if self._pending is not None:
            self._pending.cancel()

    # -- internal ------------------------------------------------------

    def _schedule_next(self, at: float) -> None:
        if self._cancelled or at > self._dispatcher.task.end:
            self._pending = None
            return
        self._pending = self._dispatcher.sim.schedule_at(at, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._in_fire = True
        try:
            self._dispatcher._dispatch_timer(self._stats, self._fn)
        finally:
            self._in_fire = False
        self._schedule_next(self._dispatcher.sim.now + self.period)


class _Trigger:
    """One armed trigger condition, evaluated on sampling ticks."""

    kind = "trigger"

    def __init__(self, stats: HandlerStats, fn: Handler):
        self.stats = stats
        self.fn = fn

    def arm(self, runtime: ScriptRuntime, time: float) -> None:
        """Capture the initial state edge detection compares against."""

    def evaluate(self, runtime: ScriptRuntime, time: float) -> TriggerEvent | None:
        """Return the firing event when the condition newly holds."""
        raise NotImplementedError


class _LocationChangedTrigger(_Trigger):
    kind = "location_changed"

    def __init__(self, stats: HandlerStats, fn: Handler, min_distance_m: float):
        super().__init__(stats, fn)
        if min_distance_m < 0:
            raise PlatformError(f"negative min_distance: {min_distance_m}")
        self.min_distance_m = min_distance_m
        self._last: GeoPoint | None = None

    def arm(self, runtime: ScriptRuntime, time: float) -> None:
        self._last = runtime.position(time)

    def evaluate(self, runtime: ScriptRuntime, time: float) -> TriggerEvent | None:
        position = runtime.position(time)
        if self._last is None:
            self._last = position
            return None
        if haversine_m(self._last, position) < self.min_distance_m:
            return None
        self._last = position
        return TriggerEvent(self.kind, time, position)


class _BatteryBelowTrigger(_Trigger):
    kind = "battery_below"

    def __init__(self, stats: HandlerStats, fn: Handler, threshold: float):
        super().__init__(stats, fn)
        if not (0.0 < threshold <= 1.0):
            raise PlatformError(f"battery threshold must be in (0, 1]: {threshold}")
        self.threshold = threshold
        self._armed = True

    def evaluate(self, runtime: ScriptRuntime, time: float) -> TriggerEvent | None:
        level = runtime.battery_level(time)
        if level >= self.threshold:
            # Re-arm once the battery recovers (night charging), so the
            # alert fires once per discharge excursion, not per tick.
            self._armed = True
            return None
        if not self._armed:
            return None
        self._armed = False
        return TriggerEvent(self.kind, time, level)


class _RegionEdgeTrigger(_Trigger):
    """Geofence edge: fires when containment flips in one direction."""

    def __init__(self, stats: HandlerStats, fn: Handler, region: BoundingBox, on_enter: bool):
        super().__init__(stats, fn)
        self.region = region
        self.on_enter = on_enter
        self._inside: bool | None = None

    @property
    def kind(self) -> str:  # type: ignore[override]
        return "region_enter" if self.on_enter else "region_exit"

    def arm(self, runtime: ScriptRuntime, time: float) -> None:
        self._inside = self.region.contains(runtime.position(time))

    def evaluate(self, runtime: ScriptRuntime, time: float) -> TriggerEvent | None:
        position = runtime.position(time)
        inside = self.region.contains(position)
        was_inside, self._inside = self._inside, inside
        if was_inside is None or inside == was_inside:
            return None
        if inside == self.on_enter:
            return TriggerEvent(self.kind, time, position)
        return None


# ----------------------------------------------------------------------
# The scripting facade
# ----------------------------------------------------------------------


class TaskContext:
    """What a running script programs against: facades, triggers, save.

    One context exists per (device, task); every handler receives it on
    each firing, with :attr:`event` describing why it fired.
    """

    def __init__(self, dispatcher: "TaskDispatcher"):
        self._dispatcher = dispatcher
        self._event: TriggerEvent | None = None
        self._cache_time: float | None = None
        self._cache: dict[str, object] = {}
        self.location = LocationFacade(self, "gps")
        self.battery = BatteryFacade(self, "battery")
        self.network = NetworkFacade(self, "network")
        self.accel = AccelFacade(self, "accelerometer")

    # -- introspection -------------------------------------------------

    @property
    def task(self) -> "SensingTask":
        """The task description this script executes."""
        return self._dispatcher.task

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._dispatcher.sim.now

    @property
    def event(self) -> TriggerEvent | None:
        """The event being dispatched (None outside a handler)."""
        return self._event

    @property
    def stats(self) -> TaskRuntimeStats:
        """The task's runtime counters on this device."""
        return self._dispatcher.runtime.stats

    # -- registration --------------------------------------------------

    def every(self, period: float, fn: Handler) -> TimerHandle:
        """Register a periodic timer firing every ``period`` seconds.

        The first firing is one period out.  The returned handle can be
        re-scheduled at runtime (adaptive sampling) or cancelled.
        """
        if period < 1.0:
            raise PlatformError(
                f"timer period {period} below the platform's 1 s sampling floor"
            )
        stats = self._dispatcher._register("timer", fn)
        timer = TimerHandle(self._dispatcher, period, stats, fn)
        self._dispatcher.timers.append(timer)
        timer._schedule_next(self.now + period)
        return timer

    def on_location_changed(self, min_distance_m: float, fn: Handler) -> None:
        """Fire ``fn`` when the device moved ``min_distance_m`` metres
        since the last firing (or since the task started)."""
        self._add_trigger(
            _LocationChangedTrigger(
                self._dispatcher._register("location_changed", fn), fn, min_distance_m
            )
        )

    def on_battery_below(self, threshold: float, fn: Handler) -> None:
        """Fire ``fn`` once when the battery level drops below
        ``threshold``; re-arms when the battery recovers above it."""
        self._add_trigger(
            _BatteryBelowTrigger(
                self._dispatcher._register("battery_below", fn), fn, threshold
            )
        )

    def on_region_enter(self, region: BoundingBox, fn: Handler) -> None:
        """Fire ``fn`` when the device enters ``region`` (geofence edge)."""
        self._add_trigger(
            _RegionEdgeTrigger(
                self._dispatcher._register("region_enter", fn), fn, region, on_enter=True
            )
        )

    def on_region_exit(self, region: BoundingBox, fn: Handler) -> None:
        """Fire ``fn`` when the device leaves ``region`` (geofence edge)."""
        self._add_trigger(
            _RegionEdgeTrigger(
                self._dispatcher._register("region_exit", fn), fn, region, on_enter=False
            )
        )

    def _add_trigger(self, trigger: _Trigger) -> None:
        trigger.arm(self._dispatcher.runtime, self.now)
        self._dispatcher.triggers.append(trigger)
        self._dispatcher._ensure_trigger_tick()

    # -- sensor access -------------------------------------------------

    def sensor(self, name: str) -> SensorFacade:
        """Facade for any registry sensor (beyond the four built-ins)."""
        return SensorFacade(self, name)

    def _read(self, name: str) -> object:
        """Facade read path: declared-sensor check, energy, per-tick cache."""
        if name not in self.task.sensors:
            # A script bug, not an environmental refusal: the dispatcher
            # counts it as a script error and vetting rejects the task.
            raise PlatformError(
                f"task {self.task.name!r} did not declare sensor {name!r}; "
                "declare it so users can consent to it"
            )
        now = self.now
        if self._cache_time != now:
            self._cache_time = now
            self._cache = {}
        if name in self._cache:
            return self._cache[name]
        runtime = self._dispatcher.runtime
        if not runtime.acquire((name,), now):
            runtime.stats.samples_battery_refused += 1
            raise SensorReadRefused(f"battery refused reading {name!r}")
        value = runtime.read_sensor(name, now)
        self._cache[name] = value
        return value

    def read_all(self) -> dict[str, object]:
        """Read every declared sensor in one acquisition (v1 semantics):
        the energy cost of the full sensor tuple is paid at once."""
        runtime = self._dispatcher.runtime
        now = self.now
        if not runtime.acquire(self.task.sensors, now):
            runtime.stats.samples_battery_refused += 1
            raise SensorReadRefused("battery refused the sample")
        return {name: runtime.read_sensor(name, now) for name in self.task.sensors}

    # -- emission ------------------------------------------------------

    def save(self, values: Mapping[str, object]) -> bool:
        """Emit one trace record; returns whether it survived the task's
        region fence and the device's privacy filter chain.

        The fence applies to *every* save, however the handler was
        triggered — geofence and sensor-change handlers may fire outside
        the task region (that is their job), but the task still only
        collects inside it, exactly as v1 did.
        """
        region = self.task.region
        if region is not None and not region.contains(
            self._dispatcher.runtime.position(self.now)
        ):
            return False
        kept = self._dispatcher.runtime.emit(dict(values), self.now)
        if kept:
            current = self._dispatcher._current
            if current is not None:
                current.saves += 1
        return kept


# ----------------------------------------------------------------------
# Scripts
# ----------------------------------------------------------------------


class TaskScript(ABC):
    """A v2 sensing script: register handlers when the task starts."""

    @abstractmethod
    def setup(self, ctx: TaskContext) -> None:
        """Called once per device when the task starts; register
        timers/triggers on ``ctx`` here."""


class LegacyHookScript(TaskScript):
    """Adapter running a v1 ``script=`` hook on the v2 dispatcher.

    Reproduces v1 semantics exactly: one timer at the task's sampling
    period, all declared sensors read per tick (one batched energy
    acquisition), the hook filtering/rewriting the values, and the
    result saved through the privacy chain.  A ``None`` hook is the
    scriptless v1 task: read everything, save everything.
    """

    def __init__(self, hook=None):
        self._hook = hook

    def setup(self, ctx: TaskContext) -> None:
        ctx.every(ctx.task.sampling_period, self._tick)

    def _tick(self, ctx: TaskContext) -> None:
        values: Mapping[str, object] = ctx.read_all()
        if self._hook is not None:
            result = self._hook(values)
            if result is None:
                ctx.stats.samples_script_dropped += 1
                return
            values = result
        ctx.save(values)


def resolve_script(task: "SensingTask") -> TaskScript:
    """The script a task runs: its v2 script, or the legacy adapter.

    A TaskScript *class* is instantiated per resolution, so every device
    gets its own script instance and per-device state (timer handles,
    counters) never collides across the fleet — the recommended style
    for stateful scripts.  An *instance* is shared as-is (stateless
    scripts only); a bare ``setup(ctx)`` function is safe either way
    because each call builds fresh closures.
    """
    script_v2 = task.script_v2
    if script_v2 is None:
        return LegacyHookScript(task.script)
    if isinstance(script_v2, type) and issubclass(script_v2, TaskScript):
        return script_v2()
    if isinstance(script_v2, TaskScript):
        return script_v2
    return _FunctionScript(script_v2)


class _FunctionScript(TaskScript):
    """Wrap a bare ``setup(ctx)`` function as a TaskScript."""

    def __init__(self, setup_fn: SetupFn):
        self._setup_fn = setup_fn

    def setup(self, ctx: TaskContext) -> None:
        self._setup_fn(ctx)


# ----------------------------------------------------------------------
# The dispatcher
# ----------------------------------------------------------------------


class TaskDispatcher:
    """Event-driven executor of one task on one runtime.

    Owns the task's timer wheel and trigger list: timers fire as their
    own simulator events; triggers are evaluated on a tick at the task's
    sampling period (armed lazily — a timer-only script costs no
    evaluation events).  Handler exceptions are counted and contained;
    a bad script never kills collection.
    """

    def __init__(self, task: "SensingTask", runtime: ScriptRuntime):
        self.task = task
        self.runtime = runtime
        self.sim = runtime.sim
        self.ctx = TaskContext(self)
        #: The per-dispatcher script instance (set when setup runs).
        self.script: TaskScript | None = None
        self.timers: list[TimerHandle] = []
        self.triggers: list[_Trigger] = []
        self.handler_stats: list[HandlerStats] = []
        self.setup_error: str | None = None
        self.error_messages: list[str] = []
        self._seen_errors: set[str] = set()
        self._current: HandlerStats | None = None
        self._begin_token: CancelToken | None = None
        self._trigger_token: CancelToken | None = None
        self._cancelled = False

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Run the script's setup at the task's start (or now if later)."""
        if self.sim.now >= self.task.start:
            self._begin()
        else:
            self._begin_token = self.sim.schedule_at(self.task.start, self._begin)

    def _begin(self) -> None:
        if self._cancelled:
            return
        self.script = resolve_script(self.task)
        try:
            self.script.setup(self.ctx)
        except Exception as error:  # noqa: BLE001 - contained, counted
            self.runtime.stats.script_errors += 1
            self.setup_error = f"{type(error).__name__}: {error}"
            self._record_error(error)

    def cancel(self) -> None:
        """Stop everything: timers, trigger evaluation, pending setup."""
        self._cancelled = True
        if self._begin_token is not None:
            self._begin_token.cancel()
        if self._trigger_token is not None:
            self._trigger_token.cancel()
        for timer in self.timers:
            timer.cancel()

    # -- registration bookkeeping --------------------------------------

    def _register(self, kind: str, fn: Handler) -> HandlerStats:
        name = getattr(fn, "__name__", None) or type(fn).__name__
        stats = HandlerStats(name=f"{kind}#{len(self.handler_stats)}:{name}", kind=kind)
        self.handler_stats.append(stats)
        return stats

    def _ensure_trigger_tick(self) -> None:
        """Arm the trigger-evaluation tick on first trigger registration."""
        if self._trigger_token is not None or self._cancelled:
            return
        self._trigger_token = self.sim.schedule_periodic(
            self.task.sampling_period,
            self._evaluate_triggers,
            until=self.task.end,
        )

    # -- dispatch ------------------------------------------------------

    def _dispatch_timer(self, stats: HandlerStats, fn: Handler) -> None:
        now = self.sim.now
        if self.runtime.in_quiet_hours(now):
            self.runtime.stats.samples_filtered += 1
            return
        region = self.task.region
        if region is not None and not region.contains(self.runtime.position(now)):
            return
        self._dispatch(stats, TriggerEvent("timer", now), fn)

    def _evaluate_triggers(self) -> None:
        now = self.sim.now
        # Quiet hours freeze trigger evaluation entirely: no state
        # updates, so an edge crossed during the night fires at dawn.
        if self.runtime.in_quiet_hours(now):
            return
        for trigger in list(self.triggers):
            event = trigger.evaluate(self.runtime, now)
            if event is not None:
                self._dispatch(trigger.stats, event, trigger.fn)

    def _dispatch(self, stats: HandlerStats, event: TriggerEvent, fn: Handler) -> None:
        stats.fires += 1
        self._current = stats
        self.ctx._event = event
        try:
            fn(self.ctx)
        except SensorReadRefused:
            pass  # refusal counters already updated; not a script bug
        except Exception as error:  # noqa: BLE001 - contained, counted
            self.runtime.stats.script_errors += 1
            stats.errors += 1
            self._record_error(error)
        finally:
            self.ctx._event = None
            self._current = None

    def _record_error(self, error: Exception) -> None:
        message = f"{type(error).__name__}: {error}"
        if message not in self._seen_errors and len(self.error_messages) < 10:
            self._seen_errors.add(message)
            self.error_messages.append(message)

    @property
    def total_fires(self) -> int:
        return sum(stats.fires for stats in self.handler_stats)


# ----------------------------------------------------------------------
# The declarative front door
# ----------------------------------------------------------------------


class TaskBuilder:
    """Fluent construction of a :class:`SensingTask`::

        task = (SensingTask.builder("noise")
                .sensors("gps", "network")
                .every(30)
                .region(44.80, -0.63, 44.85, -0.55)
                .script(my_script)
                .build())

    ``build()`` runs the task's full static validation.
    """

    def __init__(self, name: str):
        self._name = name
        self._sensors: tuple[str, ...] = ()
        self._sampling_period: float | None = None
        self._upload_period: float | None = None
        self._start: float | None = None
        self._end: float | None = None
        self._region: BoundingBox | None = None
        self._script = None
        self._script_v2: TaskScript | SetupFn | None = None

    def sensors(self, *names: str) -> "TaskBuilder":
        """Declare the sensors the task may read."""
        self._sensors = tuple(names)
        return self

    def every(self, period: float) -> "TaskBuilder":
        """Base sampling period in seconds (timer + trigger cadence)."""
        self._sampling_period = float(period)
        return self

    def upload_every(self, period: float) -> "TaskBuilder":
        """Seconds between device-to-Hive buffer uploads."""
        self._upload_period = float(period)
        return self

    def window(self, start: float, end: float) -> "TaskBuilder":
        """Campaign window in simulation seconds."""
        self._start = float(start)
        self._end = float(end)
        return self

    def until(self, end: float) -> "TaskBuilder":
        """Campaign end in simulation seconds (start stays at 0)."""
        self._end = float(end)
        return self

    def region(self, *bounds) -> "TaskBuilder":
        """Geographic fence: a BoundingBox or (south, west, north, east)."""
        if len(bounds) == 1 and isinstance(bounds[0], BoundingBox):
            self._region = bounds[0]
        elif len(bounds) == 4:
            south, west, north, east = bounds
            self._region = BoundingBox(south=south, west=west, north=north, east=east)
        else:
            raise TaskValidationError(
                "region() takes a BoundingBox or four floats (south, west, north, east)"
            )
        return self

    def script(self, script_v2: TaskScript | SetupFn) -> "TaskBuilder":
        """Attach a v2 script (TaskScript instance or setup function)."""
        self._script_v2 = script_v2
        return self

    def hook(self, hook) -> "TaskBuilder":
        """Attach a legacy v1 per-sample hook."""
        self._script = hook
        return self

    def build(self) -> "SensingTask":
        """Construct and validate the task."""
        from repro.apisense.tasks import SensingTask

        kwargs: dict[str, object] = {
            "name": self._name,
            "sensors": self._sensors,
            "region": self._region,
            "script": self._script,
            "script_v2": self._script_v2,
        }
        if self._sampling_period is not None:
            kwargs["sampling_period"] = self._sampling_period
        if self._upload_period is not None:
            kwargs["upload_period"] = self._upload_period
        if self._start is not None:
            kwargs["start"] = self._start
        if self._end is not None:
            kwargs["end"] = self._end
        return SensingTask(**kwargs)  # type: ignore[arg-type]
