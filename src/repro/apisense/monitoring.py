"""Platform health monitoring: what the Hive operator watches.

Aggregates the platform's counters into one report: task progress,
community motivation, battery health, transport quality.  The real
APISENSE exposes this as the operator dashboard; the reproduction
renders it as structured data + text so campaigns can be watched (and
asserted on) mid-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apisense.hive import Hive


@dataclass(frozen=True)
class TaskHealth:
    """Progress snapshot of one published task."""

    task: str
    offers: int
    acceptances: int
    records: int
    uploads: int

    @property
    def acceptance_rate(self) -> float:
        return self.acceptances / self.offers if self.offers else 0.0


@dataclass(frozen=True)
class PlatformHealthReport:
    """One dashboard snapshot."""

    time: float
    devices: int
    running_devices: int
    mean_battery: float
    low_battery_devices: int
    mean_motivation: float
    at_risk_users: int
    transport_loss_rate: float
    messages_sent: int
    tasks: tuple[TaskHealth, ...] = field(default_factory=tuple)

    def to_text(self) -> str:
        lines = [
            f"platform health @ t={self.time:.0f}s",
            f"  devices: {self.devices} ({self.running_devices} running tasks, "
            f"{self.low_battery_devices} low battery, "
            f"mean battery {self.mean_battery:.2f})",
            f"  community: motivation {self.mean_motivation:.2f} "
            f"({self.at_risk_users} users at churn risk)",
            f"  transport: {self.messages_sent} messages, "
            f"{self.transport_loss_rate:.1%} loss",
        ]
        for task in self.tasks:
            lines.append(
                f"  task {task.task}: {task.records} records, "
                f"{task.uploads} uploads, acceptance {task.acceptance_rate:.0%}"
            )
        return "\n".join(lines)


def snapshot(hive: Hive, time: float, low_battery: float = 0.2, at_risk: float = 0.25) -> PlatformHealthReport:
    """Take a health snapshot of a Hive at simulation ``time``."""
    levels = [device.battery.level(time) for device in hive.devices]
    motivations = [state.motivation for state in hive.community.values()]
    tasks = tuple(
        TaskHealth(
            task=name,
            offers=stats.offers,
            acceptances=stats.acceptances,
            records=stats.records,
            uploads=stats.uploads,
        )
        for name, stats in hive.stats.per_task.items()
    )
    return PlatformHealthReport(
        time=time,
        devices=len(hive.devices),
        running_devices=sum(1 for device in hive.devices if device.running_tasks),
        mean_battery=float(np.mean(levels)) if levels else 0.0,
        low_battery_devices=sum(1 for level in levels if level < low_battery),
        mean_motivation=float(np.mean(motivations)) if motivations else 0.0,
        at_risk_users=sum(1 for motivation in motivations if motivation < at_risk),
        transport_loss_rate=hive.transport.stats.loss_rate,
        messages_sent=hive.stats.messages_sent,
        tasks=tasks,
    )
