"""Platform health monitoring: what the Hive operator watches.

Aggregates the platform's counters into one report: task progress,
community motivation, battery health, transport quality.  The real
APISENSE exposes this as the operator dashboard; the reproduction
renders it as structured data + text so campaigns can be watched (and
asserted on) mid-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs as _obs
from repro.apisense.hive import Hive
from repro.apisense.metrics import acceptance_rate


@dataclass(frozen=True)
class TaskHealth:
    """Progress snapshot of one published task."""

    task: str
    offers: int
    acceptances: int
    records: int
    uploads: int

    @property
    def acceptance_rate(self) -> float:
        return acceptance_rate(self.acceptances, self.offers)


@dataclass(frozen=True)
class PlatformHealthReport:
    """One dashboard snapshot."""

    time: float
    devices: int
    running_devices: int
    mean_battery: float
    low_battery_devices: int
    mean_motivation: float
    at_risk_users: int
    transport_loss_rate: float
    messages_sent: int
    #: Server-side storage health (the repro.store subsystem).
    store_records: int = 0
    store_segments: int = 0
    store_shards: int = 0
    pipeline_flushes: int = 0
    pipeline_buffered: int = 0
    pipeline_backlog: int = 0
    #: Backpressure counters: records admitted, shed (dropped/rejected)
    #: or parked (spilled) by the ingest gateway since the campaign
    #: started.  Mutually exclusive per record — see
    #: :class:`repro.store.pipeline.PipelineStats` — and reconciling:
    #: ``accepted = store_records + dropped + buffered + backlog``.
    pipeline_accepted: int = 0
    pipeline_dropped: int = 0
    pipeline_rejected: int = 0
    pipeline_spilled: int = 0
    mean_flush_batch: float = 0.0
    ingest_lag_p95: float = 0.0
    #: Live streaming tier (the Hive's stream engine): materialized
    #: (task, view) count, total record rate of the newest closed
    #: window, and alerts nobody has acknowledged yet.
    stream_views: int = 0
    stream_last_rate: float = 0.0
    stream_alerts_unacked: int = 0
    #: Alerts the bounded :class:`~repro.streams.queries.AlertLog`
    #: evicted before anyone read them — drop-oldest is a policy, not a
    #: silent loss, so the count surfaces here.
    stream_alerts_dropped: int = 0
    #: Serving tier (``repro.server``), populated when a server is
    #: passed to :func:`snapshot`: live sessions and subscriptions,
    #: pushes that reached a transport, pushes evicted by slow-consumer
    #: drop-oldest, and middleware denials across all surfaces.
    server_sessions: int = 0
    server_subscriptions: int = 0
    #: Push accounting, reconciling per message:
    #: ``enqueued = sent + dropped + queued`` (a push is exactly one of
    #: delivered, evicted by drop-oldest, or still waiting in a live
    #: session's queue) — :attr:`server_push_unaccounted` asserts it.
    server_pushes_enqueued: int = 0
    server_pushes_sent: int = 0
    server_pushes_dropped: int = 0
    server_pushes_queued: int = 0
    server_denials: int = 0
    #: True when this snapshot was taken with a serving tier attached
    #: (all-zero server counters are then meaningful, not absent).
    server_attached: bool = False
    #: False when the hive's stream engine has no registered views —
    #: the streaming tier is present but *not attached to any
    #: analytics*, so zero-valued stream rows would mislead.
    streams_attached: bool = True
    #: SLO plane, populated when an :class:`~repro.obs.slo.SLOTracker`
    #: is passed to :func:`snapshot`.
    slo_attached: bool = False
    slo_total: int = 0
    slo_burning: int = 0
    slo_lines: tuple[str, ...] = field(default_factory=tuple)
    tasks: tuple[TaskHealth, ...] = field(default_factory=tuple)

    @property
    def pipeline_shed(self) -> int:
        """Records lost to backpressure (dropped + rejected)."""
        return self.pipeline_dropped + self.pipeline_rejected

    @property
    def pipeline_unaccounted(self) -> int:
        """Admitted records the dashboard cannot place (0 when healthy).

        ``accepted - dropped - buffered - backlog - store_records``;
        non-zero means the gateway's counters double-counted a record
        or the store was fed around the pipeline (bulk loads).
        """
        return (
            self.pipeline_accepted
            - self.pipeline_dropped
            - self.pipeline_buffered
            - self.pipeline_backlog
            - self.store_records
        )

    @property
    def server_push_unaccounted(self) -> int:
        """Pushes the dashboard cannot place (0 when healthy).

        ``enqueued - sent - dropped - queued``; non-zero means the
        serving tier's push accounting desynced from the registry.
        """
        return (
            self.server_pushes_enqueued
            - self.server_pushes_sent
            - self.server_pushes_dropped
            - self.server_pushes_queued
        )

    def to_text(self) -> str:
        lines = [
            f"platform health @ t={self.time:.0f}s",
            f"  devices: {self.devices} ({self.running_devices} running tasks, "
            f"{self.low_battery_devices} low battery, "
            f"mean battery {self.mean_battery:.2f})",
            f"  community: motivation {self.mean_motivation:.2f} "
            f"({self.at_risk_users} users at churn risk)",
            f"  transport: {self.messages_sent} messages, "
            f"{self.transport_loss_rate:.1%} loss",
            f"  store: {self.store_records} records in {self.store_segments} "
            f"segments / {self.store_shards} shards",
            f"  ingest: {self.pipeline_flushes} flushes "
            f"(mean batch {self.mean_flush_batch:.1f}), "
            f"{self.pipeline_buffered} buffered, {self.pipeline_backlog} spill backlog, "
            f"lag p95 {self.ingest_lag_p95:.1f}s",
            f"  backpressure: {self.pipeline_accepted} admitted, "
            f"{self.pipeline_dropped} dropped, "
            f"{self.pipeline_rejected} rejected, {self.pipeline_spilled} spilled "
            f"({self.pipeline_shed} records shed, "
            f"{self.pipeline_unaccounted} unaccounted)",
            (
                f"  streams: {self.stream_views} live views, last window "
                f"{self.stream_last_rate:.2f} rec/s, "
                f"{self.stream_alerts_unacked} unacked alerts, "
                f"{self.stream_alerts_dropped} alerts evicted"
                if self.streams_attached
                # An engine with no registered views is *not attached*
                # to any analytics — zero rows would read as "attached
                # but quiet" (the federation counterpart of the
                # detached-server rendering below).
                else "  streams: tier not attached (no registered views)"
            ),
        ]
        if self.slo_attached:
            summary = (
                f"{self.slo_burning}/{self.slo_total} burning"
                if self.slo_burning
                else f"all {self.slo_total} within budget"
            )
            lines.append(f"  slo: {summary}")
            for line in self.slo_lines:
                lines.append(f"    {line}")
        if self.server_attached:
            lines.append(
                f"  server: {self.server_sessions} sessions, "
                f"{self.server_subscriptions} subscriptions, "
                f"{self.server_pushes_sent}/{self.server_pushes_enqueued} "
                f"pushes sent, "
                f"{self.server_pushes_dropped} dropped (slow consumers), "
                f"{self.server_denials} middleware denials"
            )
        else:
            # A missing serving tier is *absent*, not idle — all-zero
            # counters here would read as "healthy but quiet" when in
            # fact nobody is watching the tier at all.
            lines.append("  server: tier not attached (no serving-tier data)")
        for task in self.tasks:
            lines.append(
                f"  task {task.task}: {task.records} records, "
                f"{task.uploads} uploads, acceptance {task.acceptance_rate:.0%}"
            )
        return "\n".join(lines)


def snapshot(
    hive: Hive,
    time: float,
    low_battery: float = 0.2,
    at_risk: float = 0.25,
    server=None,
    slos=None,
) -> PlatformHealthReport:
    """Take a health snapshot of a Hive at simulation ``time``.

    ``server`` (a :class:`repro.server.server.ReproServer`, optional)
    adds the serving tier's session/push/denial counters to the report.
    ``slos`` (an :class:`~repro.obs.slo.SLOTracker`, optional) adds the
    SLO status line — which objectives are burning and how hard.

    Counter-valued fields are read from the shared
    :class:`~repro.obs.registry.MetricsRegistry` — the same instruments
    the Prometheus exposition and the ``obs`` CLI serve — so the
    dashboard can never drift from the observability plane.  When the
    registry is disabled (``obs.configure(metrics=False)``) the
    instruments are no-ops, so the dashboard falls back to the
    components' own counter objects; level-valued fields (buffer
    depths, live views, sessions) always read the live objects.
    """
    levels = [device.battery.level(time) for device in hive.devices]
    motivations = [state.motivation for state in hive.community.values()]
    tasks = tuple(
        TaskHealth(
            task=name,
            offers=stats.offers,
            acceptances=stats.acceptances,
            records=stats.records,
            uploads=stats.uploads,
        )
        for name, stats in hive.stats.per_task.items()
    )
    store_stats = hive.store.stats()
    pipeline = hive.pipeline
    lag_p95 = max(
        (hive.store.aggregates.task(name).lag_p95 for name in hive.store.aggregates.tasks),
        default=0.0,
    )
    live = _obs.metrics_registry().enabled
    if live:
        pobs = pipeline.obs
        flushes = int(pobs.flushes.value)
        flushed = int(pobs.flushed.value)
        accepted = int(pobs.accepted.value)
        dropped = int(pobs.dropped.value)
        rejected = int(pobs.rejected.value)
        spilled = int(pobs.spilled.value)
        store_records = int(hive.store.obs.records_appended.value)
    else:
        flushes = pipeline.stats.flushes
        flushed = pipeline.stats.flushed_records
        accepted = pipeline.stats.accepted
        dropped = pipeline.stats.dropped
        rejected = pipeline.stats.rejected
        spilled = pipeline.stats.spilled
        store_records = store_stats.records
    if server is not None:
        sobs = server.obs
        if live:
            pushes_enqueued = int(sobs.pushes_enqueued.value)
            pushes_sent = int(sobs.pushes_sent.value)
            pushes_dropped = int(sobs.pushes_dropped.value)
            denials = int(
                sobs.registry.total(
                    "repro_server_denials_total", instance=sobs.instance
                )
            )
        else:
            pushes_enqueued = (
                server.pushes_sent
                + server.pushes_dropped
                + server.pushes_queued
            )
            pushes_sent = server.pushes_sent
            pushes_dropped = server.pushes_dropped
            denials = server.stats.denials
        pushes_queued = server.pushes_queued
    else:
        pushes_enqueued = pushes_sent = pushes_dropped = 0
        pushes_queued = denials = 0
    slo_lines: tuple[str, ...] = ()
    slo_total = slo_burning = 0
    if slos is not None:
        statuses = slos.statuses()
        slo_total = len(statuses)
        slo_burning = sum(1 for status in statuses if status.burning)
        slo_lines = tuple(
            f"{status.name}: {status.state} "
            f"(objective {status.objective:.3%}, "
            f"worst burn {status.worst_burn():.1f}x)"
            for status in statuses
        )
    return PlatformHealthReport(
        time=time,
        devices=len(hive.devices),
        running_devices=sum(1 for device in hive.devices if device.running_tasks),
        mean_battery=float(np.mean(levels)) if levels else 0.0,
        low_battery_devices=sum(1 for level in levels if level < low_battery),
        mean_motivation=float(np.mean(motivations)) if motivations else 0.0,
        at_risk_users=sum(1 for motivation in motivations if motivation < at_risk),
        transport_loss_rate=hive.transport.stats.loss_rate,
        messages_sent=hive.stats.messages_sent,
        store_records=store_records,
        store_segments=store_stats.segments,
        store_shards=store_stats.n_shards,
        pipeline_flushes=flushes,
        pipeline_buffered=pipeline.buffered,
        pipeline_backlog=pipeline.backlog,
        pipeline_accepted=accepted,
        pipeline_dropped=dropped,
        pipeline_rejected=rejected,
        pipeline_spilled=spilled,
        mean_flush_batch=flushed / flushes if flushes else 0.0,
        ingest_lag_p95=lag_p95,
        stream_views=hive.streams.active_view_count,
        stream_last_rate=hive.streams.last_window_rate,
        stream_alerts_unacked=hive.streams.alerts.unacknowledged,
        stream_alerts_dropped=hive.streams.alerts.dropped,
        server_sessions=server.sessions_active if server is not None else 0,
        server_subscriptions=(
            server.subscriptions_active if server is not None else 0
        ),
        server_pushes_enqueued=pushes_enqueued,
        server_pushes_sent=pushes_sent,
        server_pushes_dropped=pushes_dropped,
        server_pushes_queued=pushes_queued,
        server_denials=denials,
        server_attached=server is not None,
        streams_attached=bool(hive.streams.views),
        slo_attached=slos is not None,
        slo_total=slo_total,
        slo_burning=slo_burning,
        slo_lines=slo_lines,
        tasks=tasks,
    )
