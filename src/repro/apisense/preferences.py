"""User privacy preferences — "the user keeps the control of her phone".

Per the paper, the first privacy layer lives on the device: the user
selects which sensors may be shared and when/where they may be used.
Preferences are compiled into a :class:`~repro.apisense.filters.
PrivacyFilterChain` by the device runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlatformError
from repro.geo.point import GeoPoint
from repro.units import DAY


@dataclass(frozen=True)
class UserPreferences:
    """What one user allows the platform to collect.

    Parameters
    ----------
    allowed_sensors:
        Sensors the user shares; tasks requesting anything else are
        declined by the device, not silently filtered.  ``None`` (the
        default) shares every sensor the device has — including custom
        registry sensors — so restricting is an explicit opt-in.
    quiet_hours:
        Time-of-day windows (seconds from midnight, wrapping allowed)
        during which no sampling happens at all.
    forbidden_zones:
        (center, radius_m) discs — typically home surroundings — inside
        which samples are dropped on-device.
    blur_cell_m:
        If > 0, GPS readings are snapped to a grid of this pitch before
        leaving the device (location blurring).
    """

    allowed_sensors: frozenset[str] | None = None
    quiet_hours: tuple[tuple[float, float], ...] = ()
    forbidden_zones: tuple[tuple[GeoPoint, float], ...] = ()
    blur_cell_m: float = 0.0

    def __post_init__(self) -> None:
        for start, end in self.quiet_hours:
            if not (0 <= start < DAY and 0 <= end < DAY):
                raise PlatformError(
                    f"quiet hours must be within a day: ({start}, {end})"
                )
        for _, radius in self.forbidden_zones:
            if radius <= 0:
                raise PlatformError(f"forbidden zone radius must be positive: {radius}")
        if self.blur_cell_m < 0:
            raise PlatformError(f"blur cell must be >= 0: {self.blur_cell_m}")

    def allows_sensors(self, sensors: tuple[str, ...]) -> bool:
        """Whether every requested sensor is shareable."""
        if self.allowed_sensors is None:
            return True
        return set(sensors) <= self.allowed_sensors

    def in_quiet_hours(self, time: float) -> bool:
        """Whether ``time`` falls inside any quiet window."""
        time_of_day = time % DAY
        for start, end in self.quiet_hours:
            if start <= end:
                if start <= time_of_day < end:
                    return True
            elif time_of_day >= start or time_of_day < end:
                return True
        return False
