"""Sensor models backing the simulated devices.

Each sensor reads the device's physical context (position, motion) from
its mobility trajectory, plus synthetic environment state (cell towers)
where needed.  Values include realistic measurement noise drawn from the
device's RNG so runs stay deterministic per seed.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import PlatformError
from repro.geo.distance import haversine_m
from repro.geo.point import GeoPoint
from repro.mobility.city import City

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.apisense.device import MobileDevice


class SensorRegistry:
    """The sensors the platform can serve — the vocabulary task
    validation checks requested sensor names against.

    Starts from the built-in phone sensors and grows as
    :class:`SensorSuite` instances register custom sensors, so a task
    can request any sensor some suite actually provides (devices whose
    suite lacks it simply decline the offer).  The default instance is
    process-wide and append-only: build the suite (or register the
    name) before validating tasks that request a custom sensor.
    """

    def __init__(self, builtin: tuple[str, ...] = ()):
        self._names: set[str] = set(builtin)

    def register(self, name: str) -> None:
        """Make ``name`` requestable by tasks; idempotent."""
        if not name or not isinstance(name, str):
            raise PlatformError(f"sensor name must be a non-empty string: {name!r}")
        self._names.add(name)

    def __contains__(self, name: str) -> bool:
        return name in self._names

    def registered(self) -> frozenset[str]:
        """Every currently-registered sensor name."""
        return frozenset(self._names)


#: The process-wide registry task validation consults.
sensor_registry = SensorRegistry(
    builtin=("gps", "battery", "network", "accelerometer")
)


class Sensor(ABC):
    """One readable sensor; stateless, so a suite can be shared."""

    #: Sensor name as referenced by task descriptions.
    name: str = "abstract"

    @abstractmethod
    def read(self, device: "MobileDevice", time: float, rng: np.random.Generator) -> object:
        """Produce one reading for ``device`` at simulation ``time``."""


class GpsSensor(Sensor):
    """Reports the device position as a :class:`GeoPoint`.

    The mobility trajectory already includes GPS fix noise (the generator
    adds it), so this sensor interpolates the trajectory directly.
    """

    name = "gps"

    def read(self, device: "MobileDevice", time: float, rng: np.random.Generator) -> GeoPoint:
        return device.position(time)


class BatterySensor(Sensor):
    """Reports the device's own battery level (free to read)."""

    name = "battery"

    def read(self, device: "MobileDevice", time: float, rng: np.random.Generator) -> float:
        return device.battery.level(time)


class NetworkQualitySensor(Sensor):
    """Reports RSSI in dBm against a synthetic cell-tower layout.

    Signal follows a log-distance path-loss model to the nearest tower
    plus Gaussian shadowing.  This is the "network quality application"
    workload from the paper's introduction.
    """

    name = "network"

    def __init__(self, towers: tuple[GeoPoint, ...], shadowing_db: float = 4.0):
        if not towers:
            raise PlatformError("network sensor needs at least one tower")
        self.towers = towers
        self.shadowing_db = shadowing_db

    def read(self, device: "MobileDevice", time: float, rng: np.random.Generator) -> float:
        position = device.position(time)
        distance = min(haversine_m(position, tower) for tower in self.towers)
        distance = max(distance, 10.0)
        # -40 dBm at 10 m, path-loss exponent 3.0.
        rssi = -40.0 - 30.0 * math.log10(distance / 10.0)
        rssi += float(rng.normal(0.0, self.shadowing_db))
        return max(-120.0, min(-40.0, rssi))


class AccelerometerSensor(Sensor):
    """Reports an activity magnitude derived from instantaneous speed.

    Real deployments use accelerometer energy to classify still/walk/
    vehicle; the simulated equivalent exposes the same signal (speed) with
    sensor noise, which is all the platform experiments need.
    """

    name = "accelerometer"

    def __init__(self, window: float = 30.0, noise: float = 0.05):
        self.window = window
        self.noise = noise

    def read(self, device: "MobileDevice", time: float, rng: np.random.Generator) -> float:
        before = device.position(time - self.window / 2)
        after = device.position(time + self.window / 2)
        speed = haversine_m(before, after) / self.window
        return max(0.0, speed + float(rng.normal(0.0, self.noise)))


@dataclass(frozen=True)
class SensorSuite:
    """The set of sensors available on a device.

    Building a suite registers its sensor names in the process-wide
    :data:`sensor_registry`, so tasks may request any sensor a suite
    provides — including custom sensors beyond the built-in four.
    """

    sensors: dict[str, Sensor]

    def __post_init__(self) -> None:
        for name in self.sensors:
            sensor_registry.register(name)

    def __contains__(self, name: str) -> bool:
        return name in self.sensors

    def names(self) -> frozenset[str]:
        return frozenset(self.sensors)

    def get(self, name: str) -> Sensor:
        if name not in self.sensors:
            raise PlatformError(f"device has no sensor {name!r}")
        return self.sensors[name]


def default_sensor_suite(city: City, rng: np.random.Generator, n_towers: int = 12) -> SensorSuite:
    """The standard phone sensor suite against a city's tower layout."""
    projection_box = city.bounding_box
    lats = rng.uniform(projection_box.south, projection_box.north, size=n_towers)
    lons = rng.uniform(projection_box.west, projection_box.east, size=n_towers)
    towers = tuple(GeoPoint(float(lat), float(lon)) for lat, lon in zip(lats, lons))
    sensors: dict[str, Sensor] = {}
    for sensor in (
        GpsSensor(),
        BatterySensor(),
        NetworkQualitySensor(towers),
        AccelerometerSensor(),
    ):
        sensors[sensor.name] = sensor
    return SensorSuite(sensors=sensors)
