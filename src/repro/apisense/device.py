"""The simulated mobile device: task runtime, sensors, privacy layer.

A device is driven entirely by simulator events: when it accepts a task
it hands execution to a :class:`~repro.apisense.scripting.TaskDispatcher`
— the event-driven runtime behind the v2 scripting API — and schedules
its own upload ticks.  Every sample a script saves passes through the
user's privacy filter chain before it is buffered, and the buffer leaves
the device only on upload ticks — mirroring the real APISENSE client's
store-and-forward design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.apisense.battery import Battery
from repro.apisense.filters import PrivacyFilterChain
from repro.apisense.preferences import UserPreferences
from repro.apisense.scripting import ScriptRuntime, TaskDispatcher, TaskRuntimeStats
from repro.apisense.sensors import SensorSuite
from repro.apisense.tasks import SensingTask
from repro.errors import PlatformError
from repro.geo.point import GeoPoint
from repro.geo.trajectory import Trajectory
from repro.simulation import CancelToken, Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.apisense.hive import Hive

__all__ = ["MobileDevice", "SensorRecord", "TaskRuntimeStats", "DeviceScriptRuntime"]


@dataclass(frozen=True)
class SensorRecord:
    """One collected sample as it travels device -> Hive -> Honeycomb.

    Carries both the device id (platform routing) and the user id (data
    attribution), so endpoints never need to resolve devices through a
    specific Hive — which is what lets federated deployments route data
    across communities.
    """

    device_id: str
    user: str
    task: str
    time: float
    values: Mapping[str, object]
    #: Observability lineage: set by the ingest gateway when the upload
    #: is traced (see :mod:`repro.obs.tracing`).  ``None`` — the vast
    #: majority of records — means untraced; comparisons and hashing
    #: still work upload-batch-wide because the id is per-upload.
    trace_id: int | None = None


class DeviceScriptRuntime(ScriptRuntime):
    """Bridge from the scripting dispatcher to a real device.

    Physical context (position, battery level, quiet hours) is read from
    the device's simulated state for free — it drives trigger predicates.
    Actual sensor reads pay the battery cost via :meth:`acquire`, and
    emitted samples run the privacy filter chain before landing in the
    task's store-and-forward buffer.
    """

    def __init__(self, device: "MobileDevice", task: SensingTask):
        assert device._sim is not None
        self.sim = device._sim
        self.stats = device.stats[task.name]
        self._device = device
        self._task = task

    def position(self, time: float) -> GeoPoint:
        return self._device.position(time)

    def battery_level(self, time: float) -> float:
        return self._device.battery.level(time)

    def in_quiet_hours(self, time: float) -> bool:
        return self._device.preferences.in_quiet_hours(time)

    def acquire(self, sensors: tuple[str, ...], time: float) -> bool:
        return self._device.battery.drain_sample(sensors, time)

    def read_sensor(self, name: str, time: float) -> object:
        device = self._device
        return device.sensors.get(name).read(device, time, device._rng)

    def emit(self, values: Mapping[str, object], time: float) -> bool:
        device = self._device
        filtered = device._filters.apply(dict(values), time)
        if filtered is None:
            self.stats.samples_filtered += 1
            return False
        self.stats.samples_taken += 1
        device._buffers[self._task.name].append(
            SensorRecord(
                device_id=device.device_id,
                user=device.user,
                task=self._task.name,
                time=time,
                values=dict(filtered),
            )
        )
        return True


class MobileDevice:
    """One participant's phone."""

    def __init__(
        self,
        device_id: str,
        user: str,
        trajectory: Trajectory,
        sensors: SensorSuite,
        battery: Battery,
        preferences: UserPreferences | None = None,
        seed: int = 0,
    ):
        self.device_id = device_id
        self.user = user
        self.trajectory = trajectory
        self.sensors = sensors
        self.battery = battery
        self.preferences = preferences or UserPreferences()
        self._filters = PrivacyFilterChain.from_preferences(self.preferences)
        self._rng = np.random.default_rng(seed)
        self._sim: Simulator | None = None
        self._hive: "Hive | None" = None
        self._transport = None
        self._buffers: dict[str, list[SensorRecord]] = {}
        self._dispatchers: dict[str, TaskDispatcher] = {}
        self._upload_tokens: dict[str, CancelToken] = {}
        self.stats: dict[str, TaskRuntimeStats] = {}

    # ------------------------------------------------------------------
    # Binding / physical context
    # ------------------------------------------------------------------

    def bind(self, sim: Simulator, hive: "Hive", transport=None) -> None:
        """Attach the device to the simulation and its Hive.

        ``transport`` (a :class:`repro.apisense.transport.Transport`)
        models the wireless uplink; ``None`` means ideal synchronous
        delivery (unit tests).
        """
        self._sim = sim
        self._hive = hive
        self._transport = transport

    def position(self, time: float) -> GeoPoint:
        """Physical position at ``time`` (trajectory interpolation)."""
        return self.trajectory.point_at_time(time)

    @property
    def running_tasks(self) -> list[str]:
        return list(self._dispatchers)

    def dispatcher(self, task_name: str) -> TaskDispatcher:
        """The running dispatcher of a task (introspection / tests)."""
        if task_name not in self._dispatchers:
            raise PlatformError(f"task {task_name!r} not running on {self.device_id}")
        return self._dispatchers[task_name]

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------

    def offer_task(self, task: SensingTask, acceptance_probability: float) -> bool:
        """Present a task offer; the user accepts or declines.

        Declines happen for three reasons, checked in order: preferences
        forbid a requested sensor, the device lacks one, or the user just
        is not motivated (random draw against ``acceptance_probability``).
        """
        if self._sim is None or self._hive is None:
            raise PlatformError(f"device {self.device_id} is not bound to a simulation")
        if task.name in self._dispatchers:
            raise PlatformError(f"task {task.name!r} already running on {self.device_id}")
        if not self.preferences.allows_sensors(task.sensors):
            return False
        if not all(sensor in self.sensors for sensor in task.sensors):
            return False
        if self._rng.uniform() > acceptance_probability:
            return False
        self._start_task(task)
        return True

    def _start_task(self, task: SensingTask) -> None:
        assert self._sim is not None
        self._buffers[task.name] = []
        self.stats[task.name] = TaskRuntimeStats()
        dispatcher = TaskDispatcher(task, DeviceScriptRuntime(self, task))
        dispatcher.start()
        self._dispatchers[task.name] = dispatcher
        start = max(task.start, self._sim.now)
        self._upload_tokens[task.name] = self._sim.schedule_periodic(
            task.upload_period,
            lambda: self._upload(task),
            until=task.end + task.upload_period,
            first_at=start + task.upload_period,
        )

    def stop_task(self, task_name: str) -> None:
        """Cancel a running task and flush its buffer."""
        dispatcher = self._dispatchers.pop(task_name, None)
        if dispatcher is None:
            return
        dispatcher.cancel()
        token = self._upload_tokens.pop(task_name, None)
        if token is not None:
            token.cancel()
        self._flush(task_name)

    # ------------------------------------------------------------------
    # Upload ticks
    # ------------------------------------------------------------------

    def _upload(self, task: SensingTask) -> None:
        self._flush(task.name)

    def _flush(self, task_name: str) -> None:
        """Attempt to upload the buffer; on transport loss the buffer is
        retained and retried at the next upload tick (store-and-forward)."""
        assert self._hive is not None
        buffer = self._buffers.get(task_name)
        if not buffer:
            return
        batch = list(buffer)
        stats = self.stats[task_name]
        if self._transport is None:
            buffer.clear()
            stats.uploads += 1
            self._deliver_upload(task_name, batch)
            return
        delivered = self._transport.send(
            self._sim,
            lambda: self._deliver_upload(task_name, batch),
            payload_items=len(batch),
        )
        if delivered:
            buffer.clear()
            stats.uploads += 1
        else:
            stats.uploads_failed += 1

    def _deliver_upload(self, task_name: str, batch: list[SensorRecord]) -> None:
        """Hand a delivered batch to the Hive's ingest gateway.

        A gateway that sheds the whole batch (``reject`` backpressure)
        is the server-side analogue of a lost upload: the records go
        back to the front of the buffer and ride the next upload tick,
        so backpressure costs freshness, not data.
        """
        assert self._hive is not None
        accepted = self._hive.receive_upload(
            self.device_id, self.user, task_name, batch
        )
        if accepted == 0 and batch:
            stats = self.stats.get(task_name)
            if stats is not None:
                stats.uploads_rejected += 1
            buffer = self._buffers.get(task_name)
            if buffer is not None:
                buffer[0:0] = batch

    # ------------------------------------------------------------------
    # Direct reads (virtual sensors)
    # ------------------------------------------------------------------

    def read_sensor(self, sensor_name: str, time: float) -> object:
        """One on-demand read, paying the energy cost.

        Used by virtual sensors; raises if the battery is dead so the
        scheduling strategy learns the device is unavailable.
        """
        if not self.battery.drain_sample((sensor_name,), time):
            raise PlatformError(f"device {self.device_id}: battery empty")
        return self.sensors.get(sensor_name).read(self, time, self._rng)

    def is_available(self, time: float) -> bool:
        """Whether the device could serve a read right now."""
        return not self.battery.is_empty(time) and not self.preferences.in_quiet_hours(time)
