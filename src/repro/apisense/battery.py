"""Device battery model.

Energy is tracked as a normalized level in [0, 1].  Draining happens two
ways: a baseline idle drain per hour, and a per-sample cost per sensor.
Charging follows a fixed night window (22:00-07:00), the dominant real
pattern.  The model is deliberately simple — what the experiments need is
a resource that depletes monotonically with sampling and differs across
devices, so energy-aware scheduling has something to optimise (E6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlatformError
from repro.units import DAY, HOUR


@dataclass(frozen=True)
class BatteryModel:
    """Static parameters shared by a device class."""

    #: Idle drain per hour of simulated time (fraction of capacity).
    baseline_drain_per_hour: float = 0.01
    #: Per-sample cost per sensor (fraction of capacity).
    sensor_cost: dict[str, float] = field(
        default_factory=lambda: {
            "gps": 2.0e-5,
            "network": 6.0e-6,
            "accelerometer": 2.0e-6,
            "battery": 0.0,
        }
    )
    #: Charge gained per hour while charging.
    charge_per_hour: float = 0.5
    #: Night charging window, seconds from midnight (start, end).
    charge_window: tuple[float, float] = (22 * HOUR, 7 * HOUR)

    def cost_of(self, sensors: tuple[str, ...]) -> float:
        """Energy cost of sampling this sensor set once."""
        return sum(self.sensor_cost.get(name, 1.0e-5) for name in sensors)

    def is_charging_time(self, time: float) -> bool:
        """Whether the (possibly midnight-wrapping) charge window covers
        ``time``."""
        time_of_day = time % DAY
        start, end = self.charge_window
        if start <= end:
            return start <= time_of_day < end
        return time_of_day >= start or time_of_day < end


class Battery:
    """Mutable battery state of one device, lazily integrated over time."""

    def __init__(self, model: BatteryModel, level: float = 1.0, time: float = 0.0):
        if not (0.0 <= level <= 1.0):
            raise PlatformError(f"battery level must be in [0, 1]: {level}")
        self.model = model
        self._level = level
        self._last_update = time

    def _advance(self, time: float) -> None:
        """Apply baseline drain / charging between the last update and now.

        The charge window is integrated piecewise per day boundary; the
        approximation of applying the dominant regime over each sub-span
        is fine at the sampling periods the platform uses (<= minutes).
        """
        if time < self._last_update:
            raise PlatformError(
                f"battery time went backwards: {self._last_update} -> {time}"
            )
        cursor = self._last_update
        while cursor < time:
            span = min(time - cursor, 15 * 60.0)  # integrate in <= 15 min slabs
            if self.model.is_charging_time(cursor):
                self._level += self.model.charge_per_hour * span / HOUR
            else:
                self._level -= self.model.baseline_drain_per_hour * span / HOUR
            cursor += span
        self._level = min(1.0, max(0.0, self._level))
        self._last_update = time

    def level(self, time: float) -> float:
        """Battery level in [0, 1] at simulation ``time``."""
        self._advance(time)
        return self._level

    def is_empty(self, time: float) -> bool:
        return self.level(time) <= 0.0

    def drain_sample(self, sensors: tuple[str, ...], time: float) -> bool:
        """Pay the cost of one sample; returns False if the battery died.

        A dead battery refuses the sample (the device skips collection
        until the next charge window).
        """
        self._advance(time)
        cost = self.model.cost_of(sensors)
        if self._level <= cost:
            self._level = 0.0
            return False
        self._level -= cost
        return True
