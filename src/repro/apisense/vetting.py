"""Task script vetting: dry-run a task before offering it to the crowd.

The real APISENSE vets uploaded JavaScript before offloading it onto
phones.  The reproduction's equivalent exercises the task's script hook
against synthetic sensor values *on the Honeycomb*, so a crashing or
over-aggressive script is caught before it wastes a single device's
battery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apisense.tasks import SensingTask
from repro.geo.point import GeoPoint


@dataclass
class DryRunReport:
    """Outcome of vetting one task."""

    task: str
    samples: int
    errors: int = 0
    dropped: int = 0
    error_messages: list[str] = field(default_factory=list)

    @property
    def error_rate(self) -> float:
        return self.errors / self.samples if self.samples else 0.0

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.samples if self.samples else 0.0

    def acceptable(self, max_error_rate: float = 0.01, max_drop_rate: float = 0.95) -> bool:
        """Platform policy: scripts may filter but not crash or drop all.

        A script erroring on more than ``max_error_rate`` of samples is
        buggy; one dropping more than ``max_drop_rate`` would waste the
        crowd's battery for almost no data.
        """
        return self.error_rate <= max_error_rate and self.drop_rate <= max_drop_rate


def _synthetic_values(
    sensors: tuple[str, ...], rng: np.random.Generator
) -> dict[str, object]:
    """One plausible sample for each requested sensor."""
    values: dict[str, object] = {}
    for sensor in sensors:
        if sensor == "gps":
            values["gps"] = GeoPoint(
                44.8 + float(rng.uniform(-0.05, 0.05)),
                -0.58 + float(rng.uniform(-0.05, 0.05)),
            )
        elif sensor == "battery":
            values["battery"] = float(rng.uniform(0.0, 1.0))
        elif sensor == "network":
            values["network"] = float(rng.uniform(-120.0, -40.0))
        elif sensor == "accelerometer":
            values["accelerometer"] = float(abs(rng.normal(0.0, 5.0)))
        else:  # future sensors: hand the script *something*
            values[sensor] = float(rng.uniform(0.0, 1.0))
    return values


def dry_run_task(task: SensingTask, n_samples: int = 200, seed: int = 0) -> DryRunReport:
    """Vet a task's script against ``n_samples`` synthetic samples.

    Tasks without a script trivially pass (the runtime itself is
    trusted); tasks with one are exercised across the sensor value
    space.  Error messages are deduplicated and capped at ten.
    """
    report = DryRunReport(task=task.name, samples=n_samples)
    if task.script is None:
        return report
    rng = np.random.default_rng(seed)
    seen_errors: set[str] = set()
    for _ in range(n_samples):
        values = _synthetic_values(task.sensors, rng)
        try:
            result = task.script(values)
        except Exception as error:  # noqa: BLE001 - vetting catches anything
            report.errors += 1
            message = f"{type(error).__name__}: {error}"
            if message not in seen_errors and len(report.error_messages) < 10:
                seen_errors.add(message)
                report.error_messages.append(message)
            continue
        if result is None:
            report.dropped += 1
    return report
