"""Task script vetting: dry-run a task before offering it to the crowd.

The real APISENSE vets uploaded JavaScript before offloading it onto
phones.  The reproduction's equivalent runs the task's *full v2
lifecycle* on the Honeycomb: a :class:`~repro.apisense.scripting.
TaskDispatcher` drives the script — legacy hook or v2 event script —
over a :class:`SyntheticRuntime` that synthesizes a trajectory and
sensor streams, so a crashing or over-aggressive script (and a trigger
handler that never fires cleanly) is caught before it wastes a single
device's battery.

The synthetic trajectory is drawn *inside the task's own region* when
the task has one, so region-fenced scripts are vetted against points
within their fence, and geofence / location-change triggers actually
exercise.  The synthetic battery discharges across the vetting window,
so ``on_battery_below`` handlers fire too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.apisense.scripting import (
    HandlerStats,
    ScriptRuntime,
    TaskDispatcher,
    TaskRuntimeStats,
)
from repro.apisense.tasks import SensingTask
from repro.geo.bbox import BoundingBox
from repro.geo.point import GeoPoint
from repro.simulation import Simulator

#: Where vetting walks a task that has no region of its own (Bordeaux,
#: the paper deployment's city).
DEFAULT_VET_REGION = BoundingBox(south=44.75, west=-0.63, north=44.85, east=-0.53)


@dataclass(frozen=True)
class HandlerReport:
    """Vetting outcome of one registered handler."""

    handler: str
    kind: str
    fires: int
    errors: int
    saves: int


@dataclass
class DryRunReport:
    """Outcome of vetting one task."""

    task: str
    samples: int
    errors: int = 0
    dropped: int = 0
    saves: int = 0
    error_messages: list[str] = field(default_factory=list)
    handlers: tuple[HandlerReport, ...] = ()
    setup_error: str | None = None

    @property
    def error_rate(self) -> float:
        return self.errors / self.samples if self.samples else 0.0

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.samples if self.samples else 0.0

    def acceptable(self, max_error_rate: float = 0.01, max_drop_rate: float = 0.95) -> bool:
        """Platform policy: scripts may filter but not crash or drop all.

        A script whose setup crashes registers nothing and is rejected
        outright; one erroring on more than ``max_error_rate`` of handler
        firings is buggy; one dropping more than ``max_drop_rate`` would
        waste the crowd's battery for almost no data.
        """
        if self.setup_error is not None:
            return False
        return self.error_rate <= max_error_rate and self.drop_rate <= max_drop_rate

    def to_text(self) -> str:
        """Human-readable report (the ``task vet`` CLI output)."""
        lines = [
            f"dry run of task {self.task!r}: "
            f"{self.samples} handler firings, {self.saves} saves, "
            f"{self.errors} errors ({self.error_rate:.0%}), "
            f"{self.dropped} dropped ({self.drop_rate:.0%})",
        ]
        if self.setup_error is not None:
            lines.append(f"  setup FAILED: {self.setup_error}")
        for handler in self.handlers:
            lines.append(
                f"  {handler.handler}: {handler.fires} fires, "
                f"{handler.saves} saves, {handler.errors} errors"
            )
        for message in self.error_messages:
            lines.append(f"  error: {message}")
        lines.append(f"verdict: {'ACCEPTABLE' if self.acceptable() else 'REJECTED'}")
        return "\n".join(lines)


def _synthetic_values(
    sensors: tuple[str, ...],
    rng: np.random.Generator,
    region: BoundingBox | None = None,
) -> dict[str, object]:
    """One plausible sample for each requested sensor.

    GPS points are drawn inside ``region`` (the task's own fence) when
    given, so region-filtering scripts are not vetted against points
    outside their fence; the default is the Bordeaux deployment box.
    """
    box = region or DEFAULT_VET_REGION
    values: dict[str, object] = {}
    for sensor in sensors:
        if sensor == "gps":
            values["gps"] = GeoPoint(
                float(rng.uniform(box.south, box.north)),
                float(rng.uniform(box.west, box.east)),
            )
        elif sensor == "battery":
            values["battery"] = float(rng.uniform(0.0, 1.0))
        elif sensor == "network":
            values["network"] = float(rng.uniform(-120.0, -40.0))
        elif sensor == "accelerometer":
            values["accelerometer"] = float(abs(rng.normal(0.0, 5.0)))
        else:  # registry sensors beyond the built-ins: hand *something*
            values[sensor] = float(rng.uniform(0.0, 1.0))
    return values


class SyntheticRuntime(ScriptRuntime):
    """Dispatcher host for vetting: synthetic trajectory + sensor streams.

    The trajectory is a smooth Lissajous walk inside the vetting region
    (several box traversals over the window, so location-change and
    geofence triggers fire); the battery discharges linearly from full
    to nearly empty (so ``on_battery_below`` fires once).  Emitted
    samples are only counted — there is no privacy chain on the
    Honeycomb side of vetting.
    """

    def __init__(self, task: SensingTask, sim: Simulator, window: float, seed: int = 0):
        self.sim = sim
        self.stats = TaskRuntimeStats()
        self._task = task
        self._rng = np.random.default_rng(seed)
        self._region = task.region or DEFAULT_VET_REGION
        self._t0 = task.start
        self._window = max(window, task.sampling_period)
        self._phase_lat = float(self._rng.uniform(0.0, 2.0 * math.pi))
        self._phase_lon = float(self._rng.uniform(0.0, 2.0 * math.pi))

    def position(self, time: float) -> GeoPoint:
        box = self._region
        lat_c = (box.south + box.north) / 2.0
        lon_c = (box.west + box.east) / 2.0
        lat_amp = (box.north - box.south) / 2.0 * 0.95
        lon_amp = (box.east - box.west) / 2.0 * 0.95
        # Two traversals one way, three the other: a Lissajous sweep
        # that covers the box and crosses any interior geofence.
        progress = (time - self._t0) / self._window
        return GeoPoint(
            lat_c + lat_amp * math.sin(2.0 * math.pi * 2.0 * progress + self._phase_lat),
            lon_c + lon_amp * math.sin(2.0 * math.pi * 3.0 * progress + self._phase_lon),
        )

    def battery_level(self, time: float) -> float:
        progress = min(1.0, max(0.0, (time - self._t0) / self._window))
        return 1.0 - 0.95 * progress

    def in_quiet_hours(self, time: float) -> bool:
        return False

    def acquire(self, sensors: tuple[str, ...], time: float) -> bool:
        return True

    def read_sensor(self, name: str, time: float) -> object:
        if name == "gps":
            return self.position(time)
        if name == "battery":
            return self.battery_level(time)
        return _synthetic_values((name,), self._rng, self._region)[name]

    def emit(self, values: Mapping[str, object], time: float) -> bool:
        self.stats.samples_taken += 1
        return True


def dry_run_task(task: SensingTask, n_samples: int = 200, seed: int = 0) -> DryRunReport:
    """Vet a task by running its full lifecycle through the dispatcher.

    The dispatcher executes the task's script — v2 event script or
    legacy hook (via the adapter) — for ``n_samples`` sampling periods
    of simulated time against synthetic trajectory and sensor streams,
    counting firings, saves, drops, and errors per handler.  Error
    messages are deduplicated and capped at ten.
    """
    sim = Simulator(start_time=task.start)
    window = n_samples * task.sampling_period
    runtime = SyntheticRuntime(task, sim, window=window, seed=seed)
    dispatcher = TaskDispatcher(task, runtime)
    dispatcher.start()
    sim.run_until(min(task.end, task.start + window))
    return DryRunReport(
        task=task.name,
        samples=dispatcher.total_fires,
        errors=runtime.stats.script_errors,
        dropped=runtime.stats.samples_script_dropped,
        saves=runtime.stats.samples_taken,
        error_messages=list(dispatcher.error_messages),
        handlers=tuple(
            HandlerReport(
                handler=stats.name,
                kind=stats.kind,
                fires=stats.fires,
                errors=stats.errors,
                saves=stats.saves,
            )
            for stats in dispatcher.handler_stats
        ),
        setup_error=dispatcher.setup_error,
    )


def describe_task(task: SensingTask) -> str:
    """Static + behavioural description (the ``task describe`` CLI).

    Instantiates the script against a synthetic runtime (setup only, no
    ticks) to list the handlers it registers.
    """
    sim = Simulator(start_time=task.start)
    runtime = SyntheticRuntime(task, sim, window=task.duration, seed=0)
    dispatcher = TaskDispatcher(task, runtime)
    dispatcher.start()
    mode = "v2 event script" if task.script_v2 is not None else (
        "v1 sample hook" if task.script is not None else "no script (collect all)"
    )
    lines = [
        f"task {task.name!r} [{mode}]",
        f"  sensors: {', '.join(task.sensors)}",
        f"  sampling period: {task.sampling_period:.0f}s, "
        f"upload period: {task.upload_period:.0f}s",
        f"  window: [{task.start:.0f}, {task.end:.0f}]s "
        f"({task.duration / 86400.0:.1f} days)",
    ]
    if task.region is not None:
        box = task.region
        lines.append(
            f"  region: [{box.south:.4f}, {box.west:.4f}] .. "
            f"[{box.north:.4f}, {box.east:.4f}]"
        )
    if dispatcher.setup_error is not None:
        lines.append(f"  setup FAILED: {dispatcher.setup_error}")
    elif dispatcher.handler_stats:
        lines.append("  handlers:")
        for stats in dispatcher.handler_stats:
            lines.append(f"    {stats.name} ({stats.kind})")
        for timer in dispatcher.timers:
            lines.append(f"    timer period {timer.period:.0f}s")
    dispatcher.cancel()
    return "\n".join(lines)
