"""Incentive strategies (paper Section 2).

"The APISENSE platform supports the implementation of different incentive
strategies, including user feedback, user ranking, user rewarding and
win-win services.  The selection of incentive strategies carefully
depends on the nature of the crowdsourcing experiments."

The behavioural model: each user has a *motivation* in [0, 1] that (a)
decays a little every day — participation fatigue — and (b) is boosted by
whatever the incentive strategy gives back.  Motivation drives the
probability of accepting task offers and of keeping a task running.
Strategy constants are chosen so the qualitative ordering (win-win and
rewards retain best, feedback helps modestly, nothing decays away)
matches the crowd-sensing literature; experiment E7 measures exactly
that ordering.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np


@dataclass
class UserState:
    """Mutable per-user community state kept by the Hive."""

    user: str
    motivation: float
    points: float = 0.0
    credits: float = 0.0
    rank: int = 0
    contributions: int = 0

    def clamp(self) -> None:
        self.motivation = min(1.0, max(0.0, self.motivation))


class IncentiveStrategy(ABC):
    """Hooks called by the Hive as the community contributes."""

    name: str = "abstract"

    #: Per-day multiplicative motivation decay (participation fatigue).
    daily_decay: float = 0.97

    def acceptance_probability(self, state: UserState) -> float:
        """Probability that a user accepts a task offer right now."""
        return min(0.95, max(0.05, state.motivation))

    @abstractmethod
    def on_contribution(self, state: UserState, n_records: int) -> None:
        """Update a user's state after an upload of ``n_records``."""

    def on_day_end(self, community: dict[str, UserState]) -> None:
        """Daily bookkeeping: fatigue decay; strategies may extend."""
        for state in community.values():
            state.motivation *= self.daily_decay
            state.clamp()


class NoIncentive(IncentiveStrategy):
    """Control arm: contributions earn nothing, motivation only decays."""

    name = "none"

    def on_contribution(self, state: UserState, n_records: int) -> None:
        state.contributions += 1


class FeedbackIncentive(IncentiveStrategy):
    """Users see visualisations of their own data.

    Feedback gives a small, per-contribution warm-glow boost that
    saturates quickly — seeing your dashboard is nice, but not nicer the
    hundredth time.
    """

    name = "feedback"

    def on_contribution(self, state: UserState, n_records: int) -> None:
        state.contributions += 1
        boost = 0.01 / (1.0 + 0.05 * state.contributions)
        state.motivation += boost
        state.clamp()


class RankingIncentive(IncentiveStrategy):
    """A public leaderboard of contributors.

    Points accrue with contributions; at the end of each day users are
    ranked, the top quartile gets a competitive boost and the bottom
    quartile loses interest faster.  Net effect: strong retention of a
    core, faster churn of the tail — the classic gamification shape.
    """

    name = "ranking"

    def on_contribution(self, state: UserState, n_records: int) -> None:
        state.contributions += 1
        state.points += n_records

    def on_day_end(self, community: dict[str, UserState]) -> None:
        super().on_day_end(community)
        ranked = sorted(community.values(), key=lambda s: -s.points)
        n = len(ranked)
        for position, state in enumerate(ranked):
            state.rank = position + 1
            if n >= 4:
                if position < n // 4:
                    state.motivation += 0.03
                elif position >= n - n // 4:
                    state.motivation -= 0.02
            state.clamp()


class RewardIncentive(IncentiveStrategy):
    """Micro-payments per contributed record.

    The boost is proportional to what was just earned, saturating at high
    balances (money keeps working, marginal utility shrinks).
    """

    name = "reward"

    def __init__(self, credit_per_record: float = 0.01):
        self.credit_per_record = credit_per_record

    def on_contribution(self, state: UserState, n_records: int) -> None:
        state.contributions += 1
        earned = self.credit_per_record * n_records
        state.credits += earned
        state.motivation += 0.02 * earned / (1.0 + 0.1 * state.credits)
        state.clamp()


class WinWinIncentive(IncentiveStrategy):
    """Contributors get the derived service back (e.g. the coverage map).

    The service is valuable every day the user contributes, so the boost
    does not saturate with balance; additionally the ongoing value sets a
    motivation floor — users who rely on the service do not churn.  This
    is the strategy the paper's SaaS positioning leans on.
    """

    name = "win-win"
    daily_decay = 0.985  # the service itself counteracts fatigue

    def on_contribution(self, state: UserState, n_records: int) -> None:
        state.contributions += 1
        state.motivation += 0.015
        state.clamp()

    def on_day_end(self, community: dict[str, UserState]) -> None:
        super().on_day_end(community)
        for state in community.values():
            if state.contributions > 0:
                state.motivation = max(state.motivation, 0.35)


def draw_initial_motivation(rng: np.random.Generator) -> float:
    """Initial motivation of a newly enrolled user."""
    return float(rng.uniform(0.35, 0.85))
