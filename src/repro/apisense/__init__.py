"""APISENSE: the distributed crowd-sensing middleware (paper Section 2).

The platform's architecture maps one-to-one onto the paper's Figure 1:

- the :class:`~repro.apisense.hive.Hive` manages the community of mobile
  users and publishes crowd-sensing tasks;
- :class:`~repro.apisense.honeycomb.Honeycomb` endpoints upload tasks
  (described as scripts) and receive the collected datasets;
- :mod:`repro.apisense.scripting` is the paper's scripting facade — the
  v2 Sensing Script API: a :class:`~repro.apisense.scripting.TaskScript`
  registers periodic timers (re-schedulable at runtime for adaptive
  sampling), sensor-change triggers, and geofence handlers against a
  :class:`~repro.apisense.scripting.TaskContext` with lazy sensor
  facades; the fluent :class:`~repro.apisense.scripting.TaskBuilder`
  (``SensingTask.builder(...)``) is the declarative front door, and
  legacy one-hook tasks run unchanged through an adapter;
- :class:`~repro.apisense.device.MobileDevice` instances execute
  offloaded scripts through an event-driven
  :class:`~repro.apisense.scripting.TaskDispatcher` over their sensors,
  behind an on-device privacy layer (:mod:`repro.apisense.filters`)
  controlled by user preferences;
- :class:`~repro.apisense.virtual_sensor.VirtualSensor` groups devices
  behind retrieval strategies (:mod:`repro.apisense.scheduling`);
- :mod:`repro.apisense.incentives` implements the four incentive
  strategies the paper lists;
- multi-Hive deployments scale out through :mod:`repro.federation`
  (consistent-hash placement, syndication, federated queries);
  :class:`~repro.apisense.federation.HiveFederation` remains as a thin
  legacy facade over it.

Everything runs on the deterministic simulator from
:mod:`repro.simulation`; see DESIGN.md for the substitution argument.
"""

from repro.apisense.tasks import SensingTask
from repro.apisense.battery import Battery, BatteryModel
from repro.apisense.scripting import (
    HandlerStats,
    LegacyHookScript,
    ScriptRuntime,
    SensorReadRefused,
    TaskBuilder,
    TaskContext,
    TaskDispatcher,
    TaskScript,
    TimerHandle,
    TriggerEvent,
)
from repro.apisense.sensors import (
    AccelerometerSensor,
    BatterySensor,
    GpsSensor,
    NetworkQualitySensor,
    Sensor,
    SensorRegistry,
    SensorSuite,
    default_sensor_suite,
    sensor_registry,
)
from repro.apisense.preferences import UserPreferences
from repro.apisense.filters import (
    AreaFenceFilter,
    FieldDropFilter,
    LocationBlurFilter,
    PrivacyFilterChain,
    QuietHoursFilter,
)
from repro.apisense.device import MobileDevice, SensorRecord
from repro.apisense.hive import Hive, HiveStats
from repro.apisense.honeycomb import Honeycomb
from repro.apisense.scheduling import (
    CoverageGreedyStrategy,
    EnergyAwareStrategy,
    FairBudgetStrategy,
    RoundRobinStrategy,
    SchedulingStrategy,
)
from repro.apisense.virtual_sensor import VirtualSensor
from repro.apisense.incentives import (
    FeedbackIncentive,
    IncentiveStrategy,
    NoIncentive,
    RankingIncentive,
    RewardIncentive,
    UserState,
    WinWinIncentive,
)
from repro.apisense.campaign import Campaign, CampaignConfig, CampaignReport
from repro.apisense.transport import Transport, TransportStats
from repro.apisense.federation import HiveFederation, SyndicationReceipt
from repro.apisense.monitoring import PlatformHealthReport, snapshot
from repro.apisense.vetting import DryRunReport, HandlerReport, describe_task, dry_run_task
from repro.apisense.recruitment import (
    AllDevices,
    BatteryFloorRecruitment,
    PredicateRecruitment,
    QuotaRecruitment,
    RecruitmentPolicy,
    RegionRecruitment,
    SensorCapabilityRecruitment,
)

__all__ = [
    "SensingTask",
    "TaskBuilder",
    "TaskScript",
    "TaskContext",
    "TaskDispatcher",
    "TimerHandle",
    "TriggerEvent",
    "HandlerStats",
    "LegacyHookScript",
    "ScriptRuntime",
    "SensorReadRefused",
    "Battery",
    "BatteryModel",
    "Sensor",
    "SensorSuite",
    "SensorRegistry",
    "sensor_registry",
    "GpsSensor",
    "BatterySensor",
    "NetworkQualitySensor",
    "AccelerometerSensor",
    "default_sensor_suite",
    "UserPreferences",
    "PrivacyFilterChain",
    "LocationBlurFilter",
    "AreaFenceFilter",
    "QuietHoursFilter",
    "FieldDropFilter",
    "MobileDevice",
    "SensorRecord",
    "Hive",
    "HiveStats",
    "Honeycomb",
    "SchedulingStrategy",
    "RoundRobinStrategy",
    "EnergyAwareStrategy",
    "CoverageGreedyStrategy",
    "FairBudgetStrategy",
    "VirtualSensor",
    "IncentiveStrategy",
    "NoIncentive",
    "FeedbackIncentive",
    "RankingIncentive",
    "RewardIncentive",
    "WinWinIncentive",
    "UserState",
    "Campaign",
    "CampaignConfig",
    "CampaignReport",
    "Transport",
    "TransportStats",
    "RecruitmentPolicy",
    "AllDevices",
    "RegionRecruitment",
    "BatteryFloorRecruitment",
    "PredicateRecruitment",
    "QuotaRecruitment",
    "SensorCapabilityRecruitment",
    "HiveFederation",
    "SyndicationReceipt",
    "DryRunReport",
    "HandlerReport",
    "describe_task",
    "dry_run_task",
    "PlatformHealthReport",
    "snapshot",
]
