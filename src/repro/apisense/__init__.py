"""APISENSE: the distributed crowd-sensing middleware (paper Section 2).

The platform's architecture maps one-to-one onto the paper's Figure 1:

- the :class:`~repro.apisense.hive.Hive` manages the community of mobile
  users and publishes crowd-sensing tasks;
- :class:`~repro.apisense.honeycomb.Honeycomb` endpoints upload tasks
  (described as scripts) and receive the collected datasets;
- :class:`~repro.apisense.device.MobileDevice` instances run offloaded
  tasks against their sensors, behind an on-device privacy layer
  (:mod:`repro.apisense.filters`) controlled by user preferences;
- :class:`~repro.apisense.virtual_sensor.VirtualSensor` groups devices
  behind retrieval strategies (:mod:`repro.apisense.scheduling`);
- :mod:`repro.apisense.incentives` implements the four incentive
  strategies the paper lists.

Everything runs on the deterministic simulator from
:mod:`repro.simulation`; see DESIGN.md for the substitution argument.
"""

from repro.apisense.tasks import SensingTask
from repro.apisense.battery import Battery, BatteryModel
from repro.apisense.sensors import (
    AccelerometerSensor,
    BatterySensor,
    GpsSensor,
    NetworkQualitySensor,
    Sensor,
    SensorSuite,
    default_sensor_suite,
)
from repro.apisense.preferences import UserPreferences
from repro.apisense.filters import (
    AreaFenceFilter,
    FieldDropFilter,
    LocationBlurFilter,
    PrivacyFilterChain,
    QuietHoursFilter,
)
from repro.apisense.device import MobileDevice, SensorRecord
from repro.apisense.hive import Hive, HiveStats
from repro.apisense.honeycomb import Honeycomb
from repro.apisense.scheduling import (
    CoverageGreedyStrategy,
    EnergyAwareStrategy,
    FairBudgetStrategy,
    RoundRobinStrategy,
    SchedulingStrategy,
)
from repro.apisense.virtual_sensor import VirtualSensor
from repro.apisense.incentives import (
    FeedbackIncentive,
    IncentiveStrategy,
    NoIncentive,
    RankingIncentive,
    RewardIncentive,
    UserState,
    WinWinIncentive,
)
from repro.apisense.campaign import Campaign, CampaignConfig, CampaignReport
from repro.apisense.transport import Transport, TransportStats
from repro.apisense.federation import HiveFederation, SyndicationReceipt
from repro.apisense.monitoring import PlatformHealthReport, snapshot
from repro.apisense.vetting import DryRunReport, dry_run_task
from repro.apisense.recruitment import (
    AllDevices,
    BatteryFloorRecruitment,
    QuotaRecruitment,
    RecruitmentPolicy,
    RegionRecruitment,
    SensorCapabilityRecruitment,
)

__all__ = [
    "SensingTask",
    "Battery",
    "BatteryModel",
    "Sensor",
    "SensorSuite",
    "GpsSensor",
    "BatterySensor",
    "NetworkQualitySensor",
    "AccelerometerSensor",
    "default_sensor_suite",
    "UserPreferences",
    "PrivacyFilterChain",
    "LocationBlurFilter",
    "AreaFenceFilter",
    "QuietHoursFilter",
    "FieldDropFilter",
    "MobileDevice",
    "SensorRecord",
    "Hive",
    "HiveStats",
    "Honeycomb",
    "SchedulingStrategy",
    "RoundRobinStrategy",
    "EnergyAwareStrategy",
    "CoverageGreedyStrategy",
    "FairBudgetStrategy",
    "VirtualSensor",
    "IncentiveStrategy",
    "NoIncentive",
    "FeedbackIncentive",
    "RankingIncentive",
    "RewardIncentive",
    "WinWinIncentive",
    "UserState",
    "Campaign",
    "CampaignConfig",
    "CampaignReport",
    "Transport",
    "TransportStats",
    "RecruitmentPolicy",
    "AllDevices",
    "RegionRecruitment",
    "BatteryFloorRecruitment",
    "QuotaRecruitment",
    "SensorCapabilityRecruitment",
    "HiveFederation",
    "SyndicationReceipt",
    "DryRunReport",
    "dry_run_task",
    "PlatformHealthReport",
    "snapshot",
]
