"""Crowd-sensing task descriptions — the platform's "scripts".

The real APISENSE describes tasks as JavaScript offloaded to phones.  The
reproduction keeps the same contract — *a task is data plus behaviour* —
as a declarative dataclass carrying either of two behaviour styles:

- ``script``: the legacy v1 per-sample hook (called with each tick's
  sensor values, returns the record to keep or ``None``);
- ``script_v2``: an event-driven v2 script (a
  :class:`~repro.apisense.scripting.TaskScript` or bare ``setup(ctx)``
  function) that registers timers, sensor-change triggers, and geofence
  handlers against a :class:`~repro.apisense.scripting.TaskContext`.

:meth:`SensingTask.builder` is the fluent front door for building tasks.
The static validation performed here plays the role of the Honeycomb's
script vetting step; which sensors are requestable is decided by the
:data:`~repro.apisense.sensors.sensor_registry`, so custom sensors added
to a :class:`~repro.apisense.sensors.SensorSuite` become requestable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from repro.errors import TaskValidationError
from repro.geo.bbox import BoundingBox
from repro.units import DAY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.apisense.scripting import SetupFn, TaskBuilder, TaskScript

#: The built-in sensors every stock device ships with.  Kept for
#: backwards compatibility; validation consults the live
#: :data:`~repro.apisense.sensors.sensor_registry`, which starts from
#: this set and grows as sensor suites register custom sensors.
KNOWN_SENSORS = frozenset({"gps", "battery", "network", "accelerometer"})

#: v1 script hook signature: receives the sampled values (sensor name ->
#: value) and returns the record to keep, or ``None`` to drop the sample.
SampleHook = Callable[[Mapping[str, object]], Mapping[str, object] | None]


@dataclass(frozen=True)
class SensingTask:
    """One deployable crowd-sensing experiment.

    Parameters
    ----------
    name:
        Unique task identifier.
    sensors:
        Sensors the task may read (must be registered in the sensor
        registry).  v1 tasks sample all of them each tick; v2 scripts
        read them lazily through facades.
    sampling_period:
        Seconds between samples on each device.  For v2 scripts this is
        the trigger-evaluation cadence (and the default timer period).
    upload_period:
        Seconds between buffer uploads from device to Hive.
    start / end:
        Campaign window in simulation seconds.
    region:
        Optional geographic fence; devices sample only inside it.
    script:
        Optional v1 per-sample hook (the task's "script body").
        Exceptions raised by the hook are counted and the sample
        dropped — the device-side runtime never lets a bad script kill
        collection.
    script_v2:
        Optional v2 event-driven script: a ``TaskScript`` subclass
        (instantiated per device — the recommended style for stateful
        scripts), a ``TaskScript`` instance (shared across devices), or
        a bare ``setup(ctx)`` callable.  Mutually exclusive with
        ``script``.
    """

    name: str
    sensors: tuple[str, ...]
    sampling_period: float = 60.0
    upload_period: float = 3600.0
    start: float = 0.0
    end: float = 7 * DAY
    region: BoundingBox | None = None
    script: SampleHook | None = field(default=None, compare=False)
    script_v2: "TaskScript | SetupFn | None" = field(default=None, compare=False)

    def __post_init__(self) -> None:
        self.validate()

    @classmethod
    def builder(cls, name: str) -> "TaskBuilder":
        """Start a fluent :class:`~repro.apisense.scripting.TaskBuilder`::

            SensingTask.builder("noise").sensors("gps").every(30).build()
        """
        from repro.apisense.scripting import TaskBuilder

        return TaskBuilder(name)

    def validate(self) -> None:
        """Static validation; raises :class:`TaskValidationError`."""
        from repro.apisense.sensors import sensor_registry

        if not self.name:
            raise TaskValidationError("task name must be non-empty")
        if not self.sensors:
            raise TaskValidationError(f"task {self.name!r} requests no sensors")
        unknown = {name for name in self.sensors if name not in sensor_registry}
        if unknown:
            raise TaskValidationError(
                f"task {self.name!r} requests unknown sensors {sorted(unknown)}; "
                f"registered sensors: {sorted(sensor_registry.registered())}"
            )
        if len(set(self.sensors)) != len(self.sensors):
            raise TaskValidationError(f"task {self.name!r} lists a sensor twice")
        if self.sampling_period <= 0:
            raise TaskValidationError(
                f"task {self.name!r}: sampling period must be positive"
            )
        if self.sampling_period < 1.0:
            raise TaskValidationError(
                f"task {self.name!r}: sampling faster than 1 Hz would drain "
                "batteries in hours; rejected by platform policy"
            )
        if self.upload_period < self.sampling_period:
            raise TaskValidationError(
                f"task {self.name!r}: upload period shorter than sampling period"
            )
        if self.end <= self.start:
            raise TaskValidationError(
                f"task {self.name!r}: ends ({self.end}) before it starts ({self.start})"
            )
        if self.script is not None and not callable(self.script):
            raise TaskValidationError(f"task {self.name!r}: script is not callable")
        if self.script_v2 is not None:
            from repro.apisense.scripting import TaskScript

            if isinstance(self.script_v2, type):
                if not issubclass(self.script_v2, TaskScript):
                    raise TaskValidationError(
                        f"task {self.name!r}: script_v2 class must subclass TaskScript"
                    )
            elif not isinstance(self.script_v2, TaskScript) and not callable(
                self.script_v2
            ):
                raise TaskValidationError(
                    f"task {self.name!r}: script_v2 must be a TaskScript (class "
                    "or instance) or a setup(ctx) callable"
                )
            if self.script is not None:
                raise TaskValidationError(
                    f"task {self.name!r}: declares both a v1 hook and a v2 "
                    "script; pick one behaviour style"
                )

    @property
    def duration(self) -> float:
        return self.end - self.start

    def expected_samples(self) -> int:
        """Upper bound on per-device samples over the campaign window."""
        return int(self.duration // self.sampling_period)
