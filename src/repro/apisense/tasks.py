"""Crowd-sensing task descriptions — the platform's "scripts".

The real APISENSE describes tasks as JavaScript offloaded to phones.  The
reproduction keeps the same contract — *a task is data plus a per-sample
hook* — as a declarative dataclass with an optional Python callable.  The
static validation performed here plays the role of the Honeycomb's script
vetting step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import TaskValidationError
from repro.geo.bbox import BoundingBox
from repro.units import DAY

#: Sensors the platform knows how to serve.
KNOWN_SENSORS = frozenset({"gps", "battery", "network", "accelerometer"})

#: Script hook signature: receives the sampled values (sensor name ->
#: value) and returns the record to keep, or ``None`` to drop the sample.
SampleHook = Callable[[Mapping[str, object]], Mapping[str, object] | None]


@dataclass(frozen=True)
class SensingTask:
    """One deployable crowd-sensing experiment.

    Parameters
    ----------
    name:
        Unique task identifier.
    sensors:
        Sensors the task samples each tick (subset of ``KNOWN_SENSORS``).
    sampling_period:
        Seconds between samples on each device.
    upload_period:
        Seconds between buffer uploads from device to Hive.
    start / end:
        Campaign window in simulation seconds.
    region:
        Optional geographic fence; devices sample only inside it.
    script:
        Optional per-sample hook (the task's "script body").  Exceptions
        raised by the hook are counted and the sample dropped — the
        device-side runtime never lets a bad script kill collection.
    """

    name: str
    sensors: tuple[str, ...]
    sampling_period: float = 60.0
    upload_period: float = 3600.0
    start: float = 0.0
    end: float = 7 * DAY
    region: BoundingBox | None = None
    script: SampleHook | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Static validation; raises :class:`TaskValidationError`."""
        if not self.name:
            raise TaskValidationError("task name must be non-empty")
        if not self.sensors:
            raise TaskValidationError(f"task {self.name!r} requests no sensors")
        unknown = set(self.sensors) - KNOWN_SENSORS
        if unknown:
            raise TaskValidationError(
                f"task {self.name!r} requests unknown sensors {sorted(unknown)}; "
                f"known sensors: {sorted(KNOWN_SENSORS)}"
            )
        if len(set(self.sensors)) != len(self.sensors):
            raise TaskValidationError(f"task {self.name!r} lists a sensor twice")
        if self.sampling_period <= 0:
            raise TaskValidationError(
                f"task {self.name!r}: sampling period must be positive"
            )
        if self.sampling_period < 1.0:
            raise TaskValidationError(
                f"task {self.name!r}: sampling faster than 1 Hz would drain "
                "batteries in hours; rejected by platform policy"
            )
        if self.upload_period < self.sampling_period:
            raise TaskValidationError(
                f"task {self.name!r}: upload period shorter than sampling period"
            )
        if self.end <= self.start:
            raise TaskValidationError(
                f"task {self.name!r}: ends ({self.end}) before it starts ({self.start})"
            )
        if self.script is not None and not callable(self.script):
            raise TaskValidationError(f"task {self.name!r}: script is not callable")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def expected_samples(self) -> int:
        """Upper bound on per-device samples over the campaign window."""
        return int(self.duration // self.sampling_period)
