"""Command-line interface: the library's operations as shell commands.

The subcommands mirror the lifecycle of a crowd-sensing dataset::

    python -m repro generate  --users 20 --days 7 --out raw.csv
    python -m repro protect   --input raw.csv --mechanism speed-smoothing --out prot.csv
    python -m repro attack    --input prot.csv --background raw.csv
    python -m repro evaluate  --raw raw.csv --protected prot.csv
    python -m repro publish   --input raw.csv --max-poi-recall 0.2 --out pub.csv

plus the server-side storage operations, grouped under ``store``::

    python -m repro store stats   --input raw.csv --shards 4
    python -m repro store query   --input raw.csv --t0 0 --t1 86400 --out day0.csv
    python -m repro store compact --input raw.csv --segment-capacity 512

the task-lifecycle operations, grouped under ``task``::

    python -m repro task vet      --spec examples/adaptive_scripting.py
    python -m repro task describe --spec my_experiment.py:TASK

the multi-hive scale-out operations, grouped under ``federation``::

    python -m repro federation run   --users 40 --days 2 --hives 3
    python -m repro federation stats --devices 2000 --hives 4
    python -m repro federation query --input raw.csv --hives 4 --t0 0 --t1 86400

and the live streaming analytics tier, grouped under ``stream``::

    python -m repro stream views  --input raw.csv --window 3600
    python -m repro stream alerts --input raw.csv --rate-below 0.02
    python -m repro stream watch  --input raw.csv --window 3600 --slide 900

Dataset commands work on the ``user,time,lat,lon`` CSV format of
:meth:`repro.mobility.dataset.MobilityDataset.to_csv`; ``task`` commands
load a :class:`~repro.apisense.tasks.SensingTask` from a Python spec
file (a module exposing ``TASK`` or a ``build_task()`` factory).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core import (
    CrowdedPlacesObjective,
    DistortionObjective,
    PrivacyRequirement,
    PrivApi,
    TrafficFlowObjective,
)
from repro.mobility import GeneratorConfig, MobilityDataset, MobilityGenerator
from repro.privacy import (
    GeoIndistinguishabilityMechanism,
    IdentityMechanism,
    PoiAttack,
    ReidentificationAttack,
    SpatialCloakingMechanism,
    SpeedSmoothingMechanism,
    TemporalDownsamplingMechanism,
    reidentification_rate,
)

OBJECTIVES = {
    "crowded-places": CrowdedPlacesObjective,
    "traffic-flow": TrafficFlowObjective,
    "distortion": DistortionObjective,
}


def _build_mechanism(args: argparse.Namespace):
    name = args.mechanism
    if name == "identity":
        return IdentityMechanism()
    if name == "speed-smoothing":
        return SpeedSmoothingMechanism(epsilon_m=args.epsilon_m)
    if name == "geo-indistinguishability":
        return GeoIndistinguishabilityMechanism(epsilon=args.epsilon)
    if name == "spatial-cloaking":
        return SpatialCloakingMechanism(cell_size_m=args.cell_m)
    if name == "temporal-downsampling":
        return TemporalDownsamplingMechanism(window=args.window_s)
    raise SystemExit(f"unknown mechanism: {name}")


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------


def cmd_generate(args: argparse.Namespace) -> int:
    config = GeneratorConfig(
        n_users=args.users,
        n_days=args.days,
        sampling_period=args.period,
    )
    population = MobilityGenerator(config).generate(seed=args.seed)
    population.dataset.to_csv(args.out)
    print(
        f"wrote {population.dataset.n_records} records for "
        f"{len(population.dataset)} users to {args.out}"
    )
    return 0


def cmd_protect(args: argparse.Namespace) -> int:
    dataset = MobilityDataset.from_csv(args.input)
    mechanism = _build_mechanism(args)
    protected = mechanism.protect(dataset, seed=args.seed)
    protected.to_csv(args.out)
    print(
        f"{mechanism.name}: {dataset.n_records} -> {protected.n_records} records, "
        f"{len(dataset)} -> {len(protected)} users; wrote {args.out}"
    )
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    dataset = MobilityDataset.from_csv(args.input)
    attack = PoiAttack(denoise_window=args.denoise_window)
    found = attack.run(dataset)
    total = sum(len(pois) for pois in found.values())
    print(f"POI attack: {total} candidate POIs across {len(found)} users")
    for user, pois in sorted(found.items()):
        tops = ", ".join(f"{p.center}" for p in pois[:3])
        print(f"  {user}: {len(pois)} POIs  top: {tops}")

    if args.background:
        background = MobilityDataset.from_csv(args.background)
        linker = ReidentificationAttack(
            denoise_window=args.denoise_window
        ).fit(background)
        pseudo, secret = dataset.pseudonymized()
        guesses = {p: r.guessed_user for p, r in linker.link(pseudo).items()}
        # The target already carries real ids here; the pseudonymization
        # is only to exercise the linkage path.
        rate = reidentification_rate(secret, guesses)
        print(f"re-identification (vs background {args.background}): {rate:.0%}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.utility.release_report import evaluate_release

    raw = MobilityDataset.from_csv(args.raw)
    protected = MobilityDataset.from_csv(args.protected)
    report = evaluate_release(
        raw, protected, cell_size_m=args.cell_m, hotspot_k=args.top_k
    )
    print(report.to_text())
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.apisense import Campaign, CampaignConfig, SensingTask
    from repro.apisense.incentives import (
        FeedbackIncentive,
        NoIncentive,
        RankingIncentive,
        RewardIncentive,
        WinWinIncentive,
    )
    from repro.units import DAY

    incentives = {
        "none": NoIncentive,
        "feedback": FeedbackIncentive,
        "ranking": RankingIncentive,
        "reward": RewardIncentive,
        "win-win": WinWinIncentive,
    }
    population = MobilityGenerator(
        GeneratorConfig(n_users=args.users, n_days=args.days)
    ).generate(seed=args.seed)
    campaign = Campaign(
        population,
        incentive=incentives[args.incentive](),
        config=CampaignConfig(
            n_days=float(args.days), uplink_loss=args.loss, seed=args.seed
        ),
    )
    honeycomb = campaign.deploy(
        SensingTask(
            name="cli-campaign",
            sensors=("gps", "battery"),
            sampling_period=args.period,
            upload_period=1800.0,
            end=args.days * DAY,
        )
    )
    report = campaign.run()
    print(
        f"campaign: {report.total_records} records from {report.n_devices} devices "
        f"over {report.duration_days:.0f} days"
    )
    print(
        f"acceptance {report.acceptance_rate_per_task['cli-campaign']:.0%}, "
        f"mean motivation {report.mean_motivation:.2f}, "
        f"messages {report.messages_sent}, "
        f"transport loss {campaign.hive.transport.stats.loss_rate:.1%}"
    )
    print(f"daily records: {report.daily_records}")
    if args.out:
        honeycomb.mobility_dataset("cli-campaign").to_csv(args.out)
        print(f"wrote collected mobility data to {args.out}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.mobility.stats import summarize

    dataset = MobilityDataset.from_csv(args.input)
    summary = summarize(dataset, cell_size_m=args.cell_m)
    print(summary.to_text())
    if args.geojson:
        from repro.mobility.geojson import dataset_to_geojson, write_geojson

        write_geojson(dataset_to_geojson(dataset), args.geojson)
        print(f"wrote GeoJSON to {args.geojson}")
    return 0


def cmd_publish(args: argparse.Namespace) -> int:
    dataset = MobilityDataset.from_csv(args.input)
    objective = OBJECTIVES[args.objective]()
    requirement = PrivacyRequirement(max_poi_recall=args.max_poi_recall)
    result = PrivApi(seed=args.seed).publish(
        dataset, requirement, objective, strict=not args.lenient
    )
    print(result.report.to_text())
    if result.dataset is None:
        print("nothing published (strict mode, bar not met)", file=sys.stderr)
        return 1
    result.dataset.to_csv(args.out)
    print(f"wrote published dataset ({result.dataset.n_records} records) to {args.out}")
    return 0


# ----------------------------------------------------------------------
# ``store`` subcommands (columnar dataset store operations)
# ----------------------------------------------------------------------


def _ingest_csv_into_store(args: argparse.Namespace, via_pipeline: bool):
    """Load a mobility CSV into a fresh store, optionally via the pipeline.

    Rows are replayed in time order (the arrival order a live deployment
    would see) as single-task GPS records.  Returns ``(store, pipeline)``
    where ``pipeline`` is ``None`` for direct bulk loads.
    """
    from repro.apisense.device import SensorRecord
    from repro.simulation import Simulator
    from repro.store import DatasetStore, IngestPipeline

    dataset = MobilityDataset.from_csv(args.input)
    records = sorted(
        (
            SensorRecord(
                device_id=f"csv:{user}",
                user=user,
                task=args.task_name,
                time=record.time,
                values={"gps": record.point},
            )
            for user, record in dataset.all_records()
        ),
        key=lambda r: r.time,
    )
    store = DatasetStore(
        n_shards=args.shards, segment_capacity=args.segment_capacity
    )
    if not via_pipeline:
        store.append(records)
        return store, None
    import itertools

    sim = Simulator()
    pipeline = IngestPipeline(
        sim,
        store,
        policy=args.policy,
        buffer_capacity=args.buffer_capacity,
        flush_delay=args.flush_delay,
    )
    # Replay each record at its own timestamp so the ingest-lag
    # aggregates measure pipeline behaviour (flush batching), not an
    # artifact of arbitrary submit slicing.
    for timestamp, group in itertools.groupby(records, key=lambda r: r.time):
        sim.run_until(max(sim.now, timestamp))
        pipeline.submit(list(group))
    sim.run()
    pipeline.flush_all()
    return store, pipeline


def cmd_store_stats(args: argparse.Namespace) -> int:
    store, pipeline = _ingest_csv_into_store(args, via_pipeline=True)
    print(store.stats().to_text())
    assert pipeline is not None
    stats = pipeline.stats
    print(
        f"pipeline: {stats.flushes} flushes, mean batch {stats.mean_flush_batch:.1f}, "
        f"largest {stats.largest_flush}, policy {pipeline.policy} "
        f"({stats.rejected} rejected, {stats.dropped} dropped, {stats.spilled} spilled)"
    )
    for task in store.aggregates.tasks:
        print(store.aggregates.task(task).to_text())
    return 0


def cmd_store_query(args: argparse.Namespace) -> int:
    store, _ = _ingest_csv_into_store(args, via_pipeline=False)
    bbox = tuple(args.bbox) if args.bbox else None
    batch = store.scan(
        args.task_name, t0=args.t0, t1=args.t1, bbox=bbox, user=args.user
    )
    users = sorted(set(batch.user_names()))
    print(f"query matched {len(batch)} records from {len(users)} users")
    if len(batch):
        print(f"  time span [{batch.time.min():.0f}, {batch.time.max():.0f}]s")
    if args.out:
        import csv

        with open(args.out, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["user", "time", "lat", "lon", "value"])
            writer.writerows(batch.rows())
        print(f"wrote {len(batch)} rows to {args.out}")
    return 0


def cmd_store_compact(args: argparse.Namespace) -> int:
    store, _ = _ingest_csv_into_store(args, via_pipeline=False)
    before = store.stats()
    report = store.compact()
    after = store.stats()
    print(
        f"compacted {report.partitions_compacted} partitions: "
        f"{report.segments_before} -> {report.segments_after} segments "
        f"({report.records} records; store {before.segments} -> {after.segments})"
    )
    return 0


# ----------------------------------------------------------------------
# ``stream`` subcommands (live windowed views, repro.streams)
# ----------------------------------------------------------------------


def _replay_csv_through_streams(args: argparse.Namespace, engine, scraper=None) -> None:
    """Replay a mobility CSV through a pipeline with ``engine`` attached.

    Rows are replayed at their own timestamps (the arrival order a live
    deployment would see), so windows close as simulated event time —
    not file order — advances.  Each same-timestamp group goes through a
    traced admit gate (the Hive gateway pattern): when record tracing is
    on, sampled groups carry a trace id end to end; when it's off the
    gate is a no-op.

    ``scraper`` (a :class:`repro.obs.MetricsScraper`, optional) is
    started on the replay's simulator, bounded past the last record so
    the periodic scrape event cannot keep the drained simulator alive.
    """
    import dataclasses
    import itertools

    from repro import obs
    from repro.apisense.device import SensorRecord
    from repro.simulation import Simulator
    from repro.store import DatasetStore, IngestPipeline

    dataset = MobilityDataset.from_csv(args.input)
    records = sorted(
        (
            SensorRecord(
                device_id=f"csv:{user}",
                user=user,
                task=args.task_name,
                time=record.time,
                values={"gps": record.point},
            )
            for user, record in dataset.all_records()
        ),
        key=lambda r: r.time,
    )
    sim = Simulator()
    engine.bind_clock(sim)  # lag views measure this replay's pipeline delay
    obs.configure(clock=lambda: sim.now)
    if scraper is not None and records:
        horizon = records[-1].time + max(args.window, args.lateness) + args.flush_delay
        scraper.start(sim, until=horizon)
    store = DatasetStore(n_shards=args.shards)
    pipeline = IngestPipeline(sim, store, flush_delay=args.flush_delay)
    engine.attach(pipeline)
    tracer = obs.tracer()
    for timestamp, group in itertools.groupby(records, key=lambda r: r.time):
        sim.run_until(max(sim.now, timestamp))
        batch = list(group)
        trace_id = tracer.new_trace()
        if trace_id is None:
            pipeline.submit(batch)
            continue
        batch = [dataclasses.replace(r, trace_id=trace_id) for r in batch]
        with tracer.span(
            "ingest.admit",
            trace_id=trace_id,
            task=args.task_name,
            batch=len(batch),
        ) as span:
            span.add_records({trace_id: [r.time for r in batch]})
            pipeline.submit(batch)
    sim.run()
    pipeline.flush_all()
    engine.finalize()


def _build_stream_engine(args: argparse.Namespace):
    from repro.streams import StreamEngine, WindowSpec

    slide = args.slide if args.slide is not None else args.window
    engine = StreamEngine(
        pane_seconds=min(slide, args.window),
        allowed_lateness=args.lateness,
        cell_deg=args.cell_deg,
        history=args.history,
    )
    engine.register_view("window", WindowSpec(size=args.window, slide=slide))
    return engine


def _register_stream_queries(args: argparse.Namespace, engine) -> None:
    from repro.streams import (
        ContinuousQuery,
        coverage_stalled,
        percentile_above,
        rate_below,
    )

    if args.rate_below is not None:
        engine.register_query(
            "window", ContinuousQuery("rate-below", rate_below(args.rate_below))
        )
    if args.coverage_stalled is not None:
        engine.register_query(
            "window",
            ContinuousQuery(
                "coverage-stalled", coverage_stalled(args.coverage_stalled)
            ),
        )
    if args.lag_p95_above is not None:
        engine.register_query(
            "window",
            ContinuousQuery(
                "lag-p95-above", percentile_above("lag", 0.95, args.lag_p95_above)
            ),
        )
    if args.value_p95_above is not None:
        engine.register_query(
            "window",
            ContinuousQuery(
                "value-p95-above",
                percentile_above("value", 0.95, args.value_p95_above),
            ),
        )


def cmd_stream_views(args: argparse.Namespace) -> int:
    engine = _build_stream_engine(args)
    _replay_csv_through_streams(args, engine)
    stats = engine.stats
    print(
        f"stream: {stats.records_seen} records into {stats.windows_emitted} windows "
        f"({stats.late_records} late, watermark {engine.watermark:.0f}s)"
    )
    for task in engine.tasks:
        for snapshot in engine.snapshots(task, "window")[-args.last :]:
            print("  " + snapshot.to_text())
    return 0


def cmd_stream_alerts(args: argparse.Namespace) -> int:
    engine = _build_stream_engine(args)
    _register_stream_queries(args, engine)
    _replay_csv_through_streams(args, engine)
    log = engine.alerts
    print(
        f"continuous queries: {engine.stats.queries_evaluated} evaluations, "
        f"{log.total} alerts ({log.dropped} dropped by the bounded log, "
        f"{log.unacknowledged} unacknowledged)"
    )
    for alert in log.alerts():
        print("  " + alert.to_text())
    return 0 if log.total == 0 else 1


def _render_snapshot_push(digest: dict) -> str:
    """One pushed snapshot digest as a dashboard line (mirrors
    :meth:`repro.streams.views.WindowSnapshot.to_text`)."""
    start, end = digest["start"], digest["end"]
    rate = digest["records"] / (end - start) if end > start else 0.0
    top = ", ".join(f"{user}:{count}" for user, count in digest["top_users"])
    return (
        f"[{start:.0f},{end:.0f})s {digest['task']}/{digest['view']}: "
        f"{digest['records']} rec ({rate:.2f}/s) from {digest['n_users']} users, "
        f"{digest['coverage_cells']} cells, value p50/p95 "
        f"{digest['value_p50']:.2f}/{digest['value_p95']:.2f}, "
        f"lag p95 {digest['lag_p95']:.1f}s" + (f", top [{top}]" if top else "")
    )


async def _pump_pushes(client, show) -> None:
    """Let the server's sender and the client's reader run, then render
    every push that arrived (repeats until a pass delivers nothing)."""
    import asyncio

    while True:
        await asyncio.sleep(0)
        pushes = client.drain_pushes()
        if not pushes:
            return
        show(pushes)


def cmd_stream_watch(args: argparse.Namespace) -> int:
    """Watch windows close live — served over the dashboard channel.

    Unlike ``stream views`` (a batch read after the replay), this stands
    up an in-process :class:`repro.server.ReproServer` over the replay
    engine, connects one dashboard client, and prints every
    ``WindowSnapshot`` *as pushed to the subscribed client* — the CLI is
    a real serving-tier consumer, not a callback on the engine.
    """
    import asyncio
    import itertools

    from repro.apisense.device import SensorRecord
    from repro.server import ReproServer, ServerClient
    from repro.simulation import Simulator
    from repro.store import DatasetStore, IngestPipeline

    engine = _build_stream_engine(args)
    _register_stream_queries(args, engine)

    dataset = MobilityDataset.from_csv(args.input)
    records = sorted(
        (
            SensorRecord(
                device_id=f"csv:{user}",
                user=user,
                task=args.task_name,
                time=record.time,
                values={"gps": record.point},
            )
            for user, record in dataset.all_records()
        ),
        key=lambda r: r.time,
    )
    sim = Simulator()
    engine.bind_clock(sim)
    store = DatasetStore(n_shards=args.shards)
    pipeline = IngestPipeline(sim, store, flush_delay=args.flush_delay)
    engine.attach(pipeline)
    server = ReproServer(engine=engine, sim=sim)

    printed = 0
    alerts_pushed = 0

    def show(pushes) -> None:
        nonlocal printed, alerts_pushed
        for push in pushes:
            if push["kind"] == "snapshot":
                if args.limit is None or printed < args.limit:
                    print(_render_snapshot_push(push["snapshot"]))
                    printed += 1
            elif push["kind"] == "alert":
                alerts_pushed += 1

    async def run() -> None:
        client = ServerClient(server.connect_in_process())
        await client.connect()
        await client.subscribe("window", alerts=True)
        for timestamp, group in itertools.groupby(records, key=lambda r: r.time):
            if timestamp > sim.now:
                await server.drive(timestamp, slice_seconds=args.window)
            pipeline.submit(list(group))
            await _pump_pushes(client, show)
        sim.run()
        pipeline.flush_all()
        engine.finalize()
        await server.drain()
        await _pump_pushes(client, show)
        await client.close()

    asyncio.run(run())
    print(
        f"watched {engine.stats.windows_emitted} windows over the server channel "
        f"({engine.stats.records_seen} records, "
        f"{alerts_pushed} alerts pushed)"
    )
    for alert in engine.alerts.alerts():
        print("  ALERT " + alert.to_text())
    return 0


# ----------------------------------------------------------------------
# ``obs`` subcommands (observability: registry / hot paths / traces)
# ----------------------------------------------------------------------


def _run_observed_replay(args: argparse.Namespace, tracing: bool) -> None:
    """Replay ``--input`` through the full record path with obs on."""
    from repro import obs

    # A CLI replay is self-contained: start from a fresh registry so a
    # long-lived process (tests, REPLs) can't leak stale families in.
    obs.reset(metrics=True, tracing=tracing)
    if tracing:
        obs.configure(sample_rate=args.sample_rate)
    engine = _build_stream_engine(args)
    _replay_csv_through_streams(args, engine)


def cmd_obs_dump(args: argparse.Namespace) -> int:
    """Replay a workload and dump the registry (Prometheus text or JSON)."""
    import json

    from repro import obs

    _run_observed_replay(args, tracing=False)
    if args.json:
        rows = [sample.to_dict() for sample in obs.metrics_registry().exposition()]
        print(json.dumps(rows, indent=2))
    else:
        print(obs.render_prometheus(), end="")
    return 0


def cmd_obs_top(args: argparse.Namespace) -> int:
    """Replay a workload and print the hot-path table (hottest first)."""
    import json

    from repro import obs

    _run_observed_replay(args, tracing=False)
    rows = obs.hot_paths()
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "stage": row.stage,
                        "count": row.count,
                        "total_seconds": row.total_seconds,
                        "p50": row.p50,
                        "p99": row.p99,
                    }
                    for row in rows[: args.limit]
                ],
                indent=2,
            )
        )
        return 0
    for row in rows[: args.limit]:
        print(row.to_text())
    if len(rows) > args.limit:
        print(f"... {len(rows) - args.limit} more stages (raise --limit)")
    return 0


def cmd_obs_trace(args: argparse.Namespace) -> int:
    """Replay a workload with record tracing and print trace trees."""
    from repro import obs
    from repro.obs import record_paths, trace_tree

    _run_observed_replay(args, tracing=True)
    log = obs.tracer().log
    ids = log.trace_ids()
    print(
        f"trace log: {log.total} spans ({log.dropped} evicted), "
        f"{len(ids)} traces, sample rate {args.sample_rate:g}"
    )
    paths = record_paths(log)
    complete = sum(
        1
        for stages in paths.values()
        if all(
            len(stages.get(s, ())) == 1
            for s in ("ingest.flush", "store.append", "stream.window")
        )
    )
    print(
        f"record paths: {len(paths)} traced records, "
        f"{complete} with exactly-once pipeline -> store -> window delivery"
    )
    wanted = [args.trace_id] if args.trace_id is not None else ids[: args.limit]
    for trace_id in wanted:
        print(f"trace {trace_id}:")
        for depth, span in trace_tree(log, trace_id):
            print("  " + "  " * depth + span.to_text())
    return 0


def _replay_with_scraper(args: argparse.Namespace):
    """Replay ``--input`` with a MetricsScraper sampling the registry."""
    from repro import obs

    obs.reset(metrics=True, tracing=False)
    scraper = obs.MetricsScraper(cadence=args.cadence, capacity=args.retain)
    engine = _build_stream_engine(args)
    _replay_csv_through_streams(args, engine, scraper=scraper)
    return scraper


def _default_slos(args: argparse.Namespace):
    """The CLI's stock SLO set over the replay workload's instruments."""
    from repro import obs

    rules = (
        obs.BurnRateRule(window=args.slo_long_window, factor=2.0),
        obs.BurnRateRule(window=args.slo_short_window, factor=6.0),
    )
    # The replay keeps scraping through its drain tail (one window of
    # lateness with no new records), so a fixed staleness bound would
    # flag every bounded replay as stale at the end; scale with it.
    max_staleness = args.slo_max_staleness
    if max_staleness is None:
        max_staleness = (
            2.0 * max(args.window, args.lateness) + args.flush_delay
        )
    return [
        obs.SLODefinition(
            name="ingest-availability",
            objective=args.slo_objective,
            probe=obs.availability_sli(
                "repro_pipeline_records_accepted_total",
                "repro_pipeline_records_submitted_total",
            ),
            rules=rules,
            description="records admitted / records offered",
        ),
        obs.SLODefinition(
            name="flush-latency",
            objective=args.slo_objective,
            probe=obs.latency_sli(
                "repro_pipeline_flush_seconds", args.slo_flush_threshold
            ),
            rules=rules,
            description="shard flushes under the latency threshold",
        ),
        obs.SLODefinition(
            name="view-freshness",
            objective=args.slo_objective,
            probe=obs.freshness_sli(
                "repro_stream_watermark_seconds", max_staleness
            ),
            rules=rules,
            description="stream watermark within max staleness",
        ),
    ]


def cmd_obs_history(args: argparse.Namespace) -> int:
    """Replay a workload while scraping, then query the history."""
    scraper = _replay_with_scraper(args)
    store = scraper.store
    stats = scraper.stats
    print(
        f"scraped {stats.scrapes} frames ({stats.samples} samples, "
        f"{store.n_series} series, {store.frames_evicted} frames evicted)"
    )
    if not args.name:
        from repro.obs.registry import _render_labels

        for key in sorted(store.keys()):
            series = store.series(key[0], dict(key[1]))
            latest = series.latest()
            tail = f" = {latest[1]:g} @ t={latest[0]:.0f}s" if latest else ""
            print(f"  {key[0]}{_render_labels(key[1])}{tail}")
        return 0
    window = args.query_window
    print(
        f"{args.name}: delta {store.delta(args.name, window=window):g}, "
        f"rate {store.rate(args.name, window=window):g}/s over "
        + ("the full history" if window is None else f"the last {window:g}s")
    )
    for series in store.select(args.name):
        points = list(zip(series.t, series.values))[-args.last :]
        rendered = ", ".join(f"({t:.0f}s, {v:g})" for t, v in points)
        print(f"  {series.series}: {rendered}")
    return 0


def cmd_obs_slo(args: argparse.Namespace) -> int:
    """Replay a workload scraping + evaluating the stock SLO set."""
    from repro import obs

    obs.reset(metrics=True, tracing=False)
    scraper = obs.MetricsScraper(cadence=args.cadence, capacity=args.retain)
    tracker = obs.SLOTracker(scraper.store, _default_slos(args))
    scraper.on_frame(lambda frame: tracker.evaluate(frame.t))
    engine = _build_stream_engine(args)
    _replay_csv_through_streams(args, engine, scraper=scraper)
    print(
        f"evaluated {len(tracker.definitions)} SLOs over "
        f"{scraper.stats.scrapes} scrape frames:"
    )
    for status in tracker.statuses():
        print(
            f"  {status.name}: {status.state} "
            f"(objective {status.objective:.3%}, "
            f"worst burn {status.worst_burn():.1f}x, "
            f"{status.transitions} transitions)"
        )
    for alert in tracker.alerts.alerts():
        print("  ALERT " + alert.to_text())
    return 0 if not tracker.burning else 1


def cmd_obs_watch(args: argparse.Namespace) -> int:
    """Watch scrape frames + SLO transitions live over the server channel.

    Mirrors ``stream watch``: stands up an in-process server over the
    replay, subscribes one client to the ``obs watch`` channel, and
    prints every pushed frame/alert — a real serving-tier consumer.
    """
    import asyncio
    import itertools

    from repro import obs
    from repro.apisense.device import SensorRecord
    from repro.server import ReproServer, ServerClient
    from repro.simulation import Simulator
    from repro.store import DatasetStore, IngestPipeline

    obs.reset(metrics=True, tracing=False)
    scraper = obs.MetricsScraper(cadence=args.cadence, capacity=args.retain)
    engine = _build_stream_engine(args)

    dataset = MobilityDataset.from_csv(args.input)
    records = sorted(
        (
            SensorRecord(
                device_id=f"csv:{user}",
                user=user,
                task=args.task_name,
                time=record.time,
                values={"gps": record.point},
            )
            for user, record in dataset.all_records()
        ),
        key=lambda r: r.time,
    )
    sim = Simulator()
    engine.bind_clock(sim)
    obs.configure(clock=lambda: sim.now)
    store = DatasetStore(n_shards=args.shards)
    pipeline = IngestPipeline(sim, store, flush_delay=args.flush_delay)
    engine.attach(pipeline)
    server = ReproServer(
        engine=engine, sim=sim, scraper=scraper, slos=_default_slos(args)
    )
    if records:
        horizon = (
            records[-1].time + max(args.window, args.lateness) + args.flush_delay
        )
        scraper.start(sim, until=horizon)

    frames_shown = 0
    alerts_shown = 0

    def show(pushes) -> None:
        nonlocal frames_shown, alerts_shown
        for push in pushes:
            if push["kind"] == "obs_frame":
                frame = push["frame"]
                frames_shown += 1
                if args.limit is None or frames_shown <= args.limit:
                    shown = sorted(frame["samples"].items())[: args.series_limit]
                    print(
                        f"frame @ t={frame['t']:.0f}s "
                        f"({frame['n_series']} series):"
                    )
                    for name, value in shown:
                        print(f"  {name} = {value:g}")
            elif push["kind"] == "obs_alert":
                alerts_shown += 1
                alert = push["alert"]
                print(
                    f"SLO {alert['slo']} -> {alert['state']} "
                    f"@ t={alert['time']:.0f}s: {alert['message']}"
                )

    async def run() -> None:
        client = ServerClient(server.connect_in_process())
        await client.connect()
        await client.watch_obs(names=args.names or None)
        for timestamp, group in itertools.groupby(records, key=lambda r: r.time):
            if timestamp > sim.now:
                await server.drive(timestamp, slice_seconds=args.window)
            pipeline.submit(list(group))
            await _pump_pushes(client, show)
        sim.run()
        pipeline.flush_all()
        engine.finalize()
        await server.drain()
        await _pump_pushes(client, show)
        await client.close()

    asyncio.run(run())
    print(
        f"watched {frames_shown} scrape frames and {alerts_shown} SLO "
        f"transitions over the server channel "
        f"({scraper.stats.scrapes} scrapes, {scraper.store.n_series} series)"
    )
    return 0


def cmd_obs_bench_diff(args: argparse.Namespace) -> int:
    """Compare tracked BENCH_*.json between the working tree and a ref."""
    from repro.obs.benchdiff import bench_diff, render_diff

    diffs, missing = bench_diff(base=args.base, threshold=args.threshold)
    print(render_diff(diffs, missing, base=args.base, threshold=args.threshold))
    regressed = [d for d in diffs if d.regressed]
    return 1 if regressed else 0


# ----------------------------------------------------------------------
# ``serve`` (the asyncio serving tier, repro.server)
# ----------------------------------------------------------------------


def cmd_serve(args: argparse.Namespace) -> int:
    """Stand up the serving tier over a simulated campaign scenario.

    Builds a campaign (population, devices, one sensing task), wraps its
    Hive in a :class:`repro.server.ReproServer`, connects ``--clients``
    in-process dashboard sessions, and drives the simulated days with the
    event loop interleaved — every client receives the live window
    pushes while the campaign collects.  Ends with the platform health
    report (including the serving tier's counters) and the per-client
    push accounting.
    """
    import asyncio

    from repro.apisense import Campaign, CampaignConfig, SensingTask
    from repro.apisense.monitoring import snapshot
    from repro.server import MetricsMiddleware, ReproServer, ServerClient
    from repro.streams import WindowSpec
    from repro.units import DAY

    population = MobilityGenerator(
        GeneratorConfig(n_users=args.users, n_days=args.days)
    ).generate(seed=args.seed)
    campaign = Campaign(
        population,
        config=CampaignConfig(n_days=float(args.days), seed=args.seed),
    )
    campaign.deploy(
        SensingTask(
            name="served-campaign",
            sensors=("gps", "battery"),
            sampling_period=args.period,
            upload_period=1800.0,
            end=args.days * DAY,
        )
    )
    hive, sim = campaign.hive, campaign.sim
    hive.streams.register_view("window", WindowSpec.tumbling(args.window))
    metrics = MetricsMiddleware()
    server = ReproServer(
        hive, middlewares=[metrics], queue_capacity=args.queue_capacity
    )
    received = [0] * args.clients

    async def run() -> None:
        clients = []
        for _ in range(args.clients):
            client = ServerClient(server.connect_in_process())
            await client.connect()
            await client.subscribe("window", alerts=True)
            clients.append(client)
        day = 1.0
        while day <= args.days + 1e-9:
            await server.drive(day * DAY, slice_seconds=args.window)
            hive.end_of_day()
            campaign._daily_participation()
            day += 1.0
        await server.drive(
            args.days * DAY + 2.0 * campaign.config.delivery_latency + 1.0,
            slice_seconds=args.window,
        )
        hive.pipeline.flush_all()
        hive.streams.finalize()
        await server.drain()
        for index, client in enumerate(clients):
            await _pump_pushes(client, lambda pushes, i=index: received.__setitem__(
                i, received[i] + len(pushes)
            ))
            await client.close()

    asyncio.run(run())
    print(snapshot(hive, sim.now, server=server).to_text())
    print(
        f"served {args.clients} dashboard clients: "
        f"pushes received {received}, "
        f"{server.pushes_dropped} dropped (slow consumers)"
    )
    return 0


# ----------------------------------------------------------------------
# ``federation`` subcommands (multi-hive scale-out, repro.federation)
# ----------------------------------------------------------------------


def cmd_federation_run(args: argparse.Namespace) -> int:
    """Run a federated campaign: one crowd sharded across N Hives."""
    from repro.apisense.battery import Battery, BatteryModel
    from repro.apisense.device import MobileDevice
    from repro.apisense.hive import Hive
    from repro.apisense.honeycomb import Honeycomb
    from repro.apisense.sensors import default_sensor_suite
    from repro.apisense.tasks import SensingTask
    from repro.apisense.transport import Transport
    from repro.federation import FederatedDataset, FederationRouter, federation_snapshot
    from repro.mobility import GeneratorConfig, MobilityGenerator
    from repro.simulation import Simulator
    from repro.units import DAY, HOUR

    import numpy as np

    population = MobilityGenerator(
        GeneratorConfig(n_users=args.users, n_days=args.days, sampling_period=300.0)
    ).generate(seed=args.seed)
    sim = Simulator()
    router = FederationRouter(
        sim,
        control_transport=Transport(
            latency_mean=0.05, latency_jitter=0.01, loss=args.control_loss, seed=args.seed
        ),
    )
    for index in range(args.hives):
        router.join(f"hive-{index}", Hive(sim, seed=args.seed + index))

    rng = np.random.default_rng(args.seed)
    suite = default_sensor_suite(population.city, rng)
    for index, trajectory in enumerate(population.dataset):
        router.register_device(
            MobileDevice(
                device_id=f"device-{index:04d}",
                user=trajectory.user,
                trajectory=trajectory,
                sensors=suite,
                battery=Battery(BatteryModel(), level=float(rng.uniform(0.5, 1.0))),
                seed=args.seed * 100_003 + index,
            )
        )

    if args.fail_hive:
        router.schedule_failure(
            args.fail_hive,
            at=args.fail_at_hours * HOUR,
            duration=args.fail_for_hours * HOUR if args.fail_for_hours else None,
        )

    owner = Honeycomb("federation-cli", router.hive("hive-0"))
    task = SensingTask(
        name="federated-campaign",
        sensors=("gps", "battery"),
        sampling_period=args.period,
        upload_period=1800.0,
        end=args.days * DAY,
    )
    receipt = router.syndicate(task, owner, home="hive-0")
    print(
        f"syndicated {receipt.task!r}: {receipt.home_offers} home offers, "
        f"{receipt.announcements} partner announcements"
    )

    sim.run_until(args.days * DAY + HOUR)
    for name in router.member_names:
        router.hive(name).pipeline.flush_all()

    print()
    print(federation_snapshot(router, sim.now).to_text())
    print()
    federated = FederatedDataset.from_router(router)
    print(federated.aggregate(task.name).to_text())
    return 0


def cmd_federation_stats(args: argparse.Namespace) -> int:
    """Placement analysis: balance and join-stability of the ring."""
    from repro.federation import ConsistentHashRing

    ring = ConsistentHashRing(replicas=args.replicas)
    for index in range(args.hives):
        ring.add(f"hive-{index}")
    keys = [f"device-{i:06d}" for i in range(args.devices)]
    spread = ring.spread(keys)
    mean = args.devices / args.hives
    print(
        f"ring: {args.hives} hives x {args.replicas} vnodes, "
        f"{args.devices} devices, mean {mean:.0f}/hive"
    )
    for name in sorted(spread):
        count = spread[name]
        print(f"  {name}: {count} devices ({count / mean:.2f}x mean)")

    grown = ConsistentHashRing(replicas=args.replicas)
    for index in range(args.hives + 1):
        grown.add(f"hive-{index}")
    diff = ring.diff(keys, grown)
    print(
        f"adding hive-{args.hives} re-homes {diff.n_moved} devices "
        f"({diff.n_moved / args.devices:.1%}; ideal 1/{args.hives + 1} = "
        f"{1 / (args.hives + 1):.1%}), all onto the new member: "
        f"{all(new == f'hive-{args.hives}' for _, new in diff.moved.values())}"
    )
    return 0


def cmd_federation_query(args: argparse.Namespace) -> int:
    """Shard a CSV across member stores via the ring, query federated."""
    from repro.apisense.device import SensorRecord
    from repro.federation import ConsistentHashRing, FederatedDataset
    from repro.store import DatasetStore

    dataset = MobilityDataset.from_csv(args.input)
    ring = ConsistentHashRing()
    stores = {}
    for index in range(args.hives):
        name = f"hive-{index}"
        ring.add(name)
        stores[name] = DatasetStore(
            n_shards=args.shards, segment_capacity=args.segment_capacity
        )
    by_member: dict[str, list[SensorRecord]] = {name: [] for name in stores}
    for user, record in dataset.all_records():
        by_member[ring.place(f"csv:{user}")].append(
            SensorRecord(
                device_id=f"csv:{user}",
                user=user,
                task=args.task_name,
                time=record.time,
                values={"gps": record.point},
            )
        )
    for name, records in by_member.items():
        stores[name].append(sorted(records, key=lambda r: r.time))

    federated = FederatedDataset(stores)
    bbox = tuple(args.bbox) if args.bbox else None
    batch = federated.scan(
        args.task_name, t0=args.t0, t1=args.t1, bbox=bbox, user=args.user
    )
    users = sorted(set(batch.user_names()))
    print(
        f"federated query over {args.hives} hives matched {len(batch)} records "
        f"from {len(users)} users"
    )
    for name in federated.member_names:
        print(f"  {name}: {stores[name].n_records} records stored")
    if len(batch):
        print(f"  time span [{batch.time.min():.0f}, {batch.time.max():.0f}]s")

    if args.secure:
        import random

        import numpy as np

        from repro.privacy.secure_aggregation import SecureAggregationPolicy

        policy = SecureAggregationPolicy(
            protocol=args.secure_protocol, key_bits=args.key_bits
        )
        result = federated.secure_aggregate(
            args.task_name, policy=policy, rng=random.Random(args.task_name)
        )
        print()
        print(result.to_text())
        full = federated.scan(args.task_name)
        finite = full.value[np.isfinite(full.value)]
        tolerance = 0.5 * result.contributors / 1000.0 + 1e-9
        ok = (
            result.records == len(full)
            and result.value_count == len(finite)
            and abs(result.value_sum - float(finite.sum())) <= tolerance
        )
        print(
            f"  plaintext cross-check: {len(full)} records, value sum "
            f"{float(finite.sum()):.3f} -> {'match' if ok else 'MISMATCH'} "
            "(no aggregator saw per-user data)"
        )
        if not ok:
            return 1
    if args.out:
        import csv

        with open(args.out, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["user", "time", "lat", "lon", "value"])
            writer.writerows(batch.rows())
        print(f"wrote {len(batch)} rows to {args.out}")
    return 0


# ----------------------------------------------------------------------
# ``privacy`` subcommands (secure aggregation, repro.privacy)
# ----------------------------------------------------------------------


def cmd_privacy_demo(args: argparse.Namespace) -> int:
    """Run one secure-aggregation session end to end, with dropouts."""
    import random

    from repro.privacy.secure_aggregation import (
        ParticipantProfile,
        SecureAggregationPolicy,
        SecureAggregationSession,
    )
    from repro.simulation import FaultInjector, Simulator

    rng = random.Random(args.seed)
    profiles = [
        ParticipantProfile(f"device-{i:03d}", battery=rng.uniform(0.05, 1.0))
        for i in range(args.devices)
    ]
    readings = {p.participant_id: [round(rng.uniform(-30.0, -90.0), 3)] for p in profiles}
    policy = SecureAggregationPolicy(
        protocol=args.protocol,
        key_bits=args.key_bits,
        paillier_battery_floor=args.battery_floor,
        dropout_threshold=0.5,
    )
    sim = Simulator()
    faults = FaultInjector(sim)
    session = SecureAggregationSession(
        "privacy-demo",
        profiles,
        components=("signal_dbm",),
        policy=policy,
        rng=random.Random(args.seed + 1),
        faults=faults,
    )
    session.setup()
    print(
        f"session over {args.devices} devices: "
        f"{len(session.paillier_cohort)} paillier / "
        f"{len(session.masking_cohort)} masking"
        + (f" (Shamir threshold {session.threshold})" if session.threshold else "")
    )
    victims = rng.sample(sorted(readings), k=min(args.dropouts, args.devices - 1))
    for victim in victims:
        faults.schedule_outage(f"device:{victim}", at=60.0)
    sim.run()
    if victims:
        print(f"killed mid-session: {', '.join(victims)}")

    result = session.run(readings)
    expected = sum(v[0] for pid, v in readings.items() if pid not in result.dropped)
    secure = result.sum("signal_dbm")
    print(
        f"secure sum over {result.contributors} survivors: {secure:.3f} "
        f"(plaintext {expected:.3f}, |error| {abs(secure - expected):.2e})"
    )
    note = "the aggregator handled only ciphertexts and masked integers"
    if session.masking_cohort and any(
        pid in session.masking_cohort for pid in result.dropped
    ):
        note += "; dropped devices' masks were cancelled via Shamir shares"
    print(note)
    return 0 if abs(secure - expected) < 0.5 * max(1, result.contributors) / 1000.0 + 1e-9 else 1


# ----------------------------------------------------------------------
# ``task`` subcommands (task lifecycle: vet / describe a spec)
# ----------------------------------------------------------------------


def _load_task_from_spec(spec: str):
    """Load a :class:`SensingTask` from ``path.py`` or ``path.py:ATTR``.

    Without an explicit attribute the loader looks for ``TASK`` (a task
    instance) then ``build_task`` (a zero-argument factory) — the same
    contract the examples follow.  A spec requesting custom sensors must
    register them first (build the :class:`~repro.apisense.sensors.
    SensorSuite` providing them, or call ``sensor_registry.register``)
    — validation consults the process-wide registry.
    """
    import importlib.util
    from pathlib import Path

    from repro.apisense.tasks import SensingTask

    path, _, attribute = spec.partition(":")
    if not Path(path).exists():
        raise SystemExit(f"task spec not found: {path}")
    module_spec = importlib.util.spec_from_file_location("_task_spec", path)
    if module_spec is None or module_spec.loader is None:
        raise SystemExit(f"cannot import task spec: {path}")
    module = importlib.util.module_from_spec(module_spec)
    module_spec.loader.exec_module(module)

    candidates = [attribute] if attribute else ["TASK", "build_task"]
    for name in candidates:
        value = getattr(module, name, None)
        if value is None:
            continue
        if callable(value) and not isinstance(value, SensingTask):
            value = value()
        if isinstance(value, SensingTask):
            return value
        raise SystemExit(f"{path}:{name} is not a SensingTask (got {type(value).__name__})")
    if attribute:
        raise SystemExit(f"{path} has no attribute {attribute!r}")
    raise SystemExit(
        f"{path} exposes neither TASK nor build_task(); "
        "point at the right attribute with --spec path.py:NAME"
    )


def cmd_task_vet(args: argparse.Namespace) -> int:
    from repro.apisense.vetting import dry_run_task

    task = _load_task_from_spec(args.spec)
    report = dry_run_task(task, n_samples=args.samples, seed=args.seed)
    print(report.to_text())
    return 0 if report.acceptable() else 1


def cmd_task_describe(args: argparse.Namespace) -> int:
    from repro.apisense.vetting import describe_task

    task = _load_task_from_spec(args.spec)
    print(describe_task(task))
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Privacy-preserving crowd-sensing toolkit (APISENSE + PRIVAPI)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="synthesize a mobility dataset")
    generate.add_argument("--users", type=int, default=20)
    generate.add_argument("--days", type=int, default=7)
    generate.add_argument("--period", type=float, default=120.0, help="GPS period (s)")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True)
    generate.set_defaults(handler=cmd_generate)

    protect = commands.add_parser("protect", help="apply a privacy mechanism")
    protect.add_argument("--input", required=True)
    protect.add_argument(
        "--mechanism",
        default="speed-smoothing",
        choices=[
            "identity",
            "speed-smoothing",
            "geo-indistinguishability",
            "spatial-cloaking",
            "temporal-downsampling",
        ],
    )
    protect.add_argument("--epsilon-m", type=float, default=100.0, help="smoothing step")
    protect.add_argument("--epsilon", type=float, default=0.01, help="geo-ind budget (1/m)")
    protect.add_argument("--cell-m", type=float, default=400.0, help="cloaking cell")
    protect.add_argument("--window-s", type=float, default=900.0, help="downsampling window")
    protect.add_argument("--seed", type=int, default=0)
    protect.add_argument("--out", required=True)
    protect.set_defaults(handler=cmd_protect)

    attack = commands.add_parser("attack", help="run the POI / linkage attacks")
    attack.add_argument("--input", required=True)
    attack.add_argument("--background", help="raw CSV for the linkage attack")
    attack.add_argument("--denoise-window", type=int, default=9)
    attack.set_defaults(handler=cmd_attack)

    evaluate = commands.add_parser("evaluate", help="utility of protected vs raw")
    evaluate.add_argument("--raw", required=True)
    evaluate.add_argument("--protected", required=True)
    evaluate.add_argument("--cell-m", type=float, default=500.0)
    evaluate.add_argument("--top-k", type=int, default=15)
    evaluate.set_defaults(handler=cmd_evaluate)

    campaign = commands.add_parser("campaign", help="run a simulated campaign")
    campaign.add_argument("--users", type=int, default=20)
    campaign.add_argument("--days", type=int, default=3)
    campaign.add_argument("--period", type=float, default=300.0)
    campaign.add_argument(
        "--incentive",
        default="win-win",
        choices=["none", "feedback", "ranking", "reward", "win-win"],
    )
    campaign.add_argument("--loss", type=float, default=0.0, help="uplink loss prob")
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--out", help="write collected GPS data as CSV")
    campaign.set_defaults(handler=cmd_campaign)

    stats = commands.add_parser("stats", help="dataset summary statistics")
    stats.add_argument("--input", required=True)
    stats.add_argument("--cell-m", type=float, default=500.0)
    stats.add_argument("--geojson", help="also export trajectories as GeoJSON")
    stats.set_defaults(handler=cmd_stats)

    publish = commands.add_parser("publish", help="full PRIVAPI publication")
    publish.add_argument("--input", required=True)
    publish.add_argument("--objective", default="crowded-places", choices=sorted(OBJECTIVES))
    publish.add_argument("--max-poi-recall", type=float, default=0.2)
    publish.add_argument("--lenient", action="store_true", help="fall back when bar unmet")
    publish.add_argument("--seed", type=int, default=0)
    publish.add_argument("--out", required=True)
    publish.set_defaults(handler=cmd_publish)

    store = commands.add_parser(
        "store", help="columnar dataset store operations (repro.store)"
    )
    store_commands = store.add_subparsers(
        dest="store_command",
        title="store subcommands",
        required=True,
    )

    def add_store_common(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument("--input", required=True, help="mobility CSV to ingest")
        subparser.add_argument("--task-name", default="ingested", help="task label")
        subparser.add_argument("--shards", type=int, default=4)
        subparser.add_argument("--segment-capacity", type=int, default=4096)

    store_stats = store_commands.add_parser(
        "stats", help="ingest through the pipeline and report store health"
    )
    add_store_common(store_stats)
    store_stats.add_argument(
        "--policy", default="spill", choices=["drop-oldest", "reject", "spill"]
    )
    store_stats.add_argument("--buffer-capacity", type=int, default=4096)
    store_stats.add_argument("--flush-delay", type=float, default=30.0)
    store_stats.set_defaults(handler=cmd_store_stats)

    store_query = store_commands.add_parser(
        "query", help="time-range / bbox / per-user scan"
    )
    add_store_common(store_query)
    store_query.add_argument("--t0", type=float, help="inclusive start time (s)")
    store_query.add_argument("--t1", type=float, help="exclusive end time (s)")
    store_query.add_argument(
        "--bbox",
        type=float,
        nargs=4,
        metavar=("SOUTH", "WEST", "NORTH", "EAST"),
        help="spatial filter in decimal degrees",
    )
    store_query.add_argument("--user", help="restrict to one user (single-shard scan)")
    store_query.add_argument("--out", help="write matching rows as CSV")
    store_query.set_defaults(handler=cmd_store_query)

    store_compact = store_commands.add_parser(
        "compact", help="merge sealed segments into time-sorted runs"
    )
    add_store_common(store_compact)
    store_compact.set_defaults(handler=cmd_store_compact)

    stream = commands.add_parser(
        "stream", help="live windowed views + continuous queries (repro.streams)"
    )
    stream_commands = stream.add_subparsers(
        dest="stream_command",
        title="stream subcommands",
        required=True,
    )

    def add_stream_common(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument("--input", required=True, help="mobility CSV to replay")
        subparser.add_argument("--task-name", default="ingested", help="task label")
        subparser.add_argument("--shards", type=int, default=4)
        subparser.add_argument("--flush-delay", type=float, default=30.0)
        subparser.add_argument(
            "--window", type=float, default=3600.0, help="window size (s)"
        )
        subparser.add_argument(
            "--slide",
            type=float,
            help="window slide (s); defaults to --window (tumbling)",
        )
        subparser.add_argument(
            "--lateness", type=float, default=1800.0, help="allowed event lateness (s)"
        )
        subparser.add_argument(
            "--cell-deg", type=float, default=0.005, help="coverage cell size (deg)"
        )
        subparser.add_argument(
            "--history", type=int, default=256, help="windows retained per view"
        )

    def add_stream_queries(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--rate-below", type=float, help="alert when window rate < rec/s"
        )
        subparser.add_argument(
            "--coverage-stalled",
            type=int,
            help="alert when N consecutive windows add no new coverage cell",
        )
        subparser.add_argument(
            "--lag-p95-above", type=float, help="alert when ingest-lag p95 > seconds"
        )
        subparser.add_argument(
            "--value-p95-above", type=float, help="alert when value p95 > threshold"
        )

    stream_views = stream_commands.add_parser(
        "views", help="replay a CSV and print the closed windowed views"
    )
    add_stream_common(stream_views)
    stream_views.add_argument(
        "--last", type=int, default=12, help="windows shown per task"
    )
    stream_views.set_defaults(handler=cmd_stream_views)

    stream_alerts = stream_commands.add_parser(
        "alerts", help="replay with continuous queries; exit 1 if any fired"
    )
    add_stream_common(stream_alerts)
    add_stream_queries(stream_alerts)
    stream_alerts.set_defaults(handler=cmd_stream_alerts)

    stream_watch = stream_commands.add_parser(
        "watch", help="print every window as it closes (live dashboard)"
    )
    add_stream_common(stream_watch)
    add_stream_queries(stream_watch)
    stream_watch.add_argument("--limit", type=int, help="stop printing after N windows")
    stream_watch.set_defaults(handler=cmd_stream_watch)

    obs = commands.add_parser(
        "obs",
        help="observability: metrics dump / hot-path table / record traces "
        "(repro.obs)",
    )
    obs_commands = obs.add_subparsers(
        dest="obs_command",
        title="obs subcommands",
        required=True,
    )

    obs_dump = obs_commands.add_parser(
        "dump",
        help="replay a CSV through the record path, dump the metrics "
        "registry in the Prometheus text format",
    )
    add_stream_common(obs_dump)
    obs_dump.add_argument(
        "--sample-rate", type=float, default=1.0, help=argparse.SUPPRESS
    )
    obs_dump.add_argument(
        "--json",
        action="store_true",
        help="emit the exposition as JSON rows instead of Prometheus text",
    )
    obs_dump.set_defaults(handler=cmd_obs_dump)

    obs_top = obs_commands.add_parser(
        "top", help="replay a CSV and print the hot-path latency table"
    )
    add_stream_common(obs_top)
    obs_top.add_argument(
        "--limit", type=int, default=10, help="stages shown (hottest first)"
    )
    obs_top.add_argument(
        "--sample-rate", type=float, default=1.0, help=argparse.SUPPRESS
    )
    obs_top.add_argument(
        "--json",
        action="store_true",
        help="emit the hot-path table as JSON rows",
    )
    obs_top.set_defaults(handler=cmd_obs_top)

    obs_trace = obs_commands.add_parser(
        "trace",
        help="replay a CSV with record tracing on, print end-to-end traces",
    )
    add_stream_common(obs_trace)
    obs_trace.add_argument(
        "--sample-rate",
        type=float,
        default=0.1,
        help="fraction of upload groups traced (systematic sampling)",
    )
    obs_trace.add_argument("--trace-id", type=int, help="show one trace only")
    obs_trace.add_argument(
        "--limit", type=int, default=3, help="trace trees printed"
    )
    obs_trace.set_defaults(handler=cmd_obs_trace)

    def add_scrape_common(subparser: argparse.ArgumentParser) -> None:
        add_stream_common(subparser)
        subparser.add_argument(
            "--cadence",
            type=float,
            default=60.0,
            help="scrape cadence in simulated seconds",
        )
        subparser.add_argument(
            "--retain", type=int, default=512, help="scrape frames retained"
        )

    def add_slo_common(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--slo-objective",
            type=float,
            default=0.99,
            help="good-ratio target for the stock SLO set",
        )
        subparser.add_argument(
            "--slo-long-window", type=float, default=3600.0, help=argparse.SUPPRESS
        )
        subparser.add_argument(
            "--slo-short-window", type=float, default=600.0, help=argparse.SUPPRESS
        )
        subparser.add_argument(
            "--slo-flush-threshold",
            type=float,
            default=0.025,
            help="flush-latency SLI threshold (wall seconds)",
        )
        subparser.add_argument(
            "--slo-max-staleness",
            type=float,
            default=None,
            help="freshness SLI: max watermark age (simulated seconds; "
            "default: twice the replay's drain horizon)",
        )

    obs_history = obs_commands.add_parser(
        "history",
        help="replay a CSV while scraping the registry on a sim-clock "
        "cadence, then query the metrics history",
    )
    add_scrape_common(obs_history)
    obs_history.add_argument(
        "--name", help="series family to query (omit to list everything)"
    )
    obs_history.add_argument(
        "--query-window",
        type=float,
        help="lookback for delta/rate (simulated seconds; default: all)",
    )
    obs_history.add_argument(
        "--last", type=int, default=5, help="trailing points printed per series"
    )
    obs_history.add_argument(
        "--sample-rate", type=float, default=1.0, help=argparse.SUPPRESS
    )
    obs_history.set_defaults(handler=cmd_obs_history)

    obs_slo = obs_commands.add_parser(
        "slo",
        help="replay a CSV evaluating the stock SLO set (availability, "
        "flush latency, view freshness) with multi-window burn rates",
    )
    add_scrape_common(obs_slo)
    add_slo_common(obs_slo)
    obs_slo.add_argument(
        "--sample-rate", type=float, default=1.0, help=argparse.SUPPRESS
    )
    obs_slo.set_defaults(handler=cmd_obs_slo)

    obs_watch = obs_commands.add_parser(
        "watch",
        help="watch scrape frames + SLO transitions live over the "
        "serving tier's obs watch channel",
    )
    add_scrape_common(obs_watch)
    add_slo_common(obs_watch)
    obs_watch.add_argument(
        "--names",
        nargs="*",
        help="series-name prefixes pushed in each frame (default: all)",
    )
    obs_watch.add_argument(
        "--limit", type=int, help="frames rendered in full (default: all)"
    )
    obs_watch.add_argument(
        "--series-limit",
        type=int,
        default=8,
        help="series lines printed per rendered frame",
    )
    obs_watch.add_argument(
        "--sample-rate", type=float, default=1.0, help=argparse.SUPPRESS
    )
    obs_watch.set_defaults(handler=cmd_obs_watch)

    obs_bench_diff = obs_commands.add_parser(
        "bench-diff",
        help="compare tracked BENCH_*.json (working tree vs a git ref) "
        "and flag per-metric regressions",
    )
    obs_bench_diff.add_argument(
        "--base", default="HEAD", help="git ref to compare against"
    )
    obs_bench_diff.add_argument(
        "--threshold",
        type=float,
        default=5.0,
        help="regression threshold in percent",
    )
    obs_bench_diff.set_defaults(handler=cmd_obs_bench_diff)

    serve = commands.add_parser(
        "serve",
        help="stand up the asyncio serving tier over a simulated campaign "
        "(repro.server)",
    )
    serve.add_argument("--users", type=int, default=20)
    serve.add_argument("--days", type=int, default=2)
    serve.add_argument("--period", type=float, default=600.0, help="sampling (s)")
    serve.add_argument(
        "--window", type=float, default=3600.0, help="dashboard window size (s)"
    )
    serve.add_argument(
        "--clients", type=int, default=3, help="in-process dashboard sessions"
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=256, help="per-session push queue bound"
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.set_defaults(handler=cmd_serve)

    federation = commands.add_parser(
        "federation", help="multi-hive scale-out operations (repro.federation)"
    )
    federation_commands = federation.add_subparsers(
        dest="federation_command",
        title="federation subcommands",
        required=True,
    )

    federation_run = federation_commands.add_parser(
        "run", help="run a federated campaign sharded across N hives"
    )
    federation_run.add_argument("--users", type=int, default=24)
    federation_run.add_argument("--days", type=int, default=1)
    federation_run.add_argument("--hives", type=int, default=3)
    federation_run.add_argument("--period", type=float, default=600.0)
    federation_run.add_argument(
        "--control-loss", type=float, default=0.0, help="inter-hive gossip loss prob"
    )
    federation_run.add_argument("--fail-hive", help="inject a failure of this member")
    federation_run.add_argument(
        "--fail-at-hours", type=float, default=6.0, help="outage start (hours)"
    )
    federation_run.add_argument(
        "--fail-for-hours", type=float, default=6.0, help="outage length (0 = forever)"
    )
    federation_run.add_argument("--seed", type=int, default=0)
    federation_run.set_defaults(handler=cmd_federation_run)

    federation_stats = federation_commands.add_parser(
        "stats", help="consistent-hash placement balance and join stability"
    )
    federation_stats.add_argument("--devices", type=int, default=2000)
    federation_stats.add_argument("--hives", type=int, default=4)
    federation_stats.add_argument("--replicas", type=int, default=128)
    federation_stats.set_defaults(handler=cmd_federation_stats)

    federation_query = federation_commands.add_parser(
        "query", help="shard a CSV across member stores, query federated"
    )
    federation_query.add_argument("--input", required=True, help="mobility CSV to shard")
    federation_query.add_argument("--task-name", default="ingested", help="task label")
    federation_query.add_argument("--hives", type=int, default=4)
    federation_query.add_argument("--shards", type=int, default=4)
    federation_query.add_argument("--segment-capacity", type=int, default=4096)
    federation_query.add_argument("--t0", type=float, help="inclusive start time (s)")
    federation_query.add_argument("--t1", type=float, help="exclusive end time (s)")
    federation_query.add_argument(
        "--bbox",
        type=float,
        nargs=4,
        metavar=("SOUTH", "WEST", "NORTH", "EAST"),
        help="spatial filter in decimal degrees",
    )
    federation_query.add_argument("--user", help="restrict to one user")
    federation_query.add_argument("--out", help="write matching rows as CSV")
    federation_query.add_argument(
        "--secure",
        action="store_true",
        help="also compute the task aggregate aggregator-obliviously "
        "(secure aggregation across the member stores) and cross-check it",
    )
    federation_query.add_argument(
        "--secure-protocol",
        default="auto",
        choices=["auto", "paillier", "masking"],
        help="per-participant protocol selection (auto = by device profile)",
    )
    federation_query.add_argument(
        "--key-bits", type=int, default=256, help="Paillier modulus size"
    )
    federation_query.set_defaults(handler=cmd_federation_query)

    privacy = commands.add_parser(
        "privacy", help="privacy-tier operations (secure aggregation)"
    )
    privacy_commands = privacy.add_subparsers(
        dest="privacy_command",
        title="privacy subcommands",
        required=True,
    )

    privacy_demo = privacy_commands.add_parser(
        "demo",
        help="run one secure-aggregation session with mid-session dropouts",
    )
    privacy_demo.add_argument("--devices", type=int, default=12)
    privacy_demo.add_argument("--dropouts", type=int, default=2)
    privacy_demo.add_argument(
        "--protocol", default="auto", choices=["auto", "paillier", "masking"]
    )
    privacy_demo.add_argument("--key-bits", type=int, default=256)
    privacy_demo.add_argument(
        "--battery-floor",
        type=float,
        default=0.3,
        help="devices below this battery level use the masking protocol",
    )
    privacy_demo.add_argument("--seed", type=int, default=0)
    privacy_demo.set_defaults(handler=cmd_privacy_demo)

    task = commands.add_parser(
        "task", help="task lifecycle operations (vet / describe a task spec)"
    )
    task_commands = task.add_subparsers(
        dest="task_command",
        title="task subcommands",
        required=True,
    )

    task_vet = task_commands.add_parser(
        "vet", help="dry-run a task's script and print its DryRunReport"
    )
    task_vet.add_argument(
        "--spec",
        required=True,
        help="python file exposing TASK or build_task(), optionally path.py:ATTR",
    )
    task_vet.add_argument("--samples", type=int, default=200, help="sampling ticks")
    task_vet.add_argument("--seed", type=int, default=0)
    task_vet.set_defaults(handler=cmd_task_vet)

    task_describe = task_commands.add_parser(
        "describe", help="print a task's static description and handlers"
    )
    task_describe.add_argument(
        "--spec",
        required=True,
        help="python file exposing TASK or build_task(), optionally path.py:ATTR",
    )
    task_describe.set_defaults(handler=cmd_task_describe)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
