"""The ingestion pipeline: a bounded, batching upload gateway.

Uploads used to be routed record-list-by-record-list straight into the
Honeycomb; the pipeline instead absorbs them into per-shard bounded
buffers and flushes each shard as one batch, with the flush scheduled on
the existing deterministic :class:`~repro.simulation.Simulator` — a
submit to an idle shard arms one flush event ``flush_delay`` seconds
out, and every upload landing in that window coalesces into the same
batch (cf. HPRM-style batched transport).  No periodic polling: an idle
shard costs zero simulator events.

When a shard's buffer is full, the configured backpressure policy
decides what gives:

- ``drop-oldest`` — evict the oldest buffered records (freshest data
  wins; bounded memory, lossy under sustained overload);
- ``reject`` — refuse the incoming batch entirely (the sender observes
  the rejection, as a real gateway returns 429/503);
- ``spill`` — divert the overflow to an unbounded per-shard spill queue
  drained at most one buffer-capacity per flush (lossless, trades
  memory and freshness for data).

At flush time the batch is appended to the
:class:`~repro.store.dataset_store.DatasetStore` (which updates the
streaming aggregates) and every registered listener — the Hive's
Honeycomb routing above all — receives the flushed records.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro import obs
from repro.errors import StoreError
from repro.obs.instruments import PipelineInstruments
from repro.obs.tracing import traced_keys as _traced_keys
from repro.simulation import Simulator
from repro.store.dataset_store import DatasetStore

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.apisense.device import SensorRecord

#: Backpressure policies, in the order the paper-style gateway offers them.
POLICIES = ("drop-oldest", "reject", "spill")

#: Listener signature: receives the records of one shard flush.
#:
#: Delivery guarantee: listeners observe **every admitted record exactly
#: once**, in flush batches, regardless of what triggered the flush —
#: the timer-driven per-shard flush and a synchronous
#: :meth:`IngestPipeline.flush_all` drain go through the same flush
#: path, in the same order (store append, then the router, then
#: listeners in registration order).  Records shed by backpressure
#: (rejected / dropped) are never delivered; empty flushes are never
#: delivered.  The streaming tier's live views rely on this guarantee:
#: a campaign teardown ``flush_all()`` must feed the stream engine the
#: exact same batches a slower timer-driven drain would have.
FlushListener = Callable[[list["SensorRecord"]], None]


@dataclass
class PipelineStats:
    """Counters of one ingestion pipeline.

    Per record the counters are mutually exclusive and reconcile:

    - ``submitted = accepted + rejected`` — every offered record is
      either admitted or bounced at the gate (``reject`` policy);
    - ``dropped`` counts *admitted* records later evicted by the
      ``drop-oldest`` policy (including a giant batch's own head,
      admitted and evicted in the same call), so at any instant
      ``accepted = flushed_records + dropped + buffered + backlog``;
    - ``spilled`` tags admitted records that took the spill-queue
      detour; they are never dropped and all eventually flush.

    :attr:`IngestPipeline.unaccounted` asserts the second identity.
    """

    submitted: int = 0
    accepted: int = 0
    rejected: int = 0
    dropped: int = 0
    spilled: int = 0
    flushes: int = 0
    flushed_records: int = 0
    largest_flush: int = 0

    @property
    def mean_flush_batch(self) -> float:
        return self.flushed_records / self.flushes if self.flushes else 0.0

    @property
    def loss(self) -> int:
        """Records shed by backpressure (rejected + dropped)."""
        return self.rejected + self.dropped


class _ShardBuffer:
    """Bounded buffer + spill queue + pending-flush flag of one shard."""

    __slots__ = ("buffer", "spill", "pending")

    def __init__(self) -> None:
        self.buffer: deque[SensorRecord] = deque()
        self.spill: deque[SensorRecord] = deque()
        self.pending = False


class IngestPipeline:
    """Bounded batching gateway between upload routing and the store."""

    def __init__(
        self,
        sim: Simulator,
        store: DatasetStore,
        policy: str = "spill",
        buffer_capacity: int = 4096,
        flush_delay: float = 0.2,
    ):
        if policy not in POLICIES:
            raise StoreError(f"unknown backpressure policy {policy!r}; one of {POLICIES}")
        if buffer_capacity <= 0:
            raise StoreError(f"buffer capacity must be positive: {buffer_capacity}")
        if flush_delay < 0:
            raise StoreError(f"flush delay must be non-negative: {flush_delay}")
        self._sim = sim
        self.store = store
        self.policy = policy
        self.buffer_capacity = buffer_capacity
        self.flush_delay = flush_delay
        self._shards = [_ShardBuffer() for _ in range(store.n_shards)]
        self._router: FlushListener | None = None
        self._listeners: list[FlushListener] = []
        self.stats = PipelineStats()
        #: Registry instruments mirroring :attr:`stats` (same counters,
        #: shared exposition) plus the flush-timing histogram the object
        #: counters cannot express.
        self.obs = PipelineInstruments(
            obs.metrics_registry(), obs.next_instance("pipeline")
        )
        self._tracer = obs.tracer()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def set_router(self, router: FlushListener) -> None:
        """Install the single downstream consumer (the Hive's routing).

        Exclusive on purpose: two Hives sharing one pipeline would each
        re-deliver every flush to their Honeycombs, duplicating data.
        """
        if self._router is not None:
            raise StoreError(
                "pipeline already has a router; each Hive needs its own pipeline"
            )
        self._router = router

    def add_listener(self, listener: FlushListener) -> None:
        """Register an observing flush listener (metrics, tests...)."""
        self._listeners.append(listener)

    @property
    def buffered(self) -> int:
        """Records currently waiting in bounded buffers."""
        return sum(len(s.buffer) for s in self._shards)

    @property
    def backlog(self) -> int:
        """Records parked in spill queues (``spill`` policy only)."""
        return sum(len(s.spill) for s in self._shards)

    @property
    def unaccounted(self) -> int:
        """Admitted records the counters cannot place (always 0).

        Every accepted record is exactly one of: already flushed,
        evicted by ``drop-oldest``, waiting in a buffer, or parked in a
        spill queue.  A non-zero value means the backpressure accounting
        double- or under-counted — regression-tested invariant.
        """
        stats = self.stats
        return (
            stats.accepted
            - stats.flushed_records
            - stats.dropped
            - self.buffered
            - self.backlog
        )

    # ------------------------------------------------------------------
    # Ingest path
    # ------------------------------------------------------------------

    def submit(self, records: Sequence[SensorRecord]) -> int:
        """Offer a batch to the gateway; returns how many were accepted.

        Records are routed to their shard buffers; a full buffer invokes
        the backpressure policy.  Device upload batches are homogeneous
        (one task, one user → one shard) but heterogeneous batches are
        handled too.
        """
        if not records:
            return 0
        self.stats.submitted += len(records)
        self.obs.submitted.inc(len(records))
        by_shard: dict[int, list[SensorRecord]] = {}
        for record in records:
            shard_id = self.store.shard_of(record.task, record.user)
            by_shard.setdefault(shard_id, []).append(record)
        accepted = 0
        for shard_id, batch in by_shard.items():
            accepted += self._enqueue(shard_id, batch)
        self.stats.accepted += accepted
        self.obs.accepted.inc(accepted)
        return accepted

    def _enqueue(self, shard_id: int, batch: list[SensorRecord]) -> int:
        shard = self._shards[shard_id]
        free = self.buffer_capacity - len(shard.buffer)
        accepted = 0
        if len(batch) <= free:
            shard.buffer.extend(batch)
            accepted = len(batch)
        elif self.policy == "reject":
            # Admission control: all-or-nothing, the whole batch bounces.
            self.stats.rejected += len(batch)
            self.obs.rejected.inc(len(batch))
            return 0
        elif self.policy == "drop-oldest":
            # The policy admits the whole batch and evicts the oldest
            # records to make room — possibly the batch's own head when
            # the batch alone exceeds capacity.  Either way every batch
            # record counts as accepted and every evicted record (from
            # the buffer or the head) as dropped, keeping the counters
            # one-per-record: accepted = flushed + dropped + in flight.
            keep = batch
            if len(batch) >= self.buffer_capacity:
                evicted = len(shard.buffer) + len(batch) - self.buffer_capacity
                self.stats.dropped += evicted
                self.obs.dropped.inc(evicted)
                shard.buffer.clear()
                keep = batch[-self.buffer_capacity :]
            else:
                overflow = len(batch) - free
                for _ in range(overflow):
                    shard.buffer.popleft()
                self.stats.dropped += overflow
                self.obs.dropped.inc(overflow)
            shard.buffer.extend(keep)
            accepted = len(batch)
        else:  # spill
            head, tail = batch[:free], batch[free:]
            shard.buffer.extend(head)
            shard.spill.extend(tail)
            self.stats.spilled += len(tail)
            self.obs.spilled.inc(len(tail))
            accepted = len(batch)
        if accepted and not shard.pending:
            shard.pending = True
            self._sim.schedule(self.flush_delay, lambda s=shard_id: self._flush(s))
        return accepted

    # ------------------------------------------------------------------
    # Flush path
    # ------------------------------------------------------------------

    def _flush(self, shard_id: int, rearm: bool = True) -> None:
        shard = self._shards[shard_id]
        shard.pending = False
        batch = list(shard.buffer)
        shard.buffer.clear()
        # Drain at most one buffer-capacity of spill per flush so one
        # overloaded shard cannot stall the simulator in a single event.
        drain = min(len(shard.spill), self.buffer_capacity)
        for _ in range(drain):
            batch.append(shard.spill.popleft())
        if shard.spill and rearm:
            shard.pending = True
            self._sim.schedule(self.flush_delay, lambda s=shard_id: self._flush(s))
        if not batch:
            return
        self.stats.flushes += 1
        self.stats.flushed_records += len(batch)
        self.stats.largest_flush = max(self.stats.largest_flush, len(batch))
        self.obs.flushes.inc()
        self.obs.flushed.inc(len(batch))
        timed = self.obs.registry.enabled
        started = time.perf_counter() if timed else 0.0
        with self._tracer.span("ingest.flush", shard=shard_id, batch=len(batch)) as span:
            if span.span is not None:
                span.add_records(_traced_keys(batch))
            self.store.append(batch, ingest_time=self._sim.now)
            if self._router is not None:
                self._router(batch)
            for listener in self._listeners:
                listener(batch)
        if timed:
            self.obs.flush_seconds.observe(time.perf_counter() - started)

    def flush_all(self) -> int:
        """Synchronously drain every buffer and spill queue.

        Used at campaign teardown and by bulk loads; returns the number
        of records flushed.  Notifies the router and every flush
        listener identically to a timer-driven flush (same
        :meth:`_flush` path, same ordering, each record delivered
        exactly once — see :data:`FlushListener`); the only difference
        is that the spill queue is drained to empty in one synchronous
        loop instead of one buffer-capacity per scheduled flush.
        """
        total = 0
        for shard_id, shard in enumerate(self._shards):
            while shard.buffer or shard.spill:
                before = self.stats.flushed_records
                self._flush(shard_id, rearm=False)
                total += self.stats.flushed_records - before
        return total
