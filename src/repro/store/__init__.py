"""``repro.store``: sharded ingestion + columnar dataset storage.

The server side of the platform (paper Section 2's Hive) must absorb
continuous uploads from a large fleet; this subsystem provides the two
halves that make that scale:

- :class:`~repro.store.pipeline.IngestPipeline` — a bounded, batching
  upload gateway with backpressure policies (``drop-oldest``,
  ``reject``, ``spill``) and per-shard flush scheduling driven by the
  deterministic simulator;
- :class:`~repro.store.dataset_store.DatasetStore` — append-only
  columnar segments (numpy ``time/lat/lon/value/user`` arrays) sharded
  by ``hash(task, user)``, with segment sealing, compaction, and
  O(shard) time-range / bbox / per-user scans;
- :class:`~repro.store.aggregates.StoreAggregates` — streaming per-task
  views (record counts, spatial coverage cells, freshness/lag
  percentiles) maintained incrementally at flush time.

The Hive routes every upload through an ingest pipeline into its store;
``python -m repro store`` exposes the same machinery from the shell.
"""

from repro.store.aggregates import StoreAggregates, TaskAggregate
from repro.store.dataset_store import (
    ColumnarBatch,
    CompactionReport,
    DatasetStore,
    ShardStats,
    StoreStats,
    shard_of,
)
from repro.store.pipeline import POLICIES, IngestPipeline, PipelineStats
from repro.store.quantiles import P2Quantile
from repro.store.segment import Segment, SegmentBuilder, merge_segments

__all__ = [
    "ColumnarBatch",
    "CompactionReport",
    "DatasetStore",
    "IngestPipeline",
    "P2Quantile",
    "PipelineStats",
    "POLICIES",
    "Segment",
    "SegmentBuilder",
    "ShardStats",
    "StoreAggregates",
    "StoreStats",
    "TaskAggregate",
    "merge_segments",
    "shard_of",
]
