"""The columnar dataset store: sharded, append-only, scan-oriented.

Uploads routed through the Hive used to accumulate in unbounded per-task
Python lists; this store replaces that with numpy-backed columnar
segments (``time/lat/lon/value/user``) sharded by ``hash(task, user)``
across N shards.  One task's data therefore spreads over every shard
(parallel ingest, no per-task hot shard) while any single user's data
for a task lives in exactly one shard — so per-user scans touch one
shard and time-range/bbox scans prune whole segments by metadata.

Writes go through :meth:`DatasetStore.append` (typically called by the
:class:`~repro.store.pipeline.IngestPipeline` at flush time), which also
feeds the streaming :class:`~repro.store.aggregates.StoreAggregates`.
Sealed segments are immutable; :meth:`DatasetStore.compact` merges a
partition's sealed segments into one time-sorted run.
"""

from __future__ import annotations

import time as _time
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np

from repro import obs
from repro.errors import StoreError
from repro.obs.instruments import StoreInstruments
from repro.obs.tracing import traced_keys as _traced_keys
from repro.geo.point import GeoPoint
from repro.store.aggregates import StoreAggregates, TaskAggregate
from repro.store.segment import Segment, SegmentBuilder, merge_segments

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.apisense.device import SensorRecord


def shard_of(task: str, user: str, n_shards: int) -> int:
    """Deterministic shard routing (stable across processes and runs)."""
    key = f"{task}\x00{user}".encode()
    return zlib.crc32(key) % n_shards


@dataclass
class ColumnarBatch:
    """The result of one scan: five parallel column arrays.

    ``user_id`` indexes into ``user_table`` (the store's interning
    table); :meth:`user_names` decodes it when string ids are needed.
    """

    time: np.ndarray
    lat: np.ndarray
    lon: np.ndarray
    value: np.ndarray
    user_id: np.ndarray
    user_table: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.time)

    def user_names(self) -> list[str]:
        return [self.user_table[i] for i in self.user_id.tolist()]

    def rows(self) -> Iterator[tuple[str, float, float, float, float]]:
        """Iterate ``(user, time, lat, lon, value)`` rows (CSV export)."""
        for i in range(len(self.time)):
            yield (
                self.user_table[int(self.user_id[i])],
                float(self.time[i]),
                float(self.lat[i]),
                float(self.lon[i]),
                float(self.value[i]),
            )


@dataclass(frozen=True)
class ShardStats:
    """Size counters of one shard."""

    shard: int
    records: int
    segments: int
    sealed_segments: int
    tasks: int


@dataclass(frozen=True)
class StoreStats:
    """Size counters of the whole store."""

    n_shards: int
    records: int
    segments: int
    sealed_segments: int
    tasks: int
    users: int
    per_shard: tuple[ShardStats, ...] = field(default_factory=tuple)

    def to_text(self) -> str:
        lines = [
            f"store: {self.records} records, {self.segments} segments "
            f"({self.sealed_segments} sealed) across {self.n_shards} shards, "
            f"{self.tasks} tasks, {self.users} users"
        ]
        for shard in self.per_shard:
            lines.append(
                f"  shard {shard.shard}: {shard.records} records in "
                f"{shard.segments} segments ({shard.tasks} tasks)"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class CompactionReport:
    """What one compaction pass achieved."""

    segments_before: int
    segments_after: int
    records: int
    partitions_compacted: int


class _Partition:
    """One (shard, task) partition: an open builder + sealed segments."""

    def __init__(self, segment_capacity: int):
        self._capacity = segment_capacity
        self.open = SegmentBuilder(segment_capacity)
        self.sealed: list[Segment] = []
        self.records = 0

    def append_columns(
        self,
        time: np.ndarray,
        lat: np.ndarray,
        lon: np.ndarray,
        value: np.ndarray,
        user_id: np.ndarray,
    ) -> None:
        n = len(time)
        start = 0
        while start < n:
            if self.open.full:
                self.sealed.append(self.open.seal())
                self.open = SegmentBuilder(self._capacity)
            stop = min(n, start + self.open.remaining)
            self.open.append(time, lat, lon, value, user_id, start, stop)
            start = stop
        self.records += n

    def segments(self) -> Iterator[Segment]:
        yield from self.sealed
        if self.open.size:
            yield self.open.as_segment()

    def seal_open(self) -> None:
        if self.open.size:
            self.sealed.append(self.open.seal())
            self.open = SegmentBuilder(self._capacity)

    def compact(self) -> tuple[int, int]:
        """Merge sealed segments; returns (segments_before, after)."""
        self.seal_open()
        before = len(self.sealed)
        if before > 1:
            self.sealed = [merge_segments(self.sealed)]
        return before, len(self.sealed)

    @property
    def n_segments(self) -> int:
        return len(self.sealed) + (1 if self.open.size else 0)


class _Shard:
    """One shard: partitions keyed by task."""

    def __init__(self, shard_id: int, segment_capacity: int):
        self.shard_id = shard_id
        self._capacity = segment_capacity
        self.partitions: dict[str, _Partition] = {}
        self.records = 0

    def partition(self, task: str) -> _Partition:
        if task not in self.partitions:
            self.partitions[task] = _Partition(self._capacity)
        return self.partitions[task]


class DatasetStore:
    """Append-only columnar storage for collected sensing data."""

    def __init__(
        self,
        n_shards: int = 4,
        segment_capacity: int = 4096,
        coverage_cell_deg: float = 0.005,
    ):
        if n_shards <= 0:
            raise StoreError(f"shard count must be positive: {n_shards}")
        if segment_capacity <= 0:
            raise StoreError(f"segment capacity must be positive: {segment_capacity}")
        self.n_shards = n_shards
        self.segment_capacity = segment_capacity
        self._shards = [_Shard(i, segment_capacity) for i in range(n_shards)]
        self._user_ids: dict[str, int] = {}
        self._user_table: list[str] = []
        self.aggregates = StoreAggregates(cell_deg=coverage_cell_deg)
        self.obs = StoreInstruments(obs.metrics_registry(), obs.next_instance("store"))
        self._tracer = obs.tracer()

    # ------------------------------------------------------------------
    # Routing / identity
    # ------------------------------------------------------------------

    def shard_of(self, task: str, user: str) -> int:
        return shard_of(task, user, self.n_shards)

    def _intern_user(self, user: str) -> int:
        uid = self._user_ids.get(user)
        if uid is None:
            uid = self._user_ids[user] = len(self._user_table)
            self._user_table.append(user)
        return uid

    @property
    def users(self) -> list[str]:
        return list(self._user_table)

    @property
    def tasks(self) -> list[str]:
        names: dict[str, None] = {}
        for shard in self._shards:
            for task in shard.partitions:
                names[task] = None
        return list(names)

    @property
    def n_records(self) -> int:
        return sum(shard.records for shard in self._shards)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def append(
        self, records: Sequence[SensorRecord], ingest_time: float | None = None
    ) -> int:
        """Append a batch of records, routing each to its shard.

        ``ingest_time`` (the simulation clock at flush) drives the
        freshness/lag aggregates; ``None`` (bulk loads) skips them.
        Returns the number of records appended.
        """
        if not records:
            return 0
        timed = self.obs.registry.enabled
        started = _time.perf_counter() if timed else 0.0
        with self._tracer.span("store.append", batch=len(records)) as span:
            if span.span is not None:
                span.add_records(_traced_keys(records))
            # Group into (shard, task) runs first so each partition
            # receives one contiguous column batch.
            groups: dict[tuple[int, str], list[SensorRecord]] = {}
            for record in records:
                key = (self.shard_of(record.task, record.user), record.task)
                groups.setdefault(key, []).append(record)

            for (shard_id, task), group in groups.items():
                columns = self._columnize(group)
                shard = self._shards[shard_id]
                shard.partition(task).append_columns(*columns)
                shard.records += len(group)
                time, lat, lon, _value, user_id = columns
                self.aggregates.update(task, time, lat, lon, user_id, ingest_time)
        if timed:
            self.obs.append_seconds.observe(_time.perf_counter() - started)
            self.obs.records_appended.inc(len(records))
        return len(records)

    def _columnize(
        self, records: list[SensorRecord]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Convert record objects into the store's five columns.

        ``lat``/``lon`` come from a ``gps`` value when present; ``value``
        is the first scalar (non-bool int/float) among the remaining
        sensor values, NaN otherwise.
        """
        n = len(records)
        time = np.empty(n, dtype=np.float64)
        lat = np.full(n, np.nan, dtype=np.float64)
        lon = np.full(n, np.nan, dtype=np.float64)
        value = np.full(n, np.nan, dtype=np.float64)
        user_id = np.empty(n, dtype=np.int64)
        for i, record in enumerate(records):
            time[i] = record.time
            user_id[i] = self._intern_user(record.user)
            gps = record.values.get("gps")
            if isinstance(gps, GeoPoint):
                lat[i] = gps.lat
                lon[i] = gps.lon
            for name, item in record.values.items():
                if name == "gps" or isinstance(item, bool):
                    continue
                if isinstance(item, (int, float)):
                    value[i] = float(item)
                    break
        return time, lat, lon, value, user_id

    # ------------------------------------------------------------------
    # Scan path
    # ------------------------------------------------------------------

    def scan(
        self,
        task: str,
        t0: float | None = None,
        t1: float | None = None,
        bbox: "object | tuple[float, float, float, float] | None" = None,
        user: str | None = None,
    ) -> ColumnarBatch:
        """Filtered columnar scan of one task's data.

        Filters compose (AND).  ``t0``/``t1`` select ``t0 <= time < t1``;
        ``bbox`` is a :class:`~repro.geo.bbox.BoundingBox` or a
        ``(south, west, north, east)`` tuple and matches only records
        with a GPS fix; ``user`` narrows the scan to the single shard
        owning that (task, user) pair.
        """
        timed = self.obs.registry.enabled
        started = _time.perf_counter() if timed else 0.0
        try:
            return self._scan(task, t0, t1, bbox, user)
        finally:
            if timed:
                self.obs.scans.inc()
                self.obs.scan_seconds.observe(_time.perf_counter() - started)

    def _scan(
        self,
        task: str,
        t0: float | None = None,
        t1: float | None = None,
        bbox: "object | tuple[float, float, float, float] | None" = None,
        user: str | None = None,
    ) -> ColumnarBatch:
        box = self._unpack_bbox(bbox)
        if user is not None:
            shards: Iterable[_Shard] = (self._shards[self.shard_of(task, user)],)
            want_uid = self._user_ids.get(user)
            if want_uid is None:
                return self._empty_batch()
        else:
            shards = self._shards
            want_uid = None

        pieces: list[tuple[np.ndarray, ...]] = []
        for shard in shards:
            partition = shard.partitions.get(task)
            if partition is None:
                continue
            for segment in partition.segments():
                if not segment.overlaps_time(t0, t1):
                    continue
                if box is not None and not segment.overlaps_bbox(*box):
                    continue
                mask = np.ones(len(segment), dtype=bool)
                if t0 is not None:
                    mask &= segment.time >= t0
                if t1 is not None:
                    mask &= segment.time < t1
                if box is not None:
                    south, west, north, east = box
                    mask &= (
                        (segment.lat >= south)
                        & (segment.lat <= north)
                        & (segment.lon >= west)
                        & (segment.lon <= east)
                    )
                if want_uid is not None:
                    mask &= segment.user_id == want_uid
                if mask.any():
                    pieces.append(
                        (
                            segment.time[mask],
                            segment.lat[mask],
                            segment.lon[mask],
                            segment.value[mask],
                            segment.user_id[mask],
                        )
                    )
        if not pieces:
            return self._empty_batch()
        return ColumnarBatch(
            time=np.concatenate([p[0] for p in pieces]),
            lat=np.concatenate([p[1] for p in pieces]),
            lon=np.concatenate([p[2] for p in pieces]),
            value=np.concatenate([p[3] for p in pieces]),
            user_id=np.concatenate([p[4] for p in pieces]),
            user_table=tuple(self._user_table),
        )

    def scan_time(self, task: str, t0: float, t1: float) -> ColumnarBatch:
        return self.scan(task, t0=t0, t1=t1)

    def scan_bbox(self, task: str, bbox) -> ColumnarBatch:
        return self.scan(task, bbox=bbox)

    def scan_user(self, task: str, user: str) -> ColumnarBatch:
        return self.scan(task, user=user)

    @staticmethod
    def _unpack_bbox(bbox) -> tuple[float, float, float, float] | None:
        if bbox is None:
            return None
        if hasattr(bbox, "south"):
            return (bbox.south, bbox.west, bbox.north, bbox.east)
        south, west, north, east = bbox
        return (float(south), float(west), float(north), float(east))

    def _empty_batch(self) -> ColumnarBatch:
        empty = np.empty(0, dtype=np.float64)
        return ColumnarBatch(
            time=empty,
            lat=empty,
            lon=empty,
            value=empty,
            user_id=np.empty(0, dtype=np.int64),
            user_table=tuple(self._user_table),
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def seal(self) -> None:
        """Seal every non-empty open segment (pre-compaction / snapshot)."""
        for shard in self._shards:
            for partition in shard.partitions.values():
                partition.seal_open()

    def compact(self, task: str | None = None) -> CompactionReport:
        """Merge sealed segments per partition into one time-sorted run."""
        timed = self.obs.registry.enabled
        started = _time.perf_counter() if timed else 0.0
        before = after = compacted = records = 0
        for shard in self._shards:
            for name, partition in shard.partitions.items():
                if task is not None and name != task:
                    continue
                b, a = partition.compact()
                before += b
                after += a
                records += partition.records
                if b > a:
                    compacted += 1
        if timed:
            self.obs.compactions.inc()
            self.obs.compact_seconds.observe(_time.perf_counter() - started)
        return CompactionReport(
            segments_before=before,
            segments_after=after,
            records=records,
            partitions_compacted=compacted,
        )

    def stats(self) -> StoreStats:
        per_shard = tuple(
            ShardStats(
                shard=shard.shard_id,
                records=shard.records,
                segments=sum(p.n_segments for p in shard.partitions.values()),
                sealed_segments=sum(len(p.sealed) for p in shard.partitions.values()),
                tasks=len(shard.partitions),
            )
            for shard in self._shards
        )
        return StoreStats(
            n_shards=self.n_shards,
            records=self.n_records,
            segments=sum(s.segments for s in per_shard),
            sealed_segments=sum(s.sealed_segments for s in per_shard),
            tasks=len(self.tasks),
            users=len(self._user_table),
            per_shard=per_shard,
        )

    def aggregate(self, task: str) -> TaskAggregate:
        """The streaming aggregate view of one task."""
        return self.aggregates.task(task)
