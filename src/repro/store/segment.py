"""Columnar segments: the append-only storage unit of the dataset store.

A segment holds five parallel numpy arrays — ``time``, ``lat``, ``lon``,
``value``, ``user_id`` — for one (shard, task) partition.  Open segments
(:class:`SegmentBuilder`) absorb flush batches with amortized O(1)
appends; once full they are *sealed* into immutable :class:`Segment`
instances carrying the pruning metadata (time span, spatial extent) that
lets scans skip non-overlapping segments entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StoreError

#: Column order of every batch travelling through the store.
COLUMNS = ("time", "lat", "lon", "value", "user_id")


@dataclass(frozen=True)
class Segment:
    """An immutable columnar run of records plus pruning metadata.

    ``lat``/``lon`` are NaN for records without a GPS fix and ``value``
    is NaN for records without a scalar payload; the spatial extent
    fields are NaN when *no* record in the segment has a fix.
    """

    time: np.ndarray
    lat: np.ndarray
    lon: np.ndarray
    value: np.ndarray
    user_id: np.ndarray
    t_min: float
    t_max: float
    lat_min: float
    lat_max: float
    lon_min: float
    lon_max: float
    #: Sealed segments are frozen; the store's one open segment per
    #: partition is exposed through the same type with ``sealed=False``.
    sealed: bool = True

    def __len__(self) -> int:
        return len(self.time)

    def overlaps_time(self, t0: float | None, t1: float | None) -> bool:
        """Whether any record could fall in ``[t0, t1)``."""
        if t0 is not None and self.t_max < t0:
            return False
        if t1 is not None and self.t_min >= t1:
            return False
        return True

    def overlaps_bbox(self, south: float, west: float, north: float, east: float) -> bool:
        """Whether the segment's spatial extent intersects the box.

        Segments with no GPS fixes at all (NaN extent) never match.
        """
        if np.isnan(self.lat_min):
            return False
        return not (
            self.lat_max < south
            or self.lat_min > north
            or self.lon_max < west
            or self.lon_min > east
        )


class SegmentBuilder:
    """The open (mutable) segment of one partition.

    Pre-allocates ``capacity`` rows and fills them by slice assignment;
    running min/max metadata is maintained per batch so converting the
    builder into a scan view is O(1).
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise StoreError(f"segment capacity must be positive: {capacity}")
        self.capacity = capacity
        self.size = 0
        self._time = np.empty(capacity, dtype=np.float64)
        self._lat = np.empty(capacity, dtype=np.float64)
        self._lon = np.empty(capacity, dtype=np.float64)
        self._value = np.empty(capacity, dtype=np.float64)
        self._user_id = np.empty(capacity, dtype=np.int64)
        self._t_min = np.inf
        self._t_max = -np.inf
        self._lat_min = np.nan
        self._lat_max = np.nan
        self._lon_min = np.nan
        self._lon_max = np.nan

    @property
    def remaining(self) -> int:
        return self.capacity - self.size

    @property
    def full(self) -> bool:
        return self.size >= self.capacity

    def append(
        self,
        time: np.ndarray,
        lat: np.ndarray,
        lon: np.ndarray,
        value: np.ndarray,
        user_id: np.ndarray,
        start: int,
        stop: int,
    ) -> None:
        """Copy rows ``[start, stop)`` of a column batch into the segment."""
        n = stop - start
        if n > self.remaining:
            raise StoreError(
                f"segment overflow: {n} rows into {self.remaining} free slots"
            )
        at = self.size
        self._time[at : at + n] = time[start:stop]
        self._lat[at : at + n] = lat[start:stop]
        self._lon[at : at + n] = lon[start:stop]
        self._value[at : at + n] = value[start:stop]
        self._user_id[at : at + n] = user_id[start:stop]
        self.size += n

        self._t_min = min(self._t_min, float(np.min(time[start:stop])))
        self._t_max = max(self._t_max, float(np.max(time[start:stop])))
        chunk_lat = lat[start:stop]
        if not np.all(np.isnan(chunk_lat)):
            chunk_lon = lon[start:stop]
            self._lat_min = np.fmin(self._lat_min, np.nanmin(chunk_lat))
            self._lat_max = np.fmax(self._lat_max, np.nanmax(chunk_lat))
            self._lon_min = np.fmin(self._lon_min, np.nanmin(chunk_lon))
            self._lon_max = np.fmax(self._lon_max, np.nanmax(chunk_lon))

    def as_segment(self) -> Segment:
        """A zero-copy scan view over the rows written so far."""
        n = self.size
        return Segment(
            time=self._time[:n],
            lat=self._lat[:n],
            lon=self._lon[:n],
            value=self._value[:n],
            user_id=self._user_id[:n],
            t_min=self._t_min,
            t_max=self._t_max,
            lat_min=self._lat_min,
            lat_max=self._lat_max,
            lon_min=self._lon_min,
            lon_max=self._lon_max,
            sealed=False,
        )

    def seal(self) -> Segment:
        """Freeze the builder into an immutable right-sized segment."""
        n = self.size
        segment = Segment(
            time=self._time[:n].copy(),
            lat=self._lat[:n].copy(),
            lon=self._lon[:n].copy(),
            value=self._value[:n].copy(),
            user_id=self._user_id[:n].copy(),
            t_min=self._t_min,
            t_max=self._t_max,
            lat_min=self._lat_min,
            lat_max=self._lat_max,
            lon_min=self._lon_min,
            lon_max=self._lon_max,
            sealed=True,
        )
        for array in (segment.time, segment.lat, segment.lon, segment.value, segment.user_id):
            array.setflags(write=False)
        return segment


def merge_segments(segments: list[Segment]) -> Segment:
    """Compact several sealed segments into one, sorted by time."""
    if not segments:
        raise StoreError("cannot merge an empty segment list")
    time = np.concatenate([s.time for s in segments])
    order = np.argsort(time, kind="stable")
    lat = np.concatenate([s.lat for s in segments])[order]
    lon = np.concatenate([s.lon for s in segments])[order]
    # min/max over the per-segment extents, ignoring all-NaN (GPS-less)
    # segments; the merge is all-NaN only when every input is.
    with_fix = [s for s in segments if not np.isnan(s.lat_min)]
    merged = Segment(
        time=time[order],
        lat=lat,
        lon=lon,
        value=np.concatenate([s.value for s in segments])[order],
        user_id=np.concatenate([s.user_id for s in segments])[order],
        t_min=min(s.t_min for s in segments),
        t_max=max(s.t_max for s in segments),
        lat_min=min(s.lat_min for s in with_fix) if with_fix else float("nan"),
        lat_max=max(s.lat_max for s in with_fix) if with_fix else float("nan"),
        lon_min=min(s.lon_min for s in with_fix) if with_fix else float("nan"),
        lon_max=max(s.lon_max for s in with_fix) if with_fix else float("nan"),
        sealed=True,
    )
    for array in (merged.time, merged.lat, merged.lon, merged.value, merged.user_id):
        array.setflags(write=False)
    return merged
