"""Streaming aggregate views over the dataset store.

Monitoring used to re-walk every raw record list on each dashboard
snapshot; these views are instead maintained *incrementally at flush
time* — the store feeds every appended column batch through
:meth:`StoreAggregates.update`, so reading an aggregate is O(1)
regardless of how much data has been ingested.

Per task the view tracks record counts, the set of contributing users,
spatial coverage (distinct quantized lat/lon cells), and ingest-lag
("freshness") statistics: how stale records are by the time they reach
the store, as mean/max plus streaming P² percentiles.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StoreError
from repro.store.quantiles import P2Quantile


class TaskAggregate:
    """Incrementally-maintained statistics of one task's dataset."""

    def __init__(self, task: str, cell_deg: float):
        self.task = task
        self.cell_deg = cell_deg
        self.records = 0
        self.gps_records = 0
        self.first_time: float | None = None
        self.last_time: float | None = None
        self._user_ids: set[int] = set()
        self._cells: set[tuple[int, int]] = set()
        self.lag_count = 0
        self.lag_sum = 0.0
        self.lag_max = 0.0
        self._lag_p50 = P2Quantile(0.50)
        self._lag_p95 = P2Quantile(0.95)
        self._lag_p99 = P2Quantile(0.99)

    # -- derived readings ------------------------------------------------

    @property
    def n_users(self) -> int:
        return len(self._user_ids)

    @property
    def user_ids(self) -> frozenset[int]:
        """Contributing users as store-local interned ids.

        Local ids are only meaningful against the owning store's user
        table; cross-store consumers (the federated query plane) resolve
        them through :attr:`DatasetStore.users` before merging.
        """
        return frozenset(self._user_ids)

    @property
    def coverage_cells(self) -> int:
        """Distinct spatial cells (``cell_deg`` degrees) with a GPS fix."""
        return len(self._cells)

    @property
    def cells(self) -> frozenset[tuple[int, int]]:
        return frozenset(self._cells)

    @property
    def lag_mean(self) -> float:
        return self.lag_sum / self.lag_count if self.lag_count else 0.0

    @property
    def lag_p50(self) -> float:
        return self._lag_p50.value() if len(self._lag_p50) else 0.0

    @property
    def lag_p95(self) -> float:
        return self._lag_p95.value() if len(self._lag_p95) else 0.0

    @property
    def lag_p99(self) -> float:
        return self._lag_p99.value() if len(self._lag_p99) else 0.0

    def freshness(self, now: float) -> float:
        """Seconds since the newest stored record (``inf`` when empty)."""
        if self.last_time is None:
            return float("inf")
        return max(0.0, now - self.last_time)

    # -- update path -----------------------------------------------------

    def update(
        self,
        time: np.ndarray,
        lat: np.ndarray,
        lon: np.ndarray,
        user_id: np.ndarray,
        ingest_time: float | None,
    ) -> None:
        """Absorb one flushed column batch."""
        n = len(time)
        if n == 0:
            return
        self.records += n
        batch_min = float(np.min(time))
        batch_max = float(np.max(time))
        self.first_time = batch_min if self.first_time is None else min(self.first_time, batch_min)
        self.last_time = batch_max if self.last_time is None else max(self.last_time, batch_max)
        self._user_ids.update(np.unique(user_id).tolist())

        fix = ~np.isnan(lat)
        n_fix = int(np.count_nonzero(fix))
        if n_fix:
            self.gps_records += n_fix
            rows = np.floor(lat[fix] / self.cell_deg).astype(np.int64)
            cols = np.floor(lon[fix] / self.cell_deg).astype(np.int64)
            self._cells.update(zip(rows.tolist(), cols.tolist()))

        if ingest_time is not None:
            lags = np.maximum(0.0, ingest_time - time)
            self.lag_count += n
            self.lag_sum += float(np.sum(lags))
            self.lag_max = max(self.lag_max, float(np.max(lags)))
            for lag in lags.tolist():
                self._lag_p50.add(lag)
                self._lag_p95.add(lag)
                self._lag_p99.add(lag)

    def to_text(self) -> str:
        return (
            f"task {self.task}: {self.records} records from {self.n_users} users, "
            f"{self.coverage_cells} coverage cells, "
            f"lag mean/p50/p95 {self.lag_mean:.1f}/{self.lag_p50:.1f}/{self.lag_p95:.1f}s"
        )


class StoreAggregates:
    """The per-task aggregate views of one :class:`DatasetStore`."""

    def __init__(self, cell_deg: float = 0.005):
        if cell_deg <= 0:
            raise StoreError(f"coverage cell size must be positive: {cell_deg}")
        self.cell_deg = cell_deg
        self._per_task: dict[str, TaskAggregate] = {}

    @property
    def tasks(self) -> list[str]:
        return list(self._per_task)

    def task(self, name: str) -> TaskAggregate:
        if name not in self._per_task:
            raise StoreError(f"no aggregates for unknown task {name!r}")
        return self._per_task[name]

    def get(self, name: str) -> TaskAggregate | None:
        return self._per_task.get(name)

    def update(
        self,
        task: str,
        time: np.ndarray,
        lat: np.ndarray,
        lon: np.ndarray,
        user_id: np.ndarray,
        ingest_time: float | None,
    ) -> None:
        aggregate = self._per_task.get(task)
        if aggregate is None:
            aggregate = self._per_task[task] = TaskAggregate(task, self.cell_deg)
        aggregate.update(time, lat, lon, user_id, ingest_time)
