"""Streaming quantile estimation (the P-square algorithm).

The store's freshness aggregates need ingest-lag percentiles over an
unbounded stream without keeping the samples.  Jain & Chlamtac's P²
algorithm (CACM 1985) tracks one quantile with five markers in O(1)
memory and O(1) per observation — exactly the budget a per-flush update
path can afford.

Sketches are also *mergeable* (:meth:`P2Quantile.merge`): each sketch's
five markers describe a piecewise-linear CDF approximation, and a
count-weighted combination of the members' CDFs can be inverted at the
five marker quantiles to reconstruct a valid merged sketch.  The merge
is approximate (P² does not compose exactly) but its error stays on the
order of the per-sketch error — good enough for the streaming tier's
pane windows and the federation's cross-hive dashboard, both of which
fold many partial sketches into one estimate.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import StoreError


class P2Quantile:
    """One streaming quantile estimator (P² algorithm, five markers)."""

    def __init__(self, p: float):
        if not (0.0 < p < 1.0):
            raise StoreError(f"quantile must be in (0, 1): {p}")
        self.p = p
        self._count = 0
        # Marker heights, integer positions, and desired positions; live
        # only once the first five observations have been absorbed.
        self._q: list[float] = []
        self._n: list[float] = [0.0] * 5
        self._np: list[float] = [0.0] * 5
        self._dn = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    def __len__(self) -> int:
        return self._count

    def add(self, x: float) -> None:
        """Absorb one observation."""
        x = float(x)
        self._count += 1
        if self._count <= 5:
            self._q.append(x)
            self._q.sort()
            if self._count == 5:
                self._n = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._np = [1.0, 1.0 + 4.0 * self._dn[1], 1.0 + 4.0 * self._dn[2],
                            1.0 + 4.0 * self._dn[3], 5.0]
            return

        q, n = self._q, self._n
        # 1. Find the cell containing x, clamping the extreme markers.
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while x >= q[k + 1]:
                k += 1
        # 2. Shift marker positions above the cell.
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            self._np[i] += self._dn[i]
        # 3. Nudge interior markers toward their desired positions.
        for i in range(1, 4):
            d = self._np[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (d <= -1.0 and n[i - 1] - n[i] < -1.0):
                d = math.copysign(1.0, d)
                candidate = self._parabolic(i, d)
                if not (q[i - 1] < candidate < q[i + 1]):
                    candidate = self._linear(i, d)
                q[i] = candidate
                n[i] += d

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    def value(self) -> float:
        """The current quantile estimate (NaN before any observation)."""
        if self._count == 0:
            return float("nan")
        if self._count <= 5:
            # Exact from the sorted sample: nearest-rank interpolation.
            rank = self.p * (self._count - 1)
            lo = int(math.floor(rank))
            hi = min(lo + 1, self._count - 1)
            frac = rank - lo
            return self._q[lo] * (1.0 - frac) + self._q[hi] * frac
        return self._q[2]

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------

    def _cdf_points(self) -> tuple[list[float], list[float]]:
        """This sketch as a piecewise-linear CDF: (heights, fractions).

        Heights are strictly the observed value range; fractions map the
        minimum to 0 and the maximum to 1.  Only valid once the markers
        are live (>= 5 observations — :meth:`add` initializes them at
        exactly the fifth); smaller sketches still hold their raw sorted
        sample and are pooled directly by :meth:`merge`.
        """
        span = self._count - 1
        return list(self._q), [(n - 1.0) / span for n in self._n]

    @classmethod
    def merge(cls, sketches: Sequence["P2Quantile"]) -> "P2Quantile":
        """Merge sketches tracking the same quantile into a new sketch.

        Empty members contribute nothing; at least one sketch (empty or
        not) is required to fix ``p``.  The merged sketch carries the
        pooled count, the pooled min/max exactly, and interior markers
        read off the count-weighted combination of the members' CDF
        approximations — it remains a live estimator (``add`` keeps
        working on it).
        """
        if not sketches:
            raise StoreError("cannot merge an empty collection of sketches")
        ps = {s.p for s in sketches}
        if len(ps) > 1:
            raise StoreError(
                f"cannot merge sketches tracking different quantiles: {sorted(ps)}"
            )
        merged = cls(sketches[0].p)
        live = [s for s in sketches if s._count]
        if not live:
            return merged
        # Members with < 5 observations have no live marker state — their
        # ``_q`` is still the raw sorted sample (and ``_n`` is all zeros),
        # so the CDF combination cannot read them.  Degrade gracefully:
        # pool their raw samples into the merged sketch one by one.
        small = [s for s in live if s._count < 5]
        big = [s for s in live if s._count >= 5]
        if not big:
            for sketch in small:
                for x in sketch._q:
                    merged.add(x)
            return merged
        total = sum(s._count for s in big)

        # Count-weighted piecewise-linear CDF combination over the
        # marker-live members, inverted at the five marker quantiles.
        curves = [(s._count, *s._cdf_points()) for s in big]
        grid = sorted({h for _, heights, _ in curves for h in heights})
        combined = []
        for h in grid:
            mass = 0.0
            for count, heights, fractions in curves:
                mass += count * _interp(h, heights, fractions)
            combined.append(mass / total)

        lo = min(heights[0] for _, heights, _ in curves)
        hi = max(heights[-1] for _, heights, _ in curves)
        dn = merged._dn
        # Inverting the monotone CDF is interpolation with axes swapped.
        q = [_interp(d, combined, grid) for d in dn]
        q[0], q[4] = lo, hi
        for i in range(1, 5):  # enforce monotone marker heights
            q[i] = max(q[i], q[i - 1])

        # Integer marker positions at their desired ranks, kept strictly
        # increasing (total > 5 guarantees room).
        n = [1.0 + round((total - 1) * d) for d in dn]
        n[0], n[4] = 1.0, float(total)
        for i in range(1, 4):
            n[i] = min(max(n[i], n[i - 1] + 1.0), total - (4.0 - i))

        merged._count = total
        merged._q = q
        merged._n = n
        merged._np = [1.0 + (total - 1) * d for d in dn]
        # The merged sketch is live; absorb the small members' raw
        # samples like any other stream of observations.
        for sketch in small:
            for x in sketch._q:
                merged.add(x)
        return merged


def _interp(x: float, xs: Sequence[float], ys: Sequence[float]) -> float:
    """Piecewise-linear interpolation clamped to [ys[0], ys[-1]]."""
    if x <= xs[0]:
        return ys[0]
    if x >= xs[-1]:
        return ys[-1]
    for i in range(1, len(xs)):
        if x <= xs[i]:
            if xs[i] == xs[i - 1]:
                return ys[i]
            t = (x - xs[i - 1]) / (xs[i] - xs[i - 1])
            return ys[i - 1] + t * (ys[i] - ys[i - 1])
    return ys[-1]  # pragma: no cover - unreachable
