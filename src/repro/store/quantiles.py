"""Streaming quantile estimation (the P-square algorithm).

The store's freshness aggregates need ingest-lag percentiles over an
unbounded stream without keeping the samples.  Jain & Chlamtac's P²
algorithm (CACM 1985) tracks one quantile with five markers in O(1)
memory and O(1) per observation — exactly the budget a per-flush update
path can afford.
"""

from __future__ import annotations

import math

from repro.errors import StoreError


class P2Quantile:
    """One streaming quantile estimator (P² algorithm, five markers)."""

    def __init__(self, p: float):
        if not (0.0 < p < 1.0):
            raise StoreError(f"quantile must be in (0, 1): {p}")
        self.p = p
        self._count = 0
        # Marker heights, integer positions, and desired positions; live
        # only once the first five observations have been absorbed.
        self._q: list[float] = []
        self._n: list[float] = [0.0] * 5
        self._np: list[float] = [0.0] * 5
        self._dn = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    def __len__(self) -> int:
        return self._count

    def add(self, x: float) -> None:
        """Absorb one observation."""
        x = float(x)
        self._count += 1
        if self._count <= 5:
            self._q.append(x)
            self._q.sort()
            if self._count == 5:
                self._n = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._np = [1.0, 1.0 + 4.0 * self._dn[1], 1.0 + 4.0 * self._dn[2],
                            1.0 + 4.0 * self._dn[3], 5.0]
            return

        q, n = self._q, self._n
        # 1. Find the cell containing x, clamping the extreme markers.
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while x >= q[k + 1]:
                k += 1
        # 2. Shift marker positions above the cell.
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            self._np[i] += self._dn[i]
        # 3. Nudge interior markers toward their desired positions.
        for i in range(1, 4):
            d = self._np[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (d <= -1.0 and n[i - 1] - n[i] < -1.0):
                d = math.copysign(1.0, d)
                candidate = self._parabolic(i, d)
                if not (q[i - 1] < candidate < q[i + 1]):
                    candidate = self._linear(i, d)
                q[i] = candidate
                n[i] += d

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    def value(self) -> float:
        """The current quantile estimate (NaN before any observation)."""
        if self._count == 0:
            return float("nan")
        if self._count <= 5:
            # Exact from the sorted sample: nearest-rank interpolation.
            rank = self.p * (self._count - 1)
            lo = int(math.floor(rank))
            hi = min(lo + 1, self._count - 1)
            frac = rank - lo
            return self._q[lo] * (1.0 - frac) + self._q[hi] * frac
        return self._q[2]
