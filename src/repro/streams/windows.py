"""Window specifications over simulator (event) time.

The streaming tier slices each task's record stream into **windows** of
simulated seconds.  A :class:`WindowSpec` is either *tumbling* (windows
tile the time axis back to back: ``size == slide``) or *sliding*
(windows of ``size`` seconds emitted every ``slide`` seconds, so
consecutive windows overlap by ``size - slide``).

Windows are aligned to t=0 of the simulation clock: a window *closes*
at every multiple of ``slide`` and covers the preceding ``size``
seconds.  The engine maintains state in **panes** of ``slide`` seconds
(tumbling windows of the greatest common slide) and assembles a closing
window by merging its ``size / slide`` panes — which is what keeps
per-record maintenance cost independent of how many windowed views are
registered (see :mod:`repro.streams.engine`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StreamError


@dataclass(frozen=True)
class WindowSpec:
    """One windowed view's geometry: ``size`` seconds, closing every ``slide``."""

    size: float
    slide: float

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise StreamError(f"window size must be positive: {self.size}")
        if self.slide <= 0:
            raise StreamError(f"window slide must be positive: {self.slide}")
        if self.slide > self.size:
            raise StreamError(
                f"slide {self.slide} exceeds size {self.size}; "
                "gapped (sampled) windows are not supported"
            )
        ratio = self.size / self.slide
        if abs(ratio - round(ratio)) > 1e-9:
            raise StreamError(
                f"window size {self.size} must be an integer multiple "
                f"of slide {self.slide}"
            )

    @classmethod
    def tumbling(cls, size: float) -> "WindowSpec":
        """Back-to-back windows: each record lands in exactly one."""
        return cls(size=size, slide=size)

    @classmethod
    def sliding(cls, size: float, slide: float) -> "WindowSpec":
        """Overlapping windows: one closes every ``slide`` seconds."""
        return cls(size=size, slide=slide)

    @property
    def is_tumbling(self) -> bool:
        return self.slide == self.size

    @property
    def panes_per_window(self) -> int:
        """How many ``slide``-sized panes one window spans."""
        return int(round(self.size / self.slide))

    def closes_at(self, boundary: float) -> bool:
        """Does a window of this spec close at pane boundary ``boundary``?

        True when the boundary is a multiple of ``slide`` and a full
        window fits before it (partial head windows are not emitted).
        """
        if boundary < self.size - 1e-9:
            return False
        ratio = boundary / self.slide
        return abs(ratio - round(ratio)) < 1e-9

    def window_at(self, boundary: float) -> tuple[float, float]:
        """The ``(start, end)`` of the window closing at ``boundary``."""
        return (boundary - self.size, boundary)
