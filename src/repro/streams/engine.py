"""The stream engine: live windowed views fed by pipeline flushes.

:class:`StreamEngine` taps the ingest path through
:meth:`repro.store.pipeline.IngestPipeline.add_listener` — every flushed
batch is absorbed **once, at flush time, O(batch)**; reading a view
never re-scans the columnar store.  State lives in per-task **panes**
(tumbling slices of event time, one per registered slide granularity's
GCD — the engine's ``pane_seconds``):

- per record the engine updates exactly one pane (count, per-user
  activity, geo cell, P² value/lag sketches) — O(1) regardless of how
  many windowed views are registered;
- when the event-time watermark passes a pane boundary, every view
  whose window closes there is assembled by merging its panes into a
  :class:`~repro.streams.views.WindowSnapshot` (count-sum, cell-union,
  P²-merge) and appended to that view's bounded history;
- continuous queries registered on the view are evaluated against the
  closing snapshot, appending :class:`~repro.streams.queries.
  StreamAlert`\\ s to the bounded alert log.

Windows close on **event time** (the simulated clock records carry),
driven by a watermark ``max event time seen - allowed_lateness``.
Devices upload in periodic batches, so a record can trail the newest
record seen by up to its upload period; size ``allowed_lateness``
accordingly (records older than their already-closed pane are counted
as late and excluded from views).
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro import obs
from repro.errors import StreamError
from repro.obs.instruments import StreamInstruments
from repro.geo.grid import SpatialGrid
from repro.geo.point import GeoPoint
from repro.streams.queries import AlertLog, ContinuousQuery, StreamAlert
from repro.streams.views import PaneStats, WindowSnapshot, snapshot_from_panes
from repro.streams.windows import WindowSpec

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.apisense.device import SensorRecord
    from repro.simulation import Simulator
    from repro.store.pipeline import IngestPipeline

#: Observer invoked with every freshly closed window snapshot.
WindowCallback = Callable[[WindowSnapshot], None]


@dataclass
class StreamStats:
    """Counters of one stream engine."""

    records_seen: int = 0
    late_records: int = 0
    panes_closed: int = 0
    windows_emitted: int = 0
    queries_evaluated: int = 0
    alerts_fired: int = 0


class StreamEngine:
    """Maintains windowed materialized views over the live record stream."""

    def __init__(
        self,
        sim: "Simulator | None" = None,
        pane_seconds: float = 300.0,
        allowed_lateness: float = 1800.0,
        cell_deg: float = 0.005,
        grid: SpatialGrid | None = None,
        history: int = 64,
        alert_capacity: int = 256,
    ):
        if pane_seconds <= 0:
            raise StreamError(f"pane size must be positive: {pane_seconds}")
        if allowed_lateness < 0:
            raise StreamError(f"allowed lateness must be >= 0: {allowed_lateness}")
        if history < 1:
            raise StreamError(f"view history must hold >= 1 window: {history}")
        self._sim = sim
        self.pane_seconds = pane_seconds
        self.allowed_lateness = allowed_lateness
        self.cell_deg = cell_deg
        #: Optional study-area grid: cells become grid ``(row, col)``
        #: indices (clamped to the area) instead of global lat/lon
        #: quantization — matches heatmaps built on the same grid.
        self.grid = grid
        self.history = history
        self._views: dict[str, WindowSpec] = {}
        self._queries: dict[str, list[ContinuousQuery]] = {}
        self._panes: dict[str, dict[int, PaneStats]] = {}
        self._tasks: set[str] = set()
        self._history: dict[tuple[str, str], "list[WindowSnapshot]"] = {}
        self._window_callbacks: list[WindowCallback] = []
        self._closed_pane = 0  # panes [0, _closed_pane) are closed
        self._max_event_time = float("-inf")
        self.alerts = AlertLog(capacity=alert_capacity)
        self.stats = StreamStats()
        self._last_window_rate = 0.0
        self.obs = StreamInstruments(obs.metrics_registry(), obs.next_instance("stream"))
        # Callback-backed: the scraper reads the live watermark without
        # the engine ever touching the gauge on its hot path.
        self.obs.watermark.set_function(lambda: self.watermark)
        self._tracer = obs.tracer()
        #: Trace lineage parked per (task, pane): ``{trace_id: [times]}``
        #: of the traced records folded into each open pane, attached to
        #: the ``stream.window`` span when the pane's windows close and
        #: dropped with the pane at the stale horizon.
        self._traced_panes: dict[tuple[str, int], dict[int, list[float]]] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, pipeline: "IngestPipeline") -> "StreamEngine":
        """Subscribe to a pipeline's flushes; returns self for chaining."""
        pipeline.add_listener(self.on_flush)
        return self

    def bind_clock(self, sim: "Simulator") -> "StreamEngine":
        """Late-bind the simulator clock (ingest-lag views, alert times).

        Engines built before their deployment's simulator exists (the
        CLI replay path) bind here; an engine without a clock skips lag
        tracking and stamps alerts with the closing window's end.
        """
        self._sim = sim
        return self

    def register_view(self, name: str, spec: WindowSpec) -> None:
        """Register a windowed view; its windows must align to panes."""
        if name in self._views:
            raise StreamError(f"view {name!r} already registered")
        ratio = spec.slide / self.pane_seconds
        if abs(ratio - round(ratio)) > 1e-9 or round(ratio) < 1:
            raise StreamError(
                f"view {name!r} slide {spec.slide} must be a positive "
                f"multiple of the engine pane ({self.pane_seconds}s)"
            )
        if self.stats.records_seen or self._closed_pane:
            # Records absorbed while no view existed were not paned (the
            # no-view fast path skips them), so a view registered now
            # would silently under-count its first windows.
            raise StreamError(
                f"cannot register view {name!r} after streaming began; "
                "register views before the first record arrives"
            )
        self._views[name] = spec

    def register_query(
        self,
        view: str,
        query: ContinuousQuery,
    ) -> ContinuousQuery:
        """Attach a continuous query to a registered view's window closes."""
        if view not in self._views:
            raise StreamError(f"cannot register query on unknown view {view!r}")
        self._queries.setdefault(view, []).append(query)
        return query

    def on_window(self, callback: WindowCallback) -> None:
        """Observe every closed window (live dashboards, CLI watch)."""
        self._window_callbacks.append(callback)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def views(self) -> dict[str, WindowSpec]:
        return dict(self._views)

    @property
    def tasks(self) -> list[str]:
        return sorted(self._tasks)

    @property
    def active_view_count(self) -> int:
        """Materialized (task, view) histories currently maintained."""
        return len(self._history)

    @property
    def last_window_rate(self) -> float:
        """Total record rate (rec/s) across tasks of the newest closed
        window of the first registered view (the dashboard headline)."""
        return self._last_window_rate

    @property
    def watermark(self) -> float:
        """Event time up to which windows are final."""
        return self._max_event_time - self.allowed_lateness

    def latest(self, task: str, view: str) -> WindowSnapshot | None:
        """The most recently closed window of one (task, view), if any."""
        history = self._history.get((task, view))
        return history[-1] if history else None

    def snapshots(self, task: str, view: str) -> list[WindowSnapshot]:
        """The retained closed windows of one (task, view), oldest first."""
        if view not in self._views:
            raise StreamError(f"unknown view {view!r}")
        return list(self._history.get((task, view), ()))

    # ------------------------------------------------------------------
    # Ingest path (pipeline flush listener)
    # ------------------------------------------------------------------

    def on_flush(self, records: "list[SensorRecord]") -> None:
        """Absorb one flushed batch into the open panes — O(batch)."""
        self.stats.records_seen += len(records)
        self.obs.records_seen.inc(len(records))
        if not self._views:
            return  # nothing materialized; stay free for idle deployments
        pane = self.pane_seconds
        closed_edge = self._closed_pane * pane
        max_seen = self._max_event_time
        tracing = self._tracer.enabled
        for record in records:
            t = record.time
            if t > max_seen:
                max_seen = t
            if t < closed_edge:
                self.stats.late_records += 1
                self.obs.late_records.inc()
                continue
            self._tasks.add(record.task)
            index = int(t // pane)
            panes = self._panes.setdefault(record.task, {})
            stats = panes.get(index)
            if stats is None:
                stats = panes[index] = PaneStats(index * pane, (index + 1) * pane)
            cell = None
            value = None
            gps = record.values.get("gps")
            if isinstance(gps, GeoPoint):
                cell = (
                    self.grid.cell_of(gps)
                    if self.grid is not None
                    else (
                        math.floor(gps.lat / self.cell_deg),
                        math.floor(gps.lon / self.cell_deg),
                    )
                )
            for name, item in record.values.items():
                if name == "gps" or isinstance(item, bool):
                    continue
                if isinstance(item, (int, float)):
                    value = float(item)
                    break
            lag = None
            if self._sim is not None:
                lag = max(0.0, self._sim.now - t)
            stats.update(record.user, cell, value, lag)
            if tracing and record.trace_id is not None:
                pane_traces = self._traced_panes.setdefault((record.task, index), {})
                pane_traces.setdefault(record.trace_id, []).append(t)
        self._max_event_time = max_seen
        self._close_ready_panes()

    def advance_watermark(self, event_time: float) -> None:
        """Declare event time reached ``event_time`` without records.

        Lets idle periods close (empty) windows — silence must be
        observable for ``rate_below`` queries and dashboards.
        """
        self._max_event_time = max(self._max_event_time, event_time)
        self._close_ready_panes()

    def finalize(self) -> None:
        """Close out every window containing data (campaign teardown).

        Advances through each view's next close boundary past the last
        record, so trailing partially-filled windows are emitted too.
        Ignores ``allowed_lateness``: after the pipeline's
        ``flush_all()`` nothing is in flight any more.
        """
        if math.isinf(self._max_event_time) or not self._views:
            return
        edge = 0.0
        for spec in self._views.values():
            # Strictly past the last record: a record stamped exactly on
            # a slide boundary belongs to the *next* pane (panes are
            # half-open), so windows containing that pane must be
            # emitted too — for a sliding view the record appears in
            # ``panes_per_window`` windows, the last of which closes
            # ``size - slide`` after the first.
            boundary = (
                math.floor(self._max_event_time / spec.slide + 1e-9) + 1
            ) * spec.slide + (spec.size - spec.slide)
            edge = max(edge, max(boundary, spec.size))
        last = int(round(edge / self.pane_seconds))
        self._close_through(max(last, self._closed_pane))

    # ------------------------------------------------------------------
    # Window close path
    # ------------------------------------------------------------------

    def _close_ready_panes(self) -> None:
        if not self._views or math.isinf(self._max_event_time):
            return
        watermark = self._max_event_time - self.allowed_lateness
        ready = int(math.floor(watermark / self.pane_seconds + 1e-9))
        if ready > self._closed_pane:
            self._close_through(ready)

    def _close_through(self, pane_index: int) -> None:
        """Process every pane boundary up to ``pane_index * pane_seconds``."""
        max_size = max(spec.size for spec in self._views.values())
        for index in range(self._closed_pane + 1, pane_index + 1):
            boundary = index * self.pane_seconds
            self.stats.panes_closed += 1
            for view_name, spec in self._views.items():
                if spec.closes_at(boundary):
                    self._emit_windows(view_name, spec, boundary)
            # Drop panes no future window can include.
            horizon = boundary + self.pane_seconds - max_size
            for task, panes in self._panes.items():
                stale = [i for i, p in panes.items() if p.end <= horizon]
                for i in stale:
                    del panes[i]
                    self._traced_panes.pop((task, i), None)
        self._closed_pane = pane_index

    def _emit_windows(self, view_name: str, spec: WindowSpec, boundary: float) -> None:
        start, end = spec.window_at(boundary)
        first_pane = int(round(start / self.pane_seconds))
        last_pane = int(round(end / self.pane_seconds))
        primary = next(iter(self._views))
        total_records = 0
        timed = self.obs.registry.enabled
        started = _time.perf_counter() if timed else 0.0
        for task in sorted(self._tasks):
            panes = self._panes.get(task, {})
            span = [panes[i] for i in range(first_pane, last_pane) if i in panes]
            snapshot = snapshot_from_panes(task, view_name, start, end, span)
            if self._tracer.enabled:
                self._trace_window(task, view_name, start, end, first_pane, last_pane)
            history = self._history.setdefault((task, view_name), [])
            self._evaluate_queries(view_name, snapshot, history)
            history.append(snapshot)
            if len(history) > self.history:
                del history[0]
            self.stats.windows_emitted += 1
            self.obs.windows_closed.inc()
            total_records += snapshot.records
            for callback in self._window_callbacks:
                callback(snapshot)
        if timed:
            self.obs.window_close_seconds.observe(_time.perf_counter() - started)
        if view_name == primary and self._tasks:
            self._last_window_rate = total_records / spec.size

    def _trace_window(
        self,
        task: str,
        view_name: str,
        start: float,
        end: float,
        first_pane: int,
        last_pane: int,
    ) -> None:
        """Emit one ``stream.window`` span carrying the closing window's
        traced-record lineage (a sliding view legitimately claims the
        same record in ``size/slide`` consecutive windows)."""
        lineage: dict[int, list[float]] = {}
        for index in range(first_pane, last_pane):
            for tid, times in self._traced_panes.get((task, index), {}).items():
                lineage.setdefault(tid, []).extend(times)
        if not lineage:
            return
        with self._tracer.span(
            "stream.window", task=task, view=view_name, start=start, end=end
        ) as handle:
            handle.add_records(lineage)

    def _evaluate_queries(
        self,
        view_name: str,
        snapshot: WindowSnapshot,
        history: Sequence[WindowSnapshot],
    ) -> None:
        for query in self._queries.get(view_name, ()):  # registered order
            if not query.applies_to(snapshot.task):
                continue
            self.stats.queries_evaluated += 1
            message = query.evaluate(snapshot, history)
            if message is None:
                continue
            self.stats.alerts_fired += 1
            self.obs.alerts.inc()
            self.alerts.append(
                StreamAlert(
                    time=self._sim.now if self._sim is not None else snapshot.end,
                    task=snapshot.task,
                    view=view_name,
                    query=query.name,
                    window=(snapshot.start, snapshot.end),
                    message=message,
                )
            )
