"""Windowed materialized views: pane state and window snapshots.

The engine keeps one :class:`PaneStats` per (task, pane) and updates it
O(1) per record at flush time; every registered windowed view is
assembled *at window close* by merging the panes it spans into a
:class:`WindowSnapshot`.  A snapshot is therefore a real materialized
view — record rate, geo-cell coverage, per-user activity, and P²
value/lag percentiles for that window — computed without ever
re-scanning the columnar store.

Snapshots keep their mergeable state (user counts, cell sets, P²
sketches) so the federation tier can fold member-hive snapshots of the
same window into one federation-wide view (count-sum, cell-union,
P²-merge; see :class:`repro.federation.streams.FederatedStreamMerger`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import StreamError
from repro.store.quantiles import P2Quantile

#: The quantiles every view tracks for record values and ingest lag.
VIEW_QUANTILES = (0.50, 0.95)

CellIndex = tuple[int, int]


class PaneStats:
    """Accumulated statistics of one task over one pane of the stream."""

    __slots__ = ("start", "end", "records", "value_count", "value_sum",
                 "user_counts", "cells", "value_sketches", "lag_sketches")

    def __init__(self, start: float, end: float):
        self.start = start
        self.end = end
        self.records = 0
        self.value_count = 0
        self.value_sum = 0.0
        self.user_counts: dict[str, int] = {}
        self.cells: set[CellIndex] = set()
        self.value_sketches = {p: P2Quantile(p) for p in VIEW_QUANTILES}
        self.lag_sketches = {p: P2Quantile(p) for p in VIEW_QUANTILES}

    def update(
        self,
        user: str,
        cell: CellIndex | None,
        value: float | None,
        lag: float | None,
    ) -> None:
        """Absorb one record (O(1))."""
        self.records += 1
        self.user_counts[user] = self.user_counts.get(user, 0) + 1
        if cell is not None:
            self.cells.add(cell)
        if value is not None:
            self.value_count += 1
            self.value_sum += value
            for sketch in self.value_sketches.values():
                sketch.add(value)
        if lag is not None:
            for sketch in self.lag_sketches.values():
                sketch.add(lag)


@dataclass(frozen=True)
class WindowSnapshot:
    """One closed window of one task's windowed view.

    Aggregate readings are plain attributes/properties; the mergeable
    state (``user_counts``, ``cells``, sketches) rides along so member
    snapshots can be folded across a federation.
    """

    task: str
    view: str
    start: float
    end: float
    records: int
    user_counts: Mapping[str, int]
    cells: frozenset[CellIndex]
    value_quantiles: Mapping[float, P2Quantile]
    lag_quantiles: Mapping[float, P2Quantile]
    #: Additive scalar-value state: records carrying a scalar value and
    #: their sum.  Exactly mergeable (unlike the sketches), which is
    #: what the federation's *secure* window fold aggregates.
    value_count: int = 0
    value_sum: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def mean_value(self) -> float:
        """Mean scalar value over the window (0.0 when none were seen)."""
        return self.value_sum / self.value_count if self.value_count else 0.0

    @property
    def rate(self) -> float:
        """Record rate over the window, in records/second."""
        return self.records / self.duration if self.duration else 0.0

    @property
    def n_users(self) -> int:
        return len(self.user_counts)

    @property
    def coverage_cells(self) -> int:
        return len(self.cells)

    def top_users(self, k: int = 5) -> tuple[tuple[str, int], ...]:
        """The ``k`` most active users of the window, most active first."""
        ranked = sorted(self.user_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return tuple(ranked[:k])

    def value_quantile(self, p: float) -> float:
        """The window's value percentile (0.0 when no values were seen)."""
        sketch = self.value_quantiles.get(p)
        return sketch.value() if sketch is not None and len(sketch) else 0.0

    def lag_quantile(self, p: float) -> float:
        """The window's ingest-lag percentile (0.0 when lag untracked)."""
        sketch = self.lag_quantiles.get(p)
        return sketch.value() if sketch is not None and len(sketch) else 0.0

    def to_text(self) -> str:
        top = ", ".join(f"{u}:{c}" for u, c in self.top_users(3))
        return (
            f"[{self.start:.0f},{self.end:.0f})s {self.task}/{self.view}: "
            f"{self.records} rec ({self.rate:.2f}/s) from {self.n_users} users, "
            f"{self.coverage_cells} cells, value p50/p95 "
            f"{self.value_quantile(0.50):.2f}/{self.value_quantile(0.95):.2f}, "
            f"lag p95 {self.lag_quantile(0.95):.1f}s"
            + (f", top [{top}]" if top else "")
        )


def _fold_window(
    task: str,
    view: str,
    start: float,
    end: float,
    parts: Sequence[tuple[int, int, float, Mapping[str, int],
                          "frozenset[CellIndex] | set[CellIndex]",
                          Mapping[float, P2Quantile], Mapping[float, P2Quantile]]],
) -> WindowSnapshot:
    """The one fold both assembly paths share.

    ``parts`` are ``(records, value_count, value_sum, user_counts,
    cells, value_sketches, lag_sketches)`` tuples — pane slices of one
    engine or same-window snapshots of federation members.  Keeping a
    single fold is what guarantees pane-assembly and cross-hive merging
    stay semantically identical (merged members == monolithic engine).
    """
    user_counts: dict[str, int] = {}
    cells: set[CellIndex] = set()
    for _records, _vc, _vs, part_users, part_cells, _vq, _lq in parts:
        for user, count in part_users.items():
            user_counts[user] = user_counts.get(user, 0) + count
        cells |= part_cells
    value_q = {
        p: P2Quantile.merge([vq[p] for *_head, vq, _lq in parts] or [P2Quantile(p)])
        for p in VIEW_QUANTILES
    }
    lag_q = {
        p: P2Quantile.merge([lq[p] for *_head, lq in parts] or [P2Quantile(p)])
        for p in VIEW_QUANTILES
    }
    return WindowSnapshot(
        task=task,
        view=view,
        start=start,
        end=end,
        records=sum(records for records, *_rest in parts),
        user_counts=user_counts,
        cells=frozenset(cells),
        value_quantiles=value_q,
        lag_quantiles=lag_q,
        value_count=sum(part[1] for part in parts),
        value_sum=sum(part[2] for part in parts),
    )


def snapshot_from_panes(
    task: str,
    view: str,
    start: float,
    end: float,
    panes: Sequence[PaneStats],
) -> WindowSnapshot:
    """Assemble one window by merging the panes it spans.

    ``panes`` may be empty (an idle window still closes, with zero
    records) — dashboards and ``rate_below`` queries depend on empty
    windows being observable.
    """
    return _fold_window(
        task,
        view,
        start,
        end,
        [
            (p.records, p.value_count, p.value_sum, p.user_counts, p.cells,
             p.value_sketches, p.lag_sketches)
            for p in panes
        ],
    )


def merge_snapshots(snapshots: Sequence[WindowSnapshot]) -> WindowSnapshot:
    """Fold same-window snapshots from different sources into one.

    The federation merger uses this: counts sum, user activity sums,
    cells union, sketches P²-merge.  All snapshots must describe the
    same (task, view, start, end) window.
    """
    if not snapshots:
        raise StreamError("cannot merge zero window snapshots")
    head = snapshots[0]
    for other in snapshots[1:]:
        if (other.task, other.view, other.start, other.end) != (
            head.task, head.view, head.start, head.end,
        ):
            raise StreamError(
                "cannot merge snapshots of different windows: "
                f"{(head.task, head.view, head.start, head.end)} vs "
                f"{(other.task, other.view, other.start, other.end)}"
            )
    return _fold_window(
        head.task,
        head.view,
        head.start,
        head.end,
        [
            (s.records, s.value_count, s.value_sum, s.user_counts, s.cells,
             s.value_quantiles, s.lag_quantiles)
            for s in snapshots
        ],
    )
