"""Continuous queries: standing predicates over closing windows.

Batch analytics ask "what happened?"; a sensing campaign operator asks
"tell me *when* something happens" — the defining middleware service of
context-aware platforms is the continuous query, not the batch pull.
A :class:`ContinuousQuery` is a named predicate evaluated every time a
window of its view closes; when it fires, the engine appends a
:class:`StreamAlert` to its bounded :class:`AlertLog`, which the
monitoring dashboard surfaces (unacknowledged count) and operators
drain with :meth:`AlertLog.acknowledge`.

Built-in predicate factories cover the common campaign pathologies:

- :func:`rate_below` — the crowd stopped contributing (device churn,
  transport outage, task expiry);
- :func:`coverage_stalled` — records keep arriving but explore no new
  territory (the crowd is sitting still; recruit elsewhere);
- :func:`percentile_above` — a value or ingest-lag percentile crossed a
  threshold (sensor anomaly / pipeline congestion).

Custom predicates are plain callables ``(snapshot, history) -> str |
None`` returning the alert message when firing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import StreamError
from repro.streams.views import WindowSnapshot

#: A predicate sees the closing window and the view's earlier snapshots
#: (most recent last) and returns the alert message, or None.
QueryPredicate = Callable[[WindowSnapshot, Sequence[WindowSnapshot]], "str | None"]


@dataclass(frozen=True)
class StreamAlert:
    """One firing of a continuous query."""

    time: float
    task: str
    view: str
    query: str
    window: tuple[float, float]
    message: str

    def to_text(self) -> str:
        return (
            f"t={self.time:.0f}s [{self.query}] {self.task}/{self.view} "
            f"window [{self.window[0]:.0f},{self.window[1]:.0f}): {self.message}"
        )


class ContinuousQuery:
    """A named standing predicate bound to one windowed view.

    ``tasks`` restricts evaluation to the named tasks (None = every
    task the view tracks).
    """

    def __init__(
        self,
        name: str,
        predicate: QueryPredicate,
        tasks: Sequence[str] | None = None,
    ):
        if not name:
            raise StreamError("continuous query needs a non-empty name")
        self.name = name
        self.predicate = predicate
        self.tasks = frozenset(tasks) if tasks is not None else None
        self.evaluations = 0
        self.fires = 0

    def applies_to(self, task: str) -> bool:
        return self.tasks is None or task in self.tasks

    def evaluate(
        self, snapshot: WindowSnapshot, history: Sequence[WindowSnapshot]
    ) -> str | None:
        self.evaluations += 1
        message = self.predicate(snapshot, history)
        if message is not None:
            self.fires += 1
        return message


class AlertLog:
    """Bounded log of stream alerts (drop-oldest under overflow).

    The monitoring tier reads :attr:`unacknowledged`; operators consume
    alerts with :meth:`acknowledge`.  Overflow never blocks the stream:
    the oldest alerts are evicted and counted in :attr:`dropped`.
    """

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise StreamError(f"alert log capacity must be positive: {capacity}")
        self.capacity = capacity
        self._alerts: deque[StreamAlert] = deque()
        self.total = 0
        self.dropped = 0
        self._acknowledged = 0

    def __len__(self) -> int:
        return len(self._alerts)

    def append(self, alert: StreamAlert) -> None:
        if len(self._alerts) >= self.capacity:
            self._alerts.popleft()
            self.dropped += 1
            # The evicted alert can no longer be acknowledged.
            self._acknowledged = max(0, self._acknowledged - 1)
        self._alerts.append(alert)
        self.total += 1

    @property
    def unacknowledged(self) -> int:
        """Alerts appended (and still retained) but not yet acknowledged."""
        return len(self._alerts) - self._acknowledged

    def acknowledge(self, n: int | None = None) -> int:
        """Mark the oldest ``n`` retained alerts (default: all) as seen."""
        fresh = self.unacknowledged
        taken = fresh if n is None else max(0, min(n, fresh))
        self._acknowledged += taken
        return taken

    def alerts(self, unacknowledged_only: bool = False) -> list[StreamAlert]:
        """The retained alerts, oldest first."""
        items = list(self._alerts)
        if unacknowledged_only:
            items = items[self._acknowledged:]
        return items


# ----------------------------------------------------------------------
# Built-in predicate factories
# ----------------------------------------------------------------------


def rate_below(threshold: float) -> QueryPredicate:
    """Fire when a window's record rate drops below ``threshold`` rec/s."""
    if threshold <= 0:
        raise StreamError(f"rate threshold must be positive: {threshold}")

    def predicate(snapshot: WindowSnapshot, history: Sequence[WindowSnapshot]):
        if snapshot.rate < threshold:
            return (
                f"record rate {snapshot.rate:.3f}/s below {threshold:.3f}/s "
                f"({snapshot.records} records in {snapshot.duration:.0f}s)"
            )
        return None

    return predicate


def coverage_stalled(windows: int = 3) -> QueryPredicate:
    """Fire when ``windows`` consecutive windows explored no new cell.

    "New" is relative to everything the view covered before the probed
    run of windows; an all-idle run does not fire (that is
    :func:`rate_below`'s job — silence is not a coverage problem).
    """
    if windows < 1:
        raise StreamError(f"coverage_stalled needs >= 1 window: {windows}")

    def predicate(snapshot: WindowSnapshot, history: Sequence[WindowSnapshot]):
        if len(history) < windows:
            return None  # not enough history to judge a stall
        # The probed run: the closing window plus the windows-1 before it.
        run = list(history[len(history) - (windows - 1):]) + [snapshot]
        if not any(w.records for w in run):
            return None
        seen: set = set()
        for earlier in history[: len(history) - (windows - 1)]:
            seen |= earlier.cells
        if not seen:
            return None  # view never covered anything: nothing to stall against
        fresh = set().union(*(w.cells for w in run)) - seen
        if not fresh:
            return (
                f"no new coverage cell in {windows} windows "
                f"({len(seen)} cells total)"
            )
        return None

    return predicate


def percentile_above(
    metric: str, p: float, threshold: float
) -> QueryPredicate:
    """Fire when the window's ``metric`` (``value``/``lag``) p-percentile exceeds ``threshold``."""
    if metric not in ("value", "lag"):
        raise StreamError(f"unknown percentile metric {metric!r}; 'value' or 'lag'")

    def predicate(snapshot: WindowSnapshot, history: Sequence[WindowSnapshot]):
        reading = (
            snapshot.value_quantile(p) if metric == "value" else snapshot.lag_quantile(p)
        )
        if reading > threshold:
            return f"{metric} p{int(p * 100)} {reading:.2f} above {threshold:.2f}"
        return None

    return predicate
