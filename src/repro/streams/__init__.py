"""``repro.streams``: the live streaming analytics tier.

Every analytic the platform had so far (coverage, percentiles, OD
matrices) was a batch scan over the columnar store *after* a campaign;
this tier lets scientists watch a campaign **as it runs** — the
continuous-query middleware service the context-aware literature calls
out as defining, built over the ingest pipeline's existing flush tap:

- :class:`~repro.streams.windows.WindowSpec` — tumbling / sliding
  window geometry over simulated event time;
- :class:`~repro.streams.engine.StreamEngine` — incrementally-updated
  windowed materialized views (per-task record rates, geo-cell
  coverage, P² value/lag percentiles, per-user activity top-K), O(batch)
  at flush time with no store re-scan, state shared across views via
  panes so registering more views adds no per-record cost;
- :class:`~repro.streams.queries.ContinuousQuery` — standing predicates
  (:func:`~repro.streams.queries.rate_below`,
  :func:`~repro.streams.queries.coverage_stalled`,
  :func:`~repro.streams.queries.percentile_above`, custom callables)
  evaluated on window close, emitting
  :class:`~repro.streams.queries.StreamAlert`\\ s into a bounded
  :class:`~repro.streams.queries.AlertLog` surfaced by ``monitoring``;
- window snapshots are **mergeable** (count-sum, cell-union, P²-merge),
  which is what lets :class:`repro.federation.streams.
  FederatedStreamMerger` expose one live dashboard over a multi-hive
  deployment.

Every :class:`~repro.apisense.hive.Hive` owns a stream engine attached
to its ingest pipeline (``hive.streams``); ``python -m repro stream``
drives the same machinery from the shell.
"""

from repro.streams.engine import StreamEngine, StreamStats
from repro.streams.queries import (
    AlertLog,
    ContinuousQuery,
    StreamAlert,
    coverage_stalled,
    percentile_above,
    rate_below,
)
from repro.streams.views import (
    VIEW_QUANTILES,
    PaneStats,
    WindowSnapshot,
    merge_snapshots,
    snapshot_from_panes,
)
from repro.streams.windows import WindowSpec

__all__ = [
    "AlertLog",
    "ContinuousQuery",
    "PaneStats",
    "StreamAlert",
    "StreamEngine",
    "StreamStats",
    "VIEW_QUANTILES",
    "WindowSnapshot",
    "WindowSpec",
    "coverage_stalled",
    "merge_snapshots",
    "percentile_above",
    "rate_below",
    "snapshot_from_panes",
]
