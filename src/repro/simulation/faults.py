"""Fault injection: scheduled component outages on the event loop.

Scale-out work needs failure *scenarios*, not just failure handling: a
federation member crashing mid-campaign, a gateway going dark for an
hour, a backend flapping.  The :class:`FaultInjector` scripts those as
ordinary simulator events — a named component goes down at a time, comes
back after a duration — and keeps an auditable log, so experiments can
assert on what failed when.

The injector is deliberately mechanism-agnostic: it fires the callbacks
it is given and records the transitions; what "down" means (re-homing
devices, refusing uploads, dropping gossip) is the calling subsystem's
business — see :meth:`repro.federation.FederationRouter.schedule_failure`
for the flagship user.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import SimulationError
from repro.simulation.engine import CancelToken, Simulator


@dataclass(frozen=True)
class FaultEvent:
    """One logged transition of one component."""

    time: float
    component: str
    kind: str  # "down" | "up"


class FaultInjector:
    """Schedules scripted outages of named components."""

    def __init__(self, sim: Simulator):
        self._sim = sim
        self.log: list[FaultEvent] = []
        self._down: set[str] = set()

    @property
    def down_components(self) -> list[str]:
        """Components currently down (sorted for determinism)."""
        return sorted(self._down)

    def is_down(self, component: str) -> bool:
        return component in self._down

    def schedule_outage(
        self,
        component: str,
        at: float,
        duration: float | None = None,
        on_down: Callable[[], None] | None = None,
        on_up: Callable[[], None] | None = None,
    ) -> tuple[CancelToken, CancelToken | None]:
        """Take ``component`` down at ``at``; bring it back after ``duration``.

        ``duration=None`` is a permanent outage.  Returns the cancel
        tokens of the down event and (when scheduled) the recovery
        event, so a scenario can be revoked before it fires.
        """
        if duration is not None and duration <= 0:
            raise SimulationError(f"outage duration must be positive: {duration}")

        def go_down() -> None:
            if component in self._down:
                return  # overlapping scripts: already down, nothing to do
            self._down.add(component)
            self.log.append(FaultEvent(self._sim.now, component, "down"))
            if on_down is not None:
                on_down()

        def come_up() -> None:
            if component not in self._down:
                return
            self._down.discard(component)
            self.log.append(FaultEvent(self._sim.now, component, "up"))
            if on_up is not None:
                on_up()

        down_token = self._sim.schedule_at(at, go_down)
        up_token = None
        if duration is not None:
            up_token = self._sim.schedule_at(at + duration, come_up)
        return down_token, up_token
