"""Deterministic discrete-event simulation engine.

Replaces the paper's physical deployment substrate (Android devices,
radios, wall-clock time) with a reproducible event loop.  The platform
layer schedules sampling ticks, uploads and user behaviour as events;
identical seeds yield identical campaigns.
"""

from repro.simulation.engine import Simulator, CancelToken
from repro.simulation.faults import FaultEvent, FaultInjector

__all__ = ["Simulator", "CancelToken", "FaultInjector", "FaultEvent"]
