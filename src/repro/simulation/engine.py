"""The event loop: a time-ordered heap of callbacks."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError


@dataclass
class CancelToken:
    """Handle returned by ``schedule*``; call :meth:`cancel` to revoke."""

    cancelled: bool = False

    def cancel(self) -> None:
        self.cancelled = True


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    token: CancelToken = field(compare=False)


class Simulator:
    """A deterministic discrete-event simulator.

    Events fire in (time, insertion-order) order, so same-time events are
    processed FIFO — determinism matters more than fairness here.  All
    times are seconds on the same axis as mobility data (0 = midnight of
    day 0).
    """

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._heap: list[_Event] = []
        self._counter = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def pending(self) -> int:
        """Events still queued (including cancelled ones not yet popped)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule_at(self, time: float, callback: Callable[[], None]) -> CancelToken:
        """Run ``callback`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}; simulation time is already {self._now}"
            )
        token = CancelToken()
        heapq.heappush(self._heap, _Event(time, next(self._counter), callback, token))
        return token

    def schedule(self, delay: float, callback: Callable[[], None]) -> CancelToken:
        """Run ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_periodic(
        self,
        period: float,
        callback: Callable[[], None],
        until: float | None = None,
        first_at: float | None = None,
    ) -> CancelToken:
        """Run ``callback`` every ``period`` seconds until ``until``.

        Cancellation via the returned token stops future firings.  The
        callback may itself cancel the token to stop the series.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive: {period}")
        token = CancelToken()
        start = self._now + period if first_at is None else first_at

        def fire() -> None:
            if token.cancelled:
                return
            callback()
            next_time = self._now + period
            if until is None or next_time <= until:
                event = _Event(next_time, next(self._counter), fire, token)
                heapq.heappush(self._heap, event)

        if until is None or start <= until:
            heapq.heappush(self._heap, _Event(start, next(self._counter), fire, token))
        return token

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.token.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._processed += 1
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Process every event with ``time <= end_time``.

        Simulation time ends at exactly ``end_time`` even if the queue
        drains earlier, so periodic reports align across runs.
        """
        if end_time < self._now:
            raise SimulationError(
                f"cannot run to {end_time}; simulation time is already {self._now}"
            )
        while self._heap and self._heap[0].time <= end_time:
            self.step()
        self._now = end_time

    def run(self, max_events: int = 10_000_000) -> None:
        """Process events until the queue is empty (bounded by a fuse)."""
        for _ in range(max_events):
            if not self.step():
                return
        raise SimulationError(f"simulation exceeded {max_events} events; runaway loop?")
