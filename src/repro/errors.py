"""Exception hierarchy shared by every ``repro`` subsystem.

All library-raised errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries while still discriminating on
the specific failure when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class GeoError(ReproError):
    """Invalid geographic input (bad latitude/longitude, empty geometry...)."""


class TrajectoryError(ReproError):
    """A trajectory violates its invariants (unsorted, empty, mixed users)."""


class MechanismError(ReproError):
    """A privacy mechanism was misconfigured or cannot process its input."""


class CryptoError(ReproError):
    """Cryptographic failure: bad key sizes, ciphertext mismatch, etc."""


class ProtocolError(ReproError):
    """A multi-party protocol was driven through an illegal state sequence."""


class SimulationError(ReproError):
    """The discrete-event simulator was misused (time travel, re-run...)."""


class PlatformError(ReproError):
    """APISENSE platform errors: unknown device, duplicate task, routing."""


class TaskValidationError(PlatformError):
    """A crowd-sensing task description failed static validation."""


class PrivacyRequirementError(ReproError):
    """PRIVAPI could not satisfy the requested privacy/utility constraints."""


class StoreError(ReproError):
    """Dataset store / ingestion pipeline misuse (bad shard, policy...)."""


class StreamError(ReproError):
    """Streaming tier misuse (bad window geometry, unknown view/query...)."""


class ServerError(ReproError):
    """Serving tier misuse (bad middleware result, unknown surface...)."""


class ObsError(ReproError):
    """Observability misuse (metric re-registered with a different shape,
    bad label set, unknown instrument...)."""
