"""The asyncio serving tier: three surfaces behind one middleware chain.

:class:`ReproServer` puts the in-process platform behind a concurrent
API.  Three surfaces, all gated by the same
:class:`~repro.server.middleware.MiddlewareChain`:

- **ingest** — upload batches feed :meth:`repro.apisense.hive.Hive.
  receive_upload` (or the federation router's data plane), and the
  response maps the pipeline's accept/reject/drop/spill counters back
  to the uploading connection — backpressure is an API status, not a
  silent shed;
- **query** — federated batch reads: :meth:`repro.federation.query.
  FederatedDataset.aggregate` and the privacy tier's
  :meth:`~repro.federation.query.FederatedDataset.secure_aggregate`,
  request/response;
- **channel** — the live dashboard: sessions subscribe to streaming
  views and the server pushes every closing
  :class:`~repro.streams.views.WindowSnapshot` (and
  :class:`~repro.streams.queries.StreamAlert`) to every matching
  subscriber, **exactly once per subscriber per window close**, with
  optional late-subscriber catch-up from the engine's retained history.
  Per-subscriber send queues are bounded; a slow consumer loses the
  *oldest* queued pushes, counted per subscription — never silently.

The platform itself stays on the deterministic simulator clock: window
closes happen synchronously inside simulator events and only *enqueue*
pushes; the asyncio side (sender tasks, client readers) drains between
simulation slices — :meth:`ReproServer.drive` interleaves the two.
Tests and benchmarks run the whole protocol over the socketless
:class:`~repro.server.transport.InProcessTransport`; a deployment binds
the identical protocol to TCP via :meth:`ReproServer.serve_tcp`.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro import obs as _obs
from repro.errors import ReproError, ServerError
from repro.obs.instruments import ServerInstruments
from repro.server.middleware import (
    ChannelMessage,
    ChainResult,
    ConnectRequest,
    Deny,
    MiddlewareChain,
    Ok,
    Redirect,
    ServerMiddleware,
    ServerRequest,
)
from repro.server.protocol import (
    aggregate_digest,
    alert_digest,
    decode_record,
    secure_aggregate_digest,
    snapshot_digest,
)
from repro.server.sessions import ObsWatch, Session, Subscription
from repro.server.transport import (
    Endpoint,
    InProcessTransport,
    Message,
    serve_tcp,
)
from repro.streams.engine import StreamEngine
from repro.streams.views import WindowSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.apisense.hive import Hive
    from repro.federation.router import FederationRouter
    from repro.federation.streams import FederatedStreamMerger
    from repro.federation.timeseries import FederationScraper
    from repro.obs.slo import ObsAlert, SLODefinition, SLOTracker
    from repro.obs.timeseries import MetricsScraper, ScrapeFrame
    from repro.simulation import Simulator

#: The request surfaces the middleware chain's ``request`` hook gates.
#: ``obs`` is the observability surface: registry exposition, hot-path
#: table, trace browsing (read-only; auth scopes gate it like any other).
SURFACES = ("ingest", "query", "obs")


@dataclass
class ServerStats:
    """Counters of one serving tier (monotonic; see :meth:`ReproServer.metrics`)."""

    connections: int = 0
    sessions_closed: int = 0
    denials_connect: int = 0
    denials_request: int = 0
    denials_channel: int = 0
    redirects: int = 0
    requests_ingest: int = 0
    requests_query: int = 0
    requests_obs: int = 0
    channel_messages: int = 0
    subscriptions_total: int = 0
    pushes_enqueued: int = 0
    catchup_snapshots: int = 0
    alerts_pushed: int = 0
    alert_gaps: int = 0
    merged_windows: int = 0
    watches_total: int = 0
    obs_frames_pushed: int = 0
    obs_alerts_pushed: int = 0

    @property
    def denials(self) -> int:
        """Middleware denials across all three hooks."""
        return self.denials_connect + self.denials_request + self.denials_channel


@dataclass(frozen=True)
class ServerMetrics:
    """One dashboard-ready reading of the serving tier's health."""

    sessions_active: int
    sessions_total: int
    subscriptions_active: int
    subscriptions_total: int
    pushes_sent: int
    pushes_dropped: int
    denials: int
    alerts_pushed: int
    alert_gaps: int


class ReproServer:
    """The serving tier over one Hive — or a whole federation.

    Exactly one of ``hive`` / ``router`` / ``engine`` anchors the
    server:

    - ``hive`` — ingest feeds the hive's pipeline, queries read its
      store, the channel pushes its stream engine's windows;
    - ``router`` — ingest routes through the federation's placement
      ring, queries fan out over every member store, and the channel
      pushes **merged** federation-wide windows (one push per window,
      folded across members once every member closed it);
    - ``engine`` — channel-only (the CLI's replay dashboards).

    ``middlewares`` run outermost-first on every surface.
    ``queue_capacity`` bounds each session's push queue (the
    slow-consumer valve).
    """

    def __init__(
        self,
        hive: "Hive | None" = None,
        *,
        router: "FederationRouter | None" = None,
        engine: StreamEngine | None = None,
        sim: "Simulator | None" = None,
        middlewares: Sequence[ServerMiddleware] = (),
        queue_capacity: int = 256,
        scraper: "MetricsScraper | FederationScraper | None" = None,
        slos: "SLOTracker | Sequence[SLODefinition] | None" = None,
    ):
        anchors = sum(x is not None for x in (hive, router, engine))
        if anchors != 1:
            raise ServerError(
                "anchor the server on exactly one of hive=, router=, engine="
            )
        self._hive = hive
        self._router = router
        self._merger: "FederatedStreamMerger | None" = None
        if hive is not None:
            self._sim = sim or hive.sim
            self._engines = {"local": hive.streams}
        elif router is not None:
            from repro.federation.streams import FederatedStreamMerger

            self._sim = sim or router.sim
            self._engines = {
                name: router.hive(name).streams for name in router.member_names
            }
            self._merger = FederatedStreamMerger(self._engines)
        else:
            assert engine is not None
            self._sim = sim
            self._engines = {"local": engine}
        self.chain = MiddlewareChain(middlewares)
        self.queue_capacity = queue_capacity
        self.stats = ServerStats()
        self.obs = ServerInstruments(
            _obs.metrics_registry(), _obs.next_instance("server")
        )
        # Live levels: read the server's own properties at scrape time.
        self.obs.sessions.set_function(lambda: self.sessions_active)
        self.obs.subscriptions.set_function(lambda: self.subscriptions_active)
        self._tracer = _obs.tracer()
        self._sessions: dict[int, Session] = {}
        #: Federated dedup: newest merged window end pushed per (task, view).
        self._merged_done: dict[tuple[str, str], float] = {}
        self._retired_pushes_sent = 0
        self._retired_pushes_dropped = 0
        for name, eng in self._engines.items():
            eng.on_window(lambda s, member=name: self._on_member_window(member, s))
        #: Metrics-over-time feed: a scraper (single-hive MetricsScraper
        #: or a federation rollup) whose frames drive the ``obs watch``
        #: channel, plus an SLO tracker evaluated at every frame.
        self._scraper = scraper
        self._slo_tracker: "SLOTracker | None" = None
        if slos is not None:
            from repro.obs.slo import SLOTracker
            if isinstance(slos, SLOTracker):
                self._slo_tracker = slos
            else:
                if scraper is None:
                    raise ServerError("slos= needs a scraper= to evaluate against")
                self._slo_tracker = SLOTracker(scraper.store, slos)
        if scraper is not None:
            # A federation rollup exposes on_rollup (merged frames);
            # a plain scraper exposes on_frame.
            subscribe = getattr(scraper, "on_rollup", None) or scraper.on_frame
            subscribe(self._on_scrape_frame)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def clock(self) -> float:
        """The server clock: the deployment's simulated time."""
        return self._sim.now if self._sim is not None else 0.0

    @property
    def sessions_active(self) -> int:
        return len(self._sessions)

    @property
    def subscriptions_active(self) -> int:
        return sum(len(s.subscriptions) for s in self._sessions.values())

    @property
    def pushes_sent(self) -> int:
        """Pushes that reached a transport (live sessions + closed ones)."""
        return self._retired_pushes_sent + sum(
            s.pushes_sent for s in self._sessions.values()
        )

    @property
    def pushes_dropped(self) -> int:
        """Pushes evicted by slow-consumer drop-oldest, platform-wide."""
        return self._retired_pushes_dropped + sum(
            s.pushes_dropped for s in self._sessions.values()
        )

    @property
    def pushes_queued(self) -> int:
        """Pushes enqueued toward live sessions but not yet pumped."""
        return sum(s.pushes_queued for s in self._sessions.values())

    def metrics(self) -> ServerMetrics:
        """The serving-tier reading ``monitoring.snapshot`` surfaces."""
        return ServerMetrics(
            sessions_active=self.sessions_active,
            sessions_total=self.stats.connections - self.stats.denials_connect,
            subscriptions_active=self.subscriptions_active,
            subscriptions_total=self.stats.subscriptions_total,
            pushes_sent=self.pushes_sent,
            pushes_dropped=self.pushes_dropped,
            denials=self.stats.denials,
            alerts_pushed=self.stats.alerts_pushed,
            alert_gaps=self.stats.alert_gaps,
        )

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------

    def connect_in_process(self, client_capacity: int = 0) -> Endpoint:
        """A socketless connection: returns the **client** endpoint.

        The server side runs as a background task on the current loop.
        ``client_capacity`` bounds the client's inbox to emulate a slow
        consumer (0 = unbounded).
        """
        transport = InProcessTransport(client_capacity=client_capacity)
        asyncio.get_running_loop().create_task(
            self.handle_endpoint(transport.server_end)
        )
        return transport.client_end

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0):
        """Bind the identical protocol to TCP (JSON-lines framing).

        Returns the listening ``asyncio`` server; ``port=0`` picks a
        free port, readable from ``sockets[0].getsockname()[1]``.
        """
        return await serve_tcp(self.handle_endpoint, host=host, port=port)

    async def handle_endpoint(self, endpoint: Endpoint) -> None:
        """One connection's full lifecycle: handshake, loop, teardown."""
        self.stats.connections += 1
        session = Session(
            endpoint,
            clock=self.clock,
            queue_capacity=self.queue_capacity,
            instruments=self.obs,
        )
        try:
            if not await self._handshake(session, endpoint):
                return
            self._sessions[session.session_id] = session
            session.start_sender()
            try:
                await self._serve_session(session, endpoint)
            finally:
                self._sessions.pop(session.session_id, None)
                self.stats.sessions_closed += 1
        finally:
            await session.close()
            self._retired_pushes_sent += session.pushes_sent
            self._retired_pushes_dropped += session.pushes_dropped

    async def _handshake(self, session: Session, endpoint: Endpoint) -> bool:
        first = await endpoint.recv()
        if first is None:
            return False
        if first.get("type") != "connect":
            await endpoint.send(
                {"type": "deny", "reason": "handshake must be a connect message"}
            )
            self.stats.denials_connect += 1
            return False
        request = ConnectRequest(
            headers=dict(first.get("headers", {})), remote=endpoint.remote
        )

        async def terminal() -> ChainResult:
            return Ok()

        result = await self.chain.run(
            "connect", session, terminal, request=request
        )
        if isinstance(result, Deny):
            self.stats.denials_connect += 1
            self.obs.denial("connect").inc()
            await endpoint.send({"type": "deny", "reason": result.reason})
            return False
        if isinstance(result, Redirect):
            self.stats.redirects += 1
            await endpoint.send({"type": "redirect", "target": result.target})
            return False
        await endpoint.send(
            {"type": "connected", "session_id": session.session_id}
        )
        return True

    async def _serve_session(self, session: Session, endpoint: Endpoint) -> None:
        while True:
            message = await endpoint.recv()
            if message is None:
                return
            kind = message.get("type")
            if kind == "request":
                await self._on_request(session, endpoint, message)
            elif kind == "channel":
                await self._on_channel(session, endpoint, message)
            elif kind == "close":
                return
            else:
                await endpoint.send(
                    {
                        "type": "response",
                        "id": message.get("id"),
                        "status": "error",
                        "error": f"unknown message type {kind!r}",
                    }
                )

    # ------------------------------------------------------------------
    # Request surfaces (ingest / query)
    # ------------------------------------------------------------------

    async def _on_request(
        self, session: Session, endpoint: Endpoint, message: Message
    ) -> None:
        request = ServerRequest(
            surface=message.get("surface", ""),
            action=message.get("action", ""),
            payload=dict(message.get("payload", {})),
        )
        reply: Message = {"type": "response", "id": message.get("id")}
        if request.surface not in SURFACES:
            reply.update(
                status="error", error=f"unknown surface {request.surface!r}"
            )
            await endpoint.send(reply)
            return

        async def terminal() -> ChainResult:
            if request.surface == "ingest":
                self.stats.requests_ingest += 1
                return Ok(self._handle_ingest(session, request))
            if request.surface == "obs":
                self.stats.requests_obs += 1
                return Ok(self._handle_obs(request))
            self.stats.requests_query += 1
            return Ok(self._handle_query(request))

        timed = self.obs.registry.enabled
        started = time.perf_counter() if timed else 0.0
        try:
            result = await self.chain.run(
                "request", session, terminal, request=request
            )
        except ReproError as error:
            reply.update(status="error", error=str(error))
            await endpoint.send(reply)
            return
        finally:
            self.obs.request(request.surface).inc()
            if timed:
                self.obs.request_seconds(request.surface).observe(
                    time.perf_counter() - started
                )
        if isinstance(result, Deny):
            self.stats.denials_request += 1
            self.obs.denial("request").inc()
            reply.update(status="deny", reason=result.reason)
        elif isinstance(result, Redirect):
            self.stats.redirects += 1
            reply.update(status="redirect", target=result.target)
        else:
            reply.update(status="ok", payload=result.payload)
        await endpoint.send(reply)

    def _handle_ingest(self, session: Session, request: ServerRequest) -> Message:
        """Upload surface: decode, submit, map backpressure to the reply."""
        if self._hive is None and self._router is None:
            raise ServerError("this server exposes no ingest surface")
        payload = request.payload
        try:
            device_id = payload["device_id"]
            user = payload["user"]
            task = payload["task"]
            rows = payload["records"]
        except KeyError as missing:
            raise ServerError(f"upload payload lacks {missing}")
        records = [decode_record(row, device_id, user, task) for row in rows]

        pipelines = (
            [self._hive.pipeline]
            if self._hive is not None
            else [
                self._router.hive(name).pipeline
                for name in self._router.member_names
            ]
        )
        before = [
            (p.stats.rejected, p.stats.dropped, p.stats.spilled)
            for p in pipelines
        ]
        if self._hive is not None:
            member = "local"
            accepted = self._hive.receive_upload(device_id, user, task, records)
        else:
            member, accepted = self._router.route_upload(
                device_id, user, task, records
            )
        rejected = dropped = spilled = 0
        for pipeline, (r0, d0, s0) in zip(pipelines, before):
            rejected += pipeline.stats.rejected - r0
            dropped += pipeline.stats.dropped - d0
            spilled += pipeline.stats.spilled - s0
        # Per-connection backpressure accounting rides in the session
        # state so middlewares (and the session's owner) can see it.
        for key, delta in (
            ("ingest.accepted", accepted),
            ("ingest.rejected", rejected),
            ("ingest.dropped", dropped),
            ("ingest.spilled", spilled),
        ):
            session.state[key] = session.state.get(key, 0) + delta
        return {
            "member": member,
            "accepted": accepted,
            "rejected": rejected,
            "dropped": dropped,
            "spilled": spilled,
            "status": "backpressure" if (rejected or dropped) else "ok",
        }

    def _federated(self):
        from repro.federation.query import FederatedDataset

        if self._router is not None:
            return FederatedDataset.from_router(self._router)
        if self._hive is not None:
            return FederatedDataset({"local": self._hive.store})
        raise ServerError("this server exposes no query surface")

    def _handle_query(self, request: ServerRequest) -> Message:
        """Query surface: federated aggregate / secure_aggregate / tasks."""
        federated = self._federated()
        payload = request.payload
        if request.action == "tasks":
            return {"tasks": federated.tasks}
        task = payload.get("task")
        if not task:
            raise ServerError(f"query action {request.action!r} needs a 'task'")
        if request.action == "aggregate":
            return aggregate_digest(federated.aggregate(task))
        if request.action == "secure_aggregate":
            kwargs = {"rng": random.Random(task)}
            if payload.get("bin_edges") is not None:
                kwargs["bin_edges"] = [float(e) for e in payload["bin_edges"]]
            if self._hive is not None:
                kwargs["profiles"] = self._hive.secure_participants(task)
            return secure_aggregate_digest(
                federated.secure_aggregate(task, **kwargs)
            )
        raise ServerError(f"unknown query action {request.action!r}")

    def _handle_obs(self, request: ServerRequest) -> Message:
        """Observability surface: registry dump / hot paths / traces.

        Read-only by construction — it reports on the process-wide
        registry and trace log, never mutates them — so middlewares can
        expose it to low-privilege dashboards safely.
        """
        payload = request.payload
        if request.action == "dump":
            return {"format": "prometheus", "text": _obs.render_prometheus()}
        if request.action == "top":
            limit = int(payload.get("limit", 10))
            timings = _obs.hot_paths()[:limit]
            return {
                "stages": [
                    {
                        "stage": t.stage,
                        "count": t.count,
                        "total_seconds": t.total_seconds,
                        "p50": t.p50,
                        "p99": t.p99,
                    }
                    for t in timings
                ]
            }
        if request.action == "trace":
            log = _obs.tracer().log
            trace_id = payload.get("trace_id")
            if trace_id is None:
                return {
                    "trace_ids": log.trace_ids(),
                    "spans": log.total,
                    "dropped": log.dropped,
                }
            from repro.obs.tracing import trace_tree

            rows = trace_tree(log, int(trace_id))
            return {
                "trace_id": int(trace_id),
                "spans": [
                    {
                        "depth": depth,
                        "name": span.name,
                        "duration": span.duration,
                        "sim_time": span.sim_time,
                        "attrs": {
                            k: v
                            for k, v in span.attrs.items()
                            if k != "records"
                        },
                    }
                    for depth, span in rows
                ],
            }
        if request.action == "history":
            if self._scraper is None:
                raise ServerError("this server has no metrics scraper")
            store = self._scraper.store
            name = payload.get("name")
            if not name:
                from repro.obs.registry import _render_labels

                return {
                    "series": sorted(
                        key[0] + _render_labels(key[1]) for key in store.keys()
                    ),
                    "n_series": store.n_series,
                    "frames": store.n_frames,
                }
            window = payload.get("window")
            labels = payload.get("labels")
            picked = (
                [store.series(name, dict(labels))]
                if labels
                else store.select(name)
            )
            if not picked:
                raise ServerError(f"unknown series {name!r}")
            t1 = store.frame_times()[-1] if store.n_frames else 0.0
            t0 = float("-inf") if window is None else t1 - float(window)
            return {
                "name": name,
                "rate": store.rate(name, labels=dict(labels) if labels else None,
                                   window=None if window is None else float(window)),
                "series": [
                    {
                        "labels": dict(s.labels),
                        "points": [
                            [float(t), float(v)]
                            for t, v in zip(clip.t, clip.values)
                        ],
                    }
                    for s in picked
                    for clip in [s.clipped(t0, t1)]
                ],
            }
        if request.action == "slo":
            if self._slo_tracker is None:
                raise ServerError("this server tracks no SLOs")
            return self._slo_tracker.to_dict()
        raise ServerError(f"unknown obs action {request.action!r}")

    # ------------------------------------------------------------------
    # Channel surface (streaming dashboard)
    # ------------------------------------------------------------------

    async def _on_channel(
        self, session: Session, endpoint: Endpoint, message: Message
    ) -> None:
        self.stats.channel_messages += 1
        channel_message = ChannelMessage(
            action=message.get("action", ""),
            payload=dict(message.get("payload", {})),
        )
        reply: Message = {"type": "channel_reply", "id": message.get("id")}

        async def terminal() -> ChainResult:
            return Ok(self._handle_channel(session, channel_message))

        try:
            result = await self.chain.run(
                "channel_message", session, terminal, message=channel_message
            )
        except ReproError as error:
            reply.update(status="error", error=str(error))
            await endpoint.send(reply)
            return
        if isinstance(result, Deny):
            self.stats.denials_channel += 1
            self.obs.denial("channel").inc()
            reply.update(status="deny", reason=result.reason)
        elif isinstance(result, Redirect):
            self.stats.redirects += 1
            reply.update(status="redirect", target=result.target)
        else:
            reply.update(status="ok", payload=result.payload)
        await endpoint.send(reply)

    def _known_views(self) -> set[str]:
        views: set[str] = set()
        for engine in self._engines.values():
            views.update(engine.views)
        return views

    def _handle_channel(
        self, session: Session, message: ChannelMessage
    ) -> Message:
        payload = message.payload
        if message.action == "subscribe":
            view = payload.get("view")
            if not view or view not in self._known_views():
                raise ServerError(f"cannot subscribe to unknown view {view!r}")
            tasks = payload.get("tasks")
            subscription = session.subscribe(
                view,
                tasks=frozenset(tasks) if tasks is not None else None,
                alerts=bool(payload.get("alerts", False)),
            )
            self.stats.subscriptions_total += 1
            caught_up = 0
            if payload.get("catch_up", False):
                caught_up = self._catch_up(session, subscription)
            return {
                "subscription": subscription.subscription_id,
                "view": view,
                "catchup": caught_up,
            }
        if message.action == "watch":
            if self._scraper is None:
                raise ServerError("this server has no metrics scraper to watch")
            watch = session.watch_obs(
                names=tuple(payload.get("names", ())),
                slo=bool(payload.get("slo", True)),
            )
            self.stats.subscriptions_total += 1
            self.stats.watches_total += 1
            return {
                "subscription": watch.subscription_id,
                "names": list(watch.names),
                "slo": watch.slo,
            }
        if message.action == "unsubscribe":
            subscription_id = payload.get("subscription")
            session.unsubscribe(int(subscription_id or 0))
            return {"unsubscribed": subscription_id}
        raise ServerError(f"unknown channel action {message.action!r}")

    def _retained_snapshots(self, view: str) -> list[WindowSnapshot]:
        """Retained history for catch-up, oldest first (merged if federated)."""
        snapshots: list[WindowSnapshot] = []
        if self._merger is not None:
            for task in self._merger.tasks:
                try:
                    snapshots.extend(self._merger.history(task, view))
                except ReproError:  # pragma: no cover - defensive
                    continue
        else:
            engine = next(iter(self._engines.values()))
            for task in engine.tasks:
                snapshots.extend(engine.snapshots(task, view))
        snapshots.sort(key=lambda s: (s.end, s.task))
        return snapshots

    def _catch_up(self, session: Session, subscription: Subscription) -> int:
        """Replay the retained history into a late subscription.

        Marks every replayed window as delivered, so the live path's
        exactly-once guard (:meth:`Subscription.should_push`) will skip
        them — a late subscriber sees each window once, not twice.
        """
        caught_up = 0
        for snapshot in self._retained_snapshots(subscription.view):
            if not subscription.matches(snapshot.task, snapshot.view):
                continue
            if not subscription.should_push(snapshot.task, snapshot.end):
                continue
            self._push_snapshot(session, subscription, snapshot, catchup=True)
            caught_up += 1
        self.stats.catchup_snapshots += caught_up
        return caught_up

    # ------------------------------------------------------------------
    # Push path (window-close fan-out; synchronous, inside sim events)
    # ------------------------------------------------------------------

    def _push_snapshot(
        self,
        session: Session,
        subscription: Subscription,
        snapshot: WindowSnapshot,
        catchup: bool = False,
    ) -> None:
        message: Message = {
            "type": "push",
            "kind": "snapshot",
            "subscription": subscription.subscription_id,
            "catchup": catchup,
            "sent_at": time.perf_counter(),
            "snapshot": snapshot_digest(snapshot),
        }
        if session.push(message, subscription):
            subscription.snapshots_pushed += 1
            self.stats.pushes_enqueued += 1

    def _on_member_window(self, member: str, snapshot: WindowSnapshot) -> None:
        """Engine window-close callback: fan out to matching subscribers."""
        if self._merger is None:
            self._fan_out(snapshot)
        else:
            self._fan_out_merged(snapshot.task, snapshot.view)
        self._fan_alerts(member, self._engines[member])

    def _fan_out(self, snapshot: WindowSnapshot) -> None:
        timed = self.obs.registry.enabled
        started = time.perf_counter() if timed else 0.0
        with self._tracer.span(
            "server.push",
            task=snapshot.task,
            view=snapshot.view,
            start=snapshot.start,
            end=snapshot.end,
        ) as handle:
            fanned = 0
            for session in self._sessions.values():
                for subscription in session.subscriptions.values():
                    if not subscription.matches(snapshot.task, snapshot.view):
                        continue
                    if not subscription.should_push(snapshot.task, snapshot.end):
                        continue
                    self._push_snapshot(session, subscription, snapshot)
                    fanned += 1
            handle.set(subscribers=fanned)
        if timed:
            self.obs.push_seconds.observe(time.perf_counter() - started)

    def _fan_out_merged(self, task: str, view: str) -> None:
        """Push federation-merged windows once every member closed them."""
        assert self._merger is not None
        boundary = self._merger.common_boundary(task, view)
        if boundary is None:
            return
        done = self._merged_done.get((task, view), float("-inf"))
        if boundary <= done:
            return
        ends: set[float] = set()
        for engine in self._engines.values():
            if view not in engine.views:
                continue
            ends.update(
                s.end
                for s in engine.snapshots(task, view)
                if done < s.end <= boundary
            )
        for end in sorted(ends):
            merged = self._merger.merged(task, view, end=end)
            self.stats.merged_windows += 1
            self._fan_out(merged)
        self._merged_done[(task, view)] = boundary

    def _fan_alerts(self, member: str, engine: StreamEngine) -> None:
        """Deliver fresh alerts; evicted-before-delivery ones become gaps."""
        log = engine.alerts
        total = log.total
        retained = None  # fetched lazily, once per call
        for session in self._sessions.values():
            for subscription in session.subscriptions.values():
                if not subscription.alerts:
                    continue
                seen = subscription.alerts_seen.get(member, 0)
                fresh = total - seen
                if fresh <= 0:
                    continue
                if retained is None:
                    retained = log.alerts()
                deliverable = retained[-min(fresh, len(retained)):] if retained else []
                missed = fresh - len(deliverable)
                if missed > 0:
                    # The bounded log evicted alerts this subscriber
                    # never saw: the gap is pushed, not swallowed.
                    self.stats.alert_gaps += missed
                    session.push(
                        {
                            "type": "push",
                            "kind": "alert_gap",
                            "subscription": subscription.subscription_id,
                            "source": member,
                            "missed": missed,
                        },
                        subscription,
                    )
                for alert in deliverable:
                    if not subscription.matches(alert.task, alert.view):
                        continue
                    if session.push(
                        {
                            "type": "push",
                            "kind": "alert",
                            "subscription": subscription.subscription_id,
                            "source": member,
                            "sent_at": time.perf_counter(),
                            "alert": alert_digest(alert),
                        },
                        subscription,
                    ):
                        self.stats.alerts_pushed += 1
                subscription.alerts_seen[member] = total

    # ------------------------------------------------------------------
    # Metrics watch fan-out (scrape-frame path; synchronous, sim events)
    # ------------------------------------------------------------------

    def _on_scrape_frame(self, frame: "ScrapeFrame") -> None:
        """Scraper frame callback: push to watchers, evaluate SLOs.

        Mirrors the window fan-out's exactly-once discipline: one frame
        push per (watch, scrape time), one alert push per (watch,
        tracker sequence) — dedup lives in :class:`ObsWatch`, the same
        place :class:`Subscription` keeps its window guard.
        """
        transitions: "list[ObsAlert]" = []
        if self._slo_tracker is not None:
            transitions = self._slo_tracker.evaluate(frame.t)
        if not self._sessions:
            return
        digest = None  # built lazily, once, only if a watcher wants it
        for session in self._sessions.values():
            for watch in list(session.subscriptions.values()):
                if not isinstance(watch, ObsWatch):
                    continue
                if watch.should_push_frame(frame.t):
                    if watch.names:
                        frame_digest = frame.digest(watch.names)
                    else:
                        if digest is None:
                            digest = frame.digest(())
                        frame_digest = digest
                    if session.push(
                        {
                            "type": "push",
                            "kind": "obs_frame",
                            "subscription": watch.subscription_id,
                            "sent_at": time.perf_counter(),
                            "frame": frame_digest,
                        },
                        watch,
                    ):
                        watch.frames_pushed += 1
                        self.stats.pushes_enqueued += 1
                        self.stats.obs_frames_pushed += 1
                if not watch.slo:
                    continue
                for alert in transitions:
                    if not watch.should_push_alert(alert.seq):
                        continue
                    if session.push(
                        {
                            "type": "push",
                            "kind": "obs_alert",
                            "subscription": watch.subscription_id,
                            "sent_at": time.perf_counter(),
                            "alert": alert.to_dict(),
                        },
                        watch,
                    ):
                        watch.alerts_pushed += 1
                        self.stats.obs_alerts_pushed += 1

    # ------------------------------------------------------------------
    # Driving a simulated deployment
    # ------------------------------------------------------------------

    async def drive(
        self,
        until: float,
        slice_seconds: float = 60.0,
        sim: "Simulator | None" = None,
    ) -> None:
        """Advance the simulation to ``until``, draining pushes between slices.

        The simulator is synchronous — window closes (and therefore push
        enqueues) happen inside its events.  Slicing its advance and
        yielding to the event loop between slices lets sender tasks and
        in-process clients run concurrently with the simulated platform,
        which is what makes 1k live dashboard sessions possible without
        threads.
        """
        simulator = sim or self._sim
        if simulator is None:
            raise ServerError("no simulator to drive; pass sim=")
        if slice_seconds <= 0:
            raise ServerError(f"slice must be positive: {slice_seconds}")
        now = simulator.now
        while now < until:
            now = min(until, now + slice_seconds)
            simulator.run_until(now)
            await asyncio.sleep(0)

    async def drain(self) -> None:
        """Wait until every live session's push queue reached its transport."""
        while any(len(s.queue) for s in self._sessions.values()):
            await asyncio.sleep(0)
