"""Wire shapes of the serving tier: JSON-able digests and record codecs.

Every message the server sends or receives is a plain dict of JSON-able
values, so the in-process transport and the TCP binding carry the exact
same protocol.  This module holds the conversions:

- :func:`encode_record` / :func:`decode_record` — a
  :class:`~repro.apisense.device.SensorRecord` as an upload-surface
  payload row (``gps`` travels as a ``[lat, lon]`` pair);
- :func:`snapshot_digest` — the dashboard push for one closed
  :class:`~repro.streams.views.WindowSnapshot`.  A digest is the
  *comparable* projection of a snapshot (counts, users, coverage,
  percentile readings) — two snapshots describing the same window
  digest identically, which is what the serving-tier tests and
  benchmarks assert between pushed streams and the engine's batch view;
- :func:`alert_digest` — one :class:`~repro.streams.queries.StreamAlert`
  as pushed on the channel;
- :func:`aggregate_digest` / :func:`secure_aggregate_digest` — the
  query surface's response bodies.

Floats are rounded to 9 decimals so digests survive a JSON round-trip
bit-identically.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.apisense.device import SensorRecord
from repro.errors import ServerError
from repro.geo.point import GeoPoint
from repro.streams.queries import StreamAlert
from repro.streams.views import WindowSnapshot


def _num(value: float) -> float:
    """JSON-stable float: fixed precision, no negative zero."""
    rounded = round(float(value), 9)
    return rounded + 0.0  # -0.0 -> 0.0


# ----------------------------------------------------------------------
# Upload surface: sensor records
# ----------------------------------------------------------------------


def encode_record(record: SensorRecord) -> dict[str, Any]:
    """One record as an upload payload row."""
    values: dict[str, Any] = {}
    for name, item in record.values.items():
        if isinstance(item, GeoPoint):
            values[name] = [item.lat, item.lon]
        elif isinstance(item, (bool, int, float, str)) or item is None:
            values[name] = item
        else:
            raise ServerError(
                f"record value {name}={item!r} is not wire-serializable"
            )
    return {"time": record.time, "values": values}


def decode_record(
    row: Mapping[str, Any], device_id: str, user: str, task: str
) -> SensorRecord:
    """An upload payload row back into a :class:`SensorRecord`.

    A two-element list/tuple under ``gps`` (or any ``*gps*`` key)
    becomes a :class:`GeoPoint`; everything else passes through.
    """
    if "time" not in row:
        raise ServerError(f"upload row lacks a 'time' field: {row!r}")
    values: dict[str, Any] = {}
    for name, item in dict(row.get("values", {})).items():
        if (
            isinstance(item, (list, tuple))
            and len(item) == 2
            and all(isinstance(c, (int, float)) for c in item)
        ):
            values[name] = GeoPoint(float(item[0]), float(item[1]))
        else:
            values[name] = item
    return SensorRecord(
        device_id=device_id,
        user=user,
        task=task,
        time=float(row["time"]),
        values=values,
    )


# ----------------------------------------------------------------------
# Channel surface: snapshots and alerts
# ----------------------------------------------------------------------


def snapshot_digest(snapshot: WindowSnapshot) -> dict[str, Any]:
    """The comparable projection of one closed window."""
    return {
        "task": snapshot.task,
        "view": snapshot.view,
        "start": _num(snapshot.start),
        "end": _num(snapshot.end),
        "records": snapshot.records,
        "n_users": snapshot.n_users,
        "coverage_cells": snapshot.coverage_cells,
        "value_count": snapshot.value_count,
        "value_sum": _num(snapshot.value_sum),
        "value_p50": _num(snapshot.value_quantile(0.50)),
        "value_p95": _num(snapshot.value_quantile(0.95)),
        "lag_p95": _num(snapshot.lag_quantile(0.95)),
        "top_users": [[user, count] for user, count in snapshot.top_users(3)],
    }


def alert_digest(alert: StreamAlert) -> dict[str, Any]:
    """One continuous-query firing as pushed on the channel."""
    return {
        "time": _num(alert.time),
        "task": alert.task,
        "view": alert.view,
        "query": alert.query,
        "window": [_num(alert.window[0]), _num(alert.window[1])],
        "message": alert.message,
    }


# ----------------------------------------------------------------------
# Query surface: aggregates
# ----------------------------------------------------------------------


def aggregate_digest(aggregate) -> dict[str, Any]:
    """A :class:`~repro.federation.query.FederatedTaskAggregate` body."""
    return {
        "task": aggregate.task,
        "records": aggregate.records,
        "n_users": aggregate.n_users,
        "coverage_cells": aggregate.coverage_cells,
        "first_time": aggregate.first_time,
        "last_time": aggregate.last_time,
        "lag_mean": _num(aggregate.lag_mean),
        "lag_p95": _num(aggregate.lag_p95),
        "members": sorted(aggregate.per_member),
        "per_member_records": {
            name: member.records for name, member in aggregate.per_member.items()
        },
    }


def secure_aggregate_digest(result) -> dict[str, Any]:
    """A :class:`~repro.federation.query.FederatedSecureAggregate` body."""
    return {
        "task": result.task,
        "records": result.records,
        "value_count": result.value_count,
        "value_sum": _num(result.value_sum),
        "mean_value": _num(result.mean_value),
        "histogram": dict(result.histogram) if result.histogram is not None else None,
        "contributors": result.contributors,
        "dropped": list(result.dropped),
        "protocol_split": dict(result.protocol_split),
        "members": list(result.members),
    }
