"""``repro.server`` — the asyncio serving tier over the platform.

Puts the in-process crowd-sensing platform behind a concurrent API:
upload ingestion with backpressure mapped to the connection, federated
batch queries, and a live streaming dashboard channel with bounded
per-subscriber push queues — every surface gated by one composable
:class:`ServerMiddleware` chain.  Tests and benchmarks run the full
protocol over the socketless :class:`InProcessTransport`; deployments
bind the identical protocol to TCP.  See
:class:`~repro.server.server.ReproServer` for the architecture.
"""

from repro.server.client import ServerClient, ServerDenied, ServerRedirected
from repro.server.middleware import (
    AuthTokenMiddleware,
    ChannelMessage,
    ConnectRequest,
    Deny,
    MetricsMiddleware,
    MiddlewareChain,
    Ok,
    RateLimitMiddleware,
    Redirect,
    ServerMiddleware,
    ServerRequest,
)
from repro.server.server import ReproServer, ServerMetrics, ServerStats
from repro.server.sessions import PushQueue, Session, Subscription
from repro.server.transport import (
    Endpoint,
    InProcessTransport,
    connect_tcp,
    serve_tcp,
)

__all__ = [
    "AuthTokenMiddleware",
    "ChannelMessage",
    "ConnectRequest",
    "Deny",
    "Endpoint",
    "InProcessTransport",
    "MetricsMiddleware",
    "MiddlewareChain",
    "Ok",
    "PushQueue",
    "RateLimitMiddleware",
    "Redirect",
    "ReproServer",
    "ServerClient",
    "ServerDenied",
    "ServerMetrics",
    "ServerMiddleware",
    "ServerRedirected",
    "ServerRequest",
    "ServerStats",
    "Session",
    "Subscription",
    "connect_tcp",
    "serve_tcp",
]
