"""Server sessions: per-connection state, subscriptions, bounded pushes.

One :class:`Session` lives for one authenticated connection.  It owns

- the middleware-visible mutable ``state`` dict (auth principal, rate
  windows... private to the connection);
- the connection's channel :class:`Subscription`\\ s;
- a bounded **push queue** between the window-close path and the
  connection's sender task.

The push queue is the slow-consumer valve: window closes enqueue
instantly (the simulation must never block on a laggard dashboard), the
sender task drains toward the transport, and when a subscriber cannot
keep up the **oldest queued push is evicted** — counted per session and
per subscription (``pushes_dropped``), never silent, so every consumer
can reconcile ``received + dropped == emitted``.
"""

from __future__ import annotations

import asyncio
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import ServerError
from repro.server.transport import Endpoint, Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.instruments import ServerInstruments

_session_ids = itertools.count(1)
_subscription_ids = itertools.count(1)


@dataclass
class Subscription:
    """One session's standing subscription to a streaming view."""

    subscription_id: int
    view: str
    tasks: frozenset[str] | None  #: None = every task the view tracks
    alerts: bool
    #: Exactly-once guard: newest window end already pushed, per task.
    last_end: dict[str, float] = field(default_factory=dict)
    #: Alerts already delivered (index into the engine log's ``total``),
    #: per alert source (member name).
    alerts_seen: dict[str, int] = field(default_factory=dict)
    snapshots_pushed: int = 0
    pushes_dropped: int = 0

    def matches(self, task: str, view: str) -> bool:
        return view == self.view and (self.tasks is None or task in self.tasks)

    def should_push(self, task: str, end: float) -> bool:
        """True exactly once per (task, window end) — dedup guard."""
        last = self.last_end.get(task)
        if last is not None and end <= last:
            return False
        self.last_end[task] = end
        return True


@dataclass
class ObsWatch:
    """One session's standing subscription to the metrics feed.

    Lives in the same ``session.subscriptions`` map as the streaming
    :class:`Subscription`\\ s (one unsubscribe path, one eviction
    accounting), but matches no streaming view — the server's scrape
    fan-out drives it instead.  The exactly-once guards mirror the
    window dedup: a frame is pushed once per scrape time, an SLO alert
    once per tracker sequence number.
    """

    subscription_id: int
    #: Series-name prefixes to include in pushed frames ("" = all).
    names: tuple[str, ...]
    slo: bool  #: push SLO state transitions too
    #: Exactly-once guards.
    last_frame_t: float = float("-inf")
    last_alert_seq: int = 0
    frames_pushed: int = 0
    alerts_pushed: int = 0
    pushes_dropped: int = 0
    alerts = False  #: never matched by the stream alert fan-out

    def matches(self, task: str, view: str) -> bool:
        """Never matched by the window fan-out (duck-typing guard)."""
        return False

    def should_push_frame(self, t: float) -> bool:
        if t <= self.last_frame_t:
            return False
        self.last_frame_t = t
        return True

    def should_push_alert(self, seq: int) -> bool:
        if seq <= self.last_alert_seq:
            return False
        self.last_alert_seq = seq
        return True


class PushQueue:
    """Bounded FIFO between window closes and a session's sender task.

    ``put`` is synchronous (callable from the simulator's window-close
    callbacks); overflow evicts the **oldest** queued item and returns
    it so the caller can account the drop.  ``get`` awaits the next
    item.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ServerError(f"push queue capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._items: deque[Message] = deque()
        self._ready = asyncio.Event()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Message) -> Optional[Message]:
        """Enqueue; returns the evicted oldest item on overflow (else None)."""
        dropped = None
        if len(self._items) >= self.capacity:
            dropped = self._items.popleft()
        self._items.append(item)
        self._ready.set()
        return dropped

    def clear(self) -> list[Message]:
        """Drop and return everything still queued (session teardown)."""
        items = list(self._items)
        self._items.clear()
        return items

    async def get(self) -> Message:
        while not self._items:
            self._ready.clear()
            await self._ready.wait()
        return self._items.popleft()


class Session:
    """One live connection's server-side state."""

    def __init__(
        self,
        endpoint: Endpoint,
        clock: Callable[[], float],
        queue_capacity: int = 256,
        instruments: "ServerInstruments | None" = None,
    ):
        self.session_id = next(_session_ids)
        self.endpoint = endpoint
        self._clock = clock
        #: The owning server's registry instruments; push accounting is
        #: mirrored there so the dashboard reads one source of truth.
        self._instruments = instruments
        #: Middleware-visible mutable state, private to this connection.
        self.state: dict[str, Any] = {}
        self.subscriptions: dict[int, Subscription] = {}
        self.queue = PushQueue(queue_capacity)
        self.pushes_sent = 0
        self.pushes_dropped = 0
        self.closed = False
        self._sender: asyncio.Task | None = None

    @property
    def now(self) -> float:
        """The server clock (the deployment's simulated time)."""
        return self._clock()

    @property
    def pushes_queued(self) -> int:
        """Pushes enqueued but not yet pumped to the transport."""
        return len(self.queue)

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------

    def subscribe(
        self,
        view: str,
        tasks: frozenset[str] | None = None,
        alerts: bool = False,
    ) -> Subscription:
        subscription = Subscription(
            subscription_id=next(_subscription_ids),
            view=view,
            tasks=tasks,
            alerts=alerts,
        )
        self.subscriptions[subscription.subscription_id] = subscription
        return subscription

    def watch_obs(
        self, names: tuple[str, ...] = (), slo: bool = True
    ) -> ObsWatch:
        """Subscribe this session to the live metrics/SLO feed."""
        watch = ObsWatch(
            subscription_id=next(_subscription_ids),
            names=tuple(names),
            slo=slo,
        )
        self.subscriptions[watch.subscription_id] = watch
        return watch

    def unsubscribe(self, subscription_id: int) -> Subscription:
        if subscription_id not in self.subscriptions:
            raise ServerError(f"unknown subscription {subscription_id}")
        return self.subscriptions.pop(subscription_id)

    # ------------------------------------------------------------------
    # Push path
    # ------------------------------------------------------------------

    def push(self, message: Message, subscription: Subscription | None = None) -> bool:
        """Enqueue one push toward this session (never blocks).

        Returns False when the session is closed.  On overflow the
        oldest queued push is evicted and counted against the session
        and against the subscription it belonged to.
        """
        if self.closed:
            return False
        evicted = self.queue.put(message)
        if self._instruments is not None:
            self._instruments.pushes_enqueued.inc()
        if evicted is not None:
            self.pushes_dropped += 1
            if self._instruments is not None:
                self._instruments.pushes_dropped.inc()
            victim_id = evicted.get("subscription")
            victim = self.subscriptions.get(victim_id) if victim_id else None
            if victim is not None:
                victim.pushes_dropped += 1
        return True

    def start_sender(self) -> asyncio.Task:
        """Start the drain task: push queue -> transport endpoint."""
        if self._sender is None:
            self._sender = asyncio.get_running_loop().create_task(self._pump())
        return self._sender

    async def _pump(self) -> None:
        while True:
            message = await self.queue.get()
            if message.get("type") == "_close":
                return
            try:
                await self.endpoint.send(message)
            except ServerError:
                # Endpoint closed under us; the dequeued push never
                # reached a transport — count it dropped so the push
                # accounting (enqueued = sent + dropped + queued) holds.
                self.pushes_dropped += 1
                if self._instruments is not None:
                    self._instruments.pushes_dropped.inc()
                return
            self.pushes_sent += 1
            if self._instruments is not None:
                self._instruments.pushes_sent.inc()

    async def close(self) -> None:
        """Tear the session down: stop the sender, drop subscriptions."""
        if self.closed:
            return
        self.closed = True
        self.subscriptions.clear()
        if self._sender is not None:
            # The sentinel bypasses push() (it must reach a closed
            # session's pump), so an eviction here is counted by hand.
            evicted = self.queue.put({"type": "_close"})
            if evicted is not None and evicted.get("type") != "_close":
                self.pushes_dropped += 1
                if self._instruments is not None:
                    self._instruments.pushes_dropped.inc()
            try:
                await asyncio.wait_for(self._sender, timeout=1.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                self._sender.cancel()
        # Whatever is still queued never reached a transport: count it
        # dropped so enqueued = sent + dropped + queued stays exact.
        for message in self.queue.clear():
            if message.get("type") != "_close":
                self.pushes_dropped += 1
                if self._instruments is not None:
                    self._instruments.pushes_dropped.inc()
        self.endpoint.close()

    async def drain(self) -> None:
        """Wait until every queued push reached the transport."""
        while len(self.queue) and not self.closed:
            await asyncio.sleep(0)
