"""The serving tier's client: requests by id, pushes into a local queue.

:class:`ServerClient` wraps one :class:`~repro.server.transport.
Endpoint` (in-process or TCP — the protocol is identical) and runs a
single **reader task** that demultiplexes inbound traffic:

- ``response`` / ``channel_reply`` messages resolve the future of the
  request that carries the same ``id``;
- ``push`` messages (dashboard snapshots, alerts, alert gaps) land in a
  local queue the application drains via :meth:`next_push` /
  :meth:`drain_pushes`.

A denied or redirected call surfaces as :class:`ServerDenied` /
:class:`ServerRedirected` so callers cannot mistake a refusal for data.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Optional, Sequence

from repro.errors import ReproError, ServerError
from repro.server.protocol import encode_record
from repro.server.transport import Endpoint, Message


class ServerDenied(ReproError):
    """The middleware chain denied the call; ``reason`` says why."""

    def __init__(self, reason: str):
        super().__init__(f"denied: {reason}")
        self.reason = reason


class ServerRedirected(ReproError):
    """The middleware chain redirected the call; retry at ``target``."""

    def __init__(self, target: str):
        super().__init__(f"redirected to {target}")
        self.target = target


class ServerClient:
    """One connection to a :class:`~repro.server.server.ReproServer`.

    Usage::

        client = ServerClient(server.connect_in_process())
        await client.connect({"authorization": "token"})
        await client.subscribe("hourly", alerts=True)
        ...
        push = await client.next_push()
        await client.close()
    """

    def __init__(self, endpoint: Endpoint):
        self._endpoint = endpoint
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self.pushes: asyncio.Queue[Message] = asyncio.Queue()
        self.session_id: int | None = None
        self._reader: asyncio.Task | None = None
        self._closed = False

    @property
    def connected(self) -> bool:
        return self.session_id is not None and not self._closed

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def connect(self, headers: dict[str, str] | None = None) -> int:
        """Handshake; returns the server-assigned session id.

        Raises :class:`ServerDenied` / :class:`ServerRedirected` when a
        connect middleware refuses the handshake.
        """
        if self.session_id is not None:
            raise ServerError("client is already connected")
        await self._endpoint.send(
            {"type": "connect", "headers": dict(headers or {})}
        )
        reply = await self._endpoint.recv()
        if reply is None:
            raise ServerError("server closed during handshake")
        if reply.get("type") == "deny":
            self._closed = True
            raise ServerDenied(reply.get("reason", "denied"))
        if reply.get("type") == "redirect":
            self._closed = True
            raise ServerRedirected(reply.get("target", ""))
        if reply.get("type") != "connected":
            raise ServerError(f"unexpected handshake reply: {reply!r}")
        self.session_id = int(reply["session_id"])
        self._reader = asyncio.get_running_loop().create_task(self._read())
        return self.session_id

    async def _read(self) -> None:
        while True:
            message = await self._endpoint.recv()
            if message is None:
                break
            kind = message.get("type")
            if kind == "push":
                self.pushes.put_nowait(message)
                continue
            future = self._pending.pop(message.get("id"), None)
            if future is not None and not future.done():
                future.set_result(message)
        self._closed = True
        for future in self._pending.values():
            if not future.done():
                future.set_exception(ServerError("connection closed"))
        self._pending.clear()

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            await self._endpoint.send({"type": "close"})
        except ServerError:  # pragma: no cover - already torn down
            pass
        if self._reader is not None:
            try:
                await asyncio.wait_for(self._reader, timeout=1.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                self._reader.cancel()
        self._endpoint.close()

    # ------------------------------------------------------------------
    # Round-trips
    # ------------------------------------------------------------------

    async def _round_trip(self, message: Message) -> Message:
        if self.session_id is None or self._closed:
            raise ServerError("client is not connected")
        call_id = next(self._ids)
        message["id"] = call_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[call_id] = future
        await self._endpoint.send(message)
        reply = await future
        status = reply.get("status")
        if status == "deny":
            raise ServerDenied(reply.get("reason", "denied"))
        if status == "redirect":
            raise ServerRedirected(reply.get("target", ""))
        if status == "error":
            raise ServerError(reply.get("error", "server error"))
        return reply

    async def request(
        self, surface: str, action: str, payload: dict[str, Any] | None = None
    ) -> Any:
        """One ingest/query round-trip; returns the response payload."""
        reply = await self._round_trip(
            {
                "type": "request",
                "surface": surface,
                "action": action,
                "payload": dict(payload or {}),
            }
        )
        return reply.get("payload")

    async def upload(
        self, device_id: str, user: str, task: str, records: Sequence
    ) -> dict[str, Any]:
        """Submit one upload batch; returns the backpressure accounting.

        ``records`` may be :class:`~repro.apisense.device.SensorRecord`
        objects (encoded on the wire automatically) or already-encoded
        payload rows.
        """
        rows = [
            encode_record(record) if hasattr(record, "values") else dict(record)
            for record in records
        ]
        return await self.request(
            "ingest",
            "upload",
            {"device_id": device_id, "user": user, "task": task, "records": rows},
        )

    async def aggregate(self, task: str) -> dict[str, Any]:
        """Federated plaintext aggregate of one task."""
        return await self.request("query", "aggregate", {"task": task})

    async def secure_aggregate(
        self, task: str, bin_edges: Sequence[float] | None = None
    ) -> dict[str, Any]:
        """Aggregator-oblivious aggregate of one task."""
        payload: dict[str, Any] = {"task": task}
        if bin_edges is not None:
            payload["bin_edges"] = list(bin_edges)
        return await self.request("query", "secure_aggregate", payload)

    async def channel(
        self, action: str, payload: dict[str, Any] | None = None
    ) -> Any:
        """One dashboard-channel round-trip; returns the reply payload."""
        reply = await self._round_trip(
            {"type": "channel", "action": action, "payload": dict(payload or {})}
        )
        return reply.get("payload")

    async def subscribe(
        self,
        view: str,
        tasks: Sequence[str] | None = None,
        alerts: bool = False,
        catch_up: bool = False,
    ) -> dict[str, Any]:
        """Subscribe to a streaming view; returns ``{subscription, catchup}``."""
        payload: dict[str, Any] = {
            "view": view,
            "alerts": alerts,
            "catch_up": catch_up,
        }
        if tasks is not None:
            payload["tasks"] = list(tasks)
        return await self.channel("subscribe", payload)

    async def watch_obs(
        self, names: Sequence[str] | None = None, slo: bool = True
    ) -> dict[str, Any]:
        """Subscribe to the live metrics/SLO feed; returns ``{subscription}``.

        ``names`` restricts pushed frames to series-name prefixes (all
        series otherwise); ``slo=True`` also delivers SLO state
        transitions as ``obs_alert`` pushes.
        """
        payload: dict[str, Any] = {"slo": slo}
        if names is not None:
            payload["names"] = list(names)
        return await self.channel("watch", payload)

    async def obs_history(
        self,
        name: str | None = None,
        window: float | None = None,
        labels: dict[str, str] | None = None,
    ) -> dict[str, Any]:
        """Scraped history: series listing, or one name's points + rate."""
        payload: dict[str, Any] = {}
        if name is not None:
            payload["name"] = name
        if window is not None:
            payload["window"] = window
        if labels is not None:
            payload["labels"] = dict(labels)
        return await self.request("obs", "history", payload)

    async def obs_slo(self) -> dict[str, Any]:
        """The server's SLO statuses and alert accounting."""
        return await self.request("obs", "slo", {})

    async def unsubscribe(self, subscription: int) -> Any:
        return await self.channel("unsubscribe", {"subscription": subscription})

    # ------------------------------------------------------------------
    # Pushes
    # ------------------------------------------------------------------

    async def next_push(self, timeout: float | None = None) -> Optional[Message]:
        """The next queued push; ``None`` on timeout."""
        if timeout is None:
            return await self.pushes.get()
        try:
            return await asyncio.wait_for(self.pushes.get(), timeout)
        except asyncio.TimeoutError:
            return None

    def drain_pushes(self) -> list[Message]:
        """Every push received so far, in arrival order (non-blocking)."""
        drained: list[Message] = []
        while True:
            try:
                drained.append(self.pushes.get_nowait())
            except asyncio.QueueEmpty:
                return drained
