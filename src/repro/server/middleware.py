"""The serving tier's middleware chain: connect / request / channel hooks.

Every interaction with :class:`~repro.server.server.ReproServer` — the
connection handshake, each ingest/query request, and each message on the
streaming dashboard channel — runs through one composable chain of
:class:`ServerMiddleware` objects before (and after) the terminal
handler executes.  The lifecycle mirrors the ``PulseMiddleware``
connect/message design of production UI middlewares:

- each hook receives the payload, the live ``session`` (whose ``state``
  dict is private to the connection), and an async ``next``
  continuation;
- ``await next()`` passes control down the chain (and ultimately to the
  server's terminal handler); the hook may inspect or replace the
  result on the way back up;
- returning :class:`Deny` or :class:`Redirect` *without* calling
  ``next`` short-circuits the chain — later middlewares and the
  terminal handler never run.

Three hooks cover the server's three surfaces:

==================  =================================================
hook                runs on
==================  =================================================
``connect``         the connection handshake (auth, session setup)
``request``         every ingest / query request
``channel_message``  every dashboard-channel message (subscribe, ack)
==================  =================================================

Shipped in-tree: :class:`AuthTokenMiddleware` (token check at connect +
per-surface scope enforcement), :class:`RateLimitMiddleware` (per-session
token bucket over the server clock), and :class:`MetricsMiddleware`
(counts and log lines, observing downstream outcomes — place it first).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Mapping, Sequence, TYPE_CHECKING

from repro import obs
from repro.errors import ServerError
from repro.obs.instruments import MiddlewareInstruments

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.sessions import Session

#: Hook names, in lifecycle order.
HOOKS = ("connect", "request", "channel_message")


# ----------------------------------------------------------------------
# Chain results
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Ok:
    """Continue / success: the terminal handler's payload rides along."""

    payload: Any = None


@dataclass(frozen=True)
class Deny:
    """Short-circuit: the caller is refused with ``reason``."""

    reason: str = "denied"


@dataclass(frozen=True)
class Redirect:
    """Short-circuit: the caller should retry against ``target``.

    ``target`` is an opaque address — a federation member name, another
    server's host:port — the client interprets.
    """

    target: str


#: Everything a middleware hook may return.
ChainResult = Ok | Deny | Redirect


# ----------------------------------------------------------------------
# Payload objects the hooks receive
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ConnectRequest:
    """The connection handshake as the ``connect`` hook sees it."""

    headers: Mapping[str, str]
    remote: str = "in-process"


@dataclass(frozen=True)
class ServerRequest:
    """One ingest/query request as the ``request`` hook sees it."""

    surface: str  #: ``"ingest"`` or ``"query"``
    action: str
    payload: Mapping[str, Any]


@dataclass(frozen=True)
class ChannelMessage:
    """One dashboard-channel message as ``channel_message`` sees it."""

    action: str  #: ``"subscribe"``, ``"unsubscribe"``, ``"ack_alerts"``...
    payload: Mapping[str, Any]


# ----------------------------------------------------------------------
# The middleware base class and the chain
# ----------------------------------------------------------------------


class ServerMiddleware:
    """Base class: override any hook; the default passes straight through.

    Hooks are ``async`` and keyword-only, matching the lifecycle
    contract::

        class MyMiddleware(ServerMiddleware):
            async def connect(self, *, request, session, next):
                if not request.headers.get("authorization"):
                    return Deny("no token")
                session.state["user"] = ...
                return await next()

    ``session`` is the live :class:`~repro.server.sessions.Session`;
    its ``state`` dict is private to one connection and shared across
    that connection's hooks and requests.
    """

    async def connect(
        self,
        *,
        request: ConnectRequest,
        session: "Session",
        next: Callable[[], Awaitable[ChainResult]],
    ) -> ChainResult:
        return await next()

    async def request(
        self,
        *,
        request: ServerRequest,
        session: "Session",
        next: Callable[[], Awaitable[ChainResult]],
    ) -> ChainResult:
        return await next()

    async def channel_message(
        self,
        *,
        message: ChannelMessage,
        session: "Session",
        next: Callable[[], Awaitable[ChainResult]],
    ) -> ChainResult:
        return await next()


class MiddlewareChain:
    """An ordered stack of middlewares sharing one calling convention.

    :meth:`run` nests the hooks so the first middleware is outermost:
    it sees the payload first and the result last — exactly the onion
    every HTTP framework builds.  A hook that returns without awaiting
    ``next`` short-circuits everything below it.
    """

    def __init__(self, middlewares: Sequence[ServerMiddleware] = ()):
        for middleware in middlewares:
            if not isinstance(middleware, ServerMiddleware):
                raise ServerError(
                    f"middleware {middleware!r} does not extend ServerMiddleware"
                )
        self._middlewares = tuple(middlewares)

    def __len__(self) -> int:
        return len(self._middlewares)

    @property
    def middlewares(self) -> tuple[ServerMiddleware, ...]:
        return self._middlewares

    async def run(
        self,
        hook: str,
        session: "Session",
        terminal: Callable[[], Awaitable[ChainResult]],
        **payload: Any,
    ) -> ChainResult:
        """Run one hook through the chain down to ``terminal``.

        ``payload`` is the hook's keyword payload (``request=`` or
        ``message=``).  Whatever the outermost hook returns is validated
        to be an :data:`ChainResult`; anything else is a middleware bug
        surfaced as :class:`~repro.errors.ServerError`.
        """
        if hook not in HOOKS:
            raise ServerError(f"unknown middleware hook {hook!r}; one of {HOOKS}")
        handlers = [getattr(m, hook) for m in self._middlewares]

        async def call(index: int) -> ChainResult:
            if index == len(handlers):
                return await terminal()
            return await handlers[index](
                **payload, session=session, next=lambda: call(index + 1)
            )

        result = await call(0)
        if not isinstance(result, (Ok, Deny, Redirect)):
            raise ServerError(
                f"middleware hook {hook!r} returned {type(result).__name__}; "
                "hooks must return Ok, Deny or Redirect (or await next())"
            )
        return result


# ----------------------------------------------------------------------
# Shipped middlewares
# ----------------------------------------------------------------------


class AuthTokenMiddleware(ServerMiddleware):
    """Token authentication at connect + per-surface scope enforcement.

    ``tokens`` maps bearer tokens to principal names; a connection
    whose ``authorization`` header is not a known token is denied at the
    handshake.  ``scopes`` (optional) maps principals to the surfaces
    they may touch (``"ingest"``, ``"query"``, ``"channel"``) — a
    request or channel message outside the principal's scopes is denied
    *per call*, so one middleware demonstrably gates all three surfaces.
    """

    def __init__(
        self,
        tokens: Mapping[str, str],
        scopes: Mapping[str, frozenset[str] | set[str]] | None = None,
    ):
        self._tokens = dict(tokens)
        self._scopes = (
            {user: frozenset(surfaces) for user, surfaces in scopes.items()}
            if scopes is not None
            else None
        )

    def _allowed(self, session: "Session", surface: str) -> bool:
        if self._scopes is None:
            return True
        principal = session.state.get("principal")
        return surface in self._scopes.get(principal, frozenset())

    async def connect(self, *, request, session, next):
        token = request.headers.get("authorization")
        principal = self._tokens.get(token or "")
        if principal is None:
            return Deny("invalid token")
        session.state["principal"] = principal
        return await next()

    async def request(self, *, request, session, next):
        if not self._allowed(session, request.surface):
            return Deny(f"principal lacks {request.surface!r} scope")
        return await next()

    async def channel_message(self, *, message, session, next):
        if not self._allowed(session, "channel"):
            return Deny("principal lacks 'channel' scope")
        return await next()


class RateLimitMiddleware(ServerMiddleware):
    """Per-session fixed-window rate limit over the server clock.

    Each session may issue at most ``max_calls`` requests + channel
    messages per ``window_seconds`` of server time (the deployment's
    simulator clock, so limits are deterministic under test).  Excess
    calls are denied; the handshake itself is never limited.
    """

    def __init__(self, max_calls: int, window_seconds: float = 60.0):
        if max_calls < 1:
            raise ServerError(f"rate limit needs >= 1 call: {max_calls}")
        if window_seconds <= 0:
            raise ServerError(f"rate window must be positive: {window_seconds}")
        self.max_calls = max_calls
        self.window_seconds = window_seconds

    def _admit(self, session: "Session") -> bool:
        now = session.now
        start = session.state.setdefault("rate.window_start", now)
        if now - start >= self.window_seconds:
            session.state["rate.window_start"] = now
            session.state["rate.count"] = 0
        count = session.state.get("rate.count", 0)
        if count >= self.max_calls:
            return False
        session.state["rate.count"] = count + 1
        return True

    async def request(self, *, request, session, next):
        if not self._admit(session):
            return Deny(
                f"rate limit: > {self.max_calls} calls per "
                f"{self.window_seconds:.0f}s window"
            )
        return await next()

    async def channel_message(self, *, message, session, next):
        if not self._admit(session):
            return Deny(
                f"rate limit: > {self.max_calls} calls per "
                f"{self.window_seconds:.0f}s window"
            )
        return await next()


class MiddlewareCounters:
    """Registry-backed view of what :class:`MetricsMiddleware` observed.

    Historically a bag of plain ints private to the middleware; the
    counts now live on the shared
    :class:`~repro.obs.registry.MetricsRegistry` (so they appear in the
    platform exposition and the health report), and this view reads
    them back, preserving the ``metrics.counters.requests`` API.
    """

    def __init__(self, instruments: "MiddlewareInstruments"):
        self._obs = instruments

    @property
    def connects(self) -> int:
        return int(self._obs.connects.value)

    @property
    def channel_messages(self) -> int:
        return int(self._obs.channel_messages.value)

    @property
    def denied(self) -> int:
        return int(self._obs.denied.value)

    @property
    def redirected(self) -> int:
        return int(self._obs.redirected.value)

    @property
    def requests(self) -> int:
        return sum(self.by_surface.values())

    @property
    def by_surface(self) -> dict[str, int]:
        """Requests per surface (surfaces never seen are absent)."""
        family = self._obs.registry.family("repro_middleware_requests_total")
        out: dict[str, int] = {}
        for key, child in family.children():
            labels = dict(key)
            if labels.get("instance") != self._obs.instance or not child.value:
                continue
            out[labels["surface"]] = int(child.value)
        return out


class MetricsMiddleware(ServerMiddleware):
    """Counting + logging middleware that observes downstream outcomes.

    Wraps ``next`` and inspects the returned result, so denials and
    redirects issued by *later* middlewares (or the terminal handler)
    are counted too — place it first in the chain.  ``log`` keeps the
    most recent ``log_capacity`` human-readable lines.
    """

    def __init__(self, log_capacity: int = 256):
        self.obs = MiddlewareInstruments(
            obs.metrics_registry(), obs.next_instance("middleware")
        )
        self.counters = MiddlewareCounters(self.obs)
        self.log: list[str] = []
        self._log_capacity = log_capacity

    def _note(self, line: str) -> None:
        self.log.append(line)
        if len(self.log) > self._log_capacity:
            del self.log[0]

    def _observe(self, result: ChainResult, what: str) -> ChainResult:
        if isinstance(result, Deny):
            self.obs.denied.inc()
            self._note(f"DENY {what}: {result.reason}")
        elif isinstance(result, Redirect):
            self.obs.redirected.inc()
            self._note(f"REDIRECT {what} -> {result.target}")
        else:
            self._note(f"OK {what}")
        return result

    async def connect(self, *, request, session, next):
        self.obs.connects.inc()
        return self._observe(await next(), f"connect from {request.remote}")

    async def request(self, *, request, session, next):
        self.obs.request(request.surface).inc()
        return self._observe(
            await next(), f"{request.surface}/{request.action}"
        )

    async def channel_message(self, *, message, session, next):
        self.obs.channel_messages.inc()
        return self._observe(await next(), f"channel/{message.action}")
