"""Server transports: in-process message pipes and a real TCP binding.

The server core speaks **messages** — JSON-able dicts — over an
:class:`Endpoint` (``send`` / ``recv`` / ``close``), never sockets
directly.  Two bindings implement it:

- :class:`InProcessTransport` — a pair of asyncio queues, zero sockets.
  Tests, benchmarks, and the CLI's simulated clients run on this: the
  full protocol (handshake, requests, channel pushes) is exercised with
  deterministic scheduling and no network dependency.  The client inbox
  can be bounded (``client_capacity``) to emulate a slow consumer whose
  TCP window stopped draining: the server-side sender then blocks and
  the session's bounded push queue starts dropping oldest.
- :func:`serve_tcp` / :func:`connect_tcp` — the same protocol over real
  ``asyncio`` streams, framed as one JSON object per line.  A deployment
  binds the production port; a WebSocket gateway terminates frames the
  same way (message in, message out).

Both ends see EOF as a normal close: :meth:`Endpoint.recv` returns
``None`` and the server tears the session down.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Awaitable, Callable, Optional

from repro.errors import ServerError

#: One protocol message: a JSON-able dict.
Message = dict[str, Any]

#: Sentinel queued to signal a closed pipe.
_CLOSED = object()


class Endpoint:
    """One end of a bidirectional message pipe (abstract)."""

    async def send(self, message: Message) -> None:
        raise NotImplementedError

    async def recv(self) -> Optional[Message]:
        """The next inbound message, or ``None`` once the peer closed."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    @property
    def remote(self) -> str:
        """Peer description for logs / the connect hook."""
        return "unknown"


class _QueueEndpoint(Endpoint):
    """One end of an in-process pipe: reads ``inbox``, writes ``outbox``."""

    def __init__(self, inbox: asyncio.Queue, outbox: asyncio.Queue, remote: str):
        self._inbox = inbox
        self._outbox = outbox
        self._remote = remote
        self._closed = False

    async def send(self, message: Message) -> None:
        if self._closed:
            raise ServerError("endpoint is closed")
        # May block when the peer's inbox is bounded and full — that is
        # the in-process stand-in for a TCP send buffer that stopped
        # draining (slow consumer).
        await self._outbox.put(message)

    async def recv(self) -> Optional[Message]:
        if self._closed:
            return None
        item = await self._inbox.get()
        if item is _CLOSED:
            self._closed = True
            return None
        return item

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Wake the peer's reader; bypass a full bounded queue bound.
        try:
            self._outbox.put_nowait(_CLOSED)
        except asyncio.QueueFull:  # pragma: no cover - peer already stalled
            pass

    @property
    def remote(self) -> str:
        return self._remote


class InProcessTransport:
    """A socketless client<->server pipe built from two asyncio queues.

    ``client_capacity`` bounds the client's inbox (0 = unbounded): a
    bounded inbox makes ``server_end.send`` await once the client lags,
    which is exactly how a kernel socket buffer pushes back on the
    sender — the hook the session layer's drop-oldest policy needs.
    """

    def __init__(self, client_capacity: int = 0):
        to_client: asyncio.Queue = asyncio.Queue(maxsize=client_capacity)
        to_server: asyncio.Queue = asyncio.Queue()
        self.client_end: Endpoint = _QueueEndpoint(
            inbox=to_client, outbox=to_server, remote="in-process:server"
        )
        self.server_end: Endpoint = _QueueEndpoint(
            inbox=to_server, outbox=to_client, remote="in-process:client"
        )


class _StreamEndpoint(Endpoint):
    """JSON-lines framing over an asyncio TCP stream."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()
        peer = writer.get_extra_info("peername")
        self._remote = f"{peer[0]}:{peer[1]}" if peer else "tcp:unknown"

    async def send(self, message: Message) -> None:
        data = json.dumps(message, separators=(",", ":")).encode() + b"\n"
        async with self._lock:  # sender task and reply path share the pipe
            self._writer.write(data)
            await self._writer.drain()

    async def recv(self) -> Optional[Message]:
        try:
            line = await self._reader.readline()
        except (ConnectionError, asyncio.IncompleteReadError):
            return None
        if not line:
            return None
        try:
            return json.loads(line)
        except json.JSONDecodeError as error:
            raise ServerError(f"malformed frame from {self._remote}: {error}")

    def close(self) -> None:
        self._writer.close()

    @property
    def remote(self) -> str:
        return self._remote


async def serve_tcp(
    handler: Callable[[Endpoint], Awaitable[None]],
    host: str = "127.0.0.1",
    port: int = 0,
) -> asyncio.AbstractServer:
    """Bind ``handler`` (the server's per-connection loop) to TCP.

    Returns the listening :class:`asyncio.AbstractServer` (close it to
    stop accepting); ``port=0`` picks a free port — read it back from
    ``server.sockets[0].getsockname()[1]``.
    """

    async def on_connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        endpoint = _StreamEndpoint(reader, writer)
        try:
            await handler(endpoint)
        finally:
            endpoint.close()

    return await asyncio.start_server(on_connection, host=host, port=port)


async def connect_tcp(host: str, port: int) -> Endpoint:
    """Dial a :func:`serve_tcp` listener; returns the client endpoint."""
    reader, writer = await asyncio.open_connection(host=host, port=port)
    return _StreamEndpoint(reader, writer)
