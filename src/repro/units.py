"""Time and distance unit helpers.

Timestamps throughout the library are ``float`` seconds since an arbitrary
epoch (the mobility generator uses 0 = local midnight of day 0).  Distances
are metres, speeds metres/second.  These constants keep call sites readable
without pulling in a heavyweight units package.
"""

from __future__ import annotations

SECOND: float = 1.0
MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 86400.0

METRE: float = 1.0
KILOMETRE: float = 1000.0

#: Mean Earth radius in metres (IUGG value), used by haversine and the
#: local East-North-Up projection.
EARTH_RADIUS_M: float = 6_371_008.8


def kmh(value: float) -> float:
    """Convert a speed in km/h into the library's native m/s."""
    return value * KILOMETRE / HOUR


def format_duration(seconds: float) -> str:
    """Render a duration as a compact human string, e.g. ``"2h05m"``.

    >>> format_duration(7500)
    '2h05m'
    >>> format_duration(42)
    '42s'
    """
    if seconds < MINUTE:
        return f"{seconds:.0f}s"
    if seconds < HOUR:
        minutes = int(seconds // MINUTE)
        return f"{minutes}m{seconds - minutes * MINUTE:02.0f}s"
    hours = int(seconds // HOUR)
    minutes = (seconds - hours * HOUR) / MINUTE
    return f"{hours}h{minutes:02.0f}m"
