"""The federation control plane: membership, placement, syndication.

A :class:`FederationRouter` composes many Hives into one platform:

- **placement** — every router-managed device is homed onto exactly one
  member Hive by the consistent-hash ring, so each Hive runs the ingest
  pipeline and store for its shard of the crowd only;
- **membership** — Hives :meth:`join` and :meth:`leave` at runtime; the
  ring keeps placement stable, and the devices whose owner changed are
  migrated (their user state travels with them, their running tasks and
  store-and-forward buffers ride along unharmed);
- **failure injection** — :meth:`fail` / :meth:`rejoin` (or the
  scripted :meth:`schedule_failure`) model a member crashing: its
  devices are automatically re-homed onto the survivors, and on rejoin
  the ring pulls its keyspace back.  A failed member's *store* stays
  durable and remains part of the federated query plane;
- **syndication + gossip** — tasks published into the federation are
  offered at the home Hive synchronously and announced to the other
  members over a lossy inter-hive :class:`~repro.apisense.transport.
  Transport` (with bounded retries), the same latency/loss model every
  other hop in the platform uses.  Membership changes gossip the same
  way, so each member keeps its own view of the federation.

There is no single data point: placement is a pure ring function any
member can evaluate, and collected data never leaves the owning Hive's
store until a federated query merges at read time.
"""

from __future__ import annotations

import dataclasses
import time as _time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro import obs
from repro.apisense.hive import Hive, TaskStats
from repro.obs.instruments import FederationInstruments
from repro.apisense.tasks import SensingTask
from repro.errors import PlatformError
from repro.federation.ring import ConsistentHashRing
from repro.simulation import FaultInjector, Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.apisense.device import MobileDevice, SensorRecord
    from repro.apisense.honeycomb import Honeycomb
    from repro.apisense.transport import Transport


@dataclass(frozen=True)
class MembershipEvent:
    """One logged change of the federation's member set."""

    time: float
    hive: str
    kind: str  # "join" | "leave" | "fail" | "rejoin"


@dataclass(frozen=True)
class MigrationEvent:
    """One device re-homed from one member to another."""

    time: float
    device_id: str
    user: str
    from_hive: str
    to_hive: str
    reason: str  # "join" | "leave" | "failover" | "rejoin"


@dataclass
class ControlPlaneStats:
    """Counters of the inter-hive control plane."""

    task_announcements: int = 0
    membership_updates: int = 0
    messages_sent: int = 0
    messages_lost: int = 0
    retries: int = 0
    gave_up: int = 0

    @property
    def loss_rate(self) -> float:
        if self.messages_sent == 0:
            return 0.0
        return self.messages_lost / self.messages_sent


@dataclass(frozen=True)
class FederatedSyndicationReceipt:
    """What one federated task publication did at creation time.

    With a lossy control transport, partner offers land only after the
    announcement is delivered — read live numbers from
    :meth:`FederationRouter.task_stats`.
    """

    task: str
    home_hive: str
    partner_hives: tuple[str, ...]
    home_offers: int
    announcements: int


@dataclass
class _SyndicatedTask:
    """Router-side record of one syndicated task (for catalog sync)."""

    task: SensingTask
    owner: "Honeycomb"
    recruitment: object | None
    #: Members the task is *offered* at (every member adopts it).
    offered_at: set[str]


class FederationRouter:
    """Places devices onto member Hives and runs the control plane."""

    def __init__(
        self,
        sim: Simulator,
        control_transport: "Transport | None" = None,
        replicas: int = 128,
        control_retry_delay: float = 5.0,
        control_max_retries: int = 8,
    ):
        self._sim = sim
        #: Inter-hive hop for task announcements and membership gossip;
        #: ``None`` means an ideal synchronous control plane (tests,
        #: single-process deployments).
        self.transport = control_transport
        self.control_retry_delay = control_retry_delay
        self.control_max_retries = control_max_retries
        self.ring = ConsistentHashRing(replicas)
        self._hives: dict[str, Hive] = {}
        self._down: set[str] = set()
        self._devices: dict[str, "MobileDevice"] = {}
        self._placements: dict[str, str] = {}
        self._tasks: dict[str, _SyndicatedTask] = {}
        #: Each member's gossiped view of the federation (hive -> names).
        self._peer_views: dict[str, set[str]] = {}
        self.faults = FaultInjector(sim)
        self.membership_log: list[MembershipEvent] = []
        self.migration_log: list[MigrationEvent] = []
        self.stats = ControlPlaneStats()
        self.obs = FederationInstruments(
            obs.metrics_registry(), obs.next_instance("federation")
        )
        self._tracer = obs.tracer()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def sim(self) -> Simulator:
        """The simulator clock the federation runs on."""
        return self._sim

    @property
    def member_names(self) -> list[str]:
        """All members, up or down (sorted for determinism)."""
        return sorted(self._hives)

    @property
    def up_members(self) -> list[str]:
        return sorted(name for name in self._hives if name not in self._down)

    @property
    def down_members(self) -> list[str]:
        return sorted(self._down)

    def hive(self, name: str) -> Hive:
        if name not in self._hives:
            raise PlatformError(f"unknown federated hive {name!r}")
        return self._hives[name]

    def is_up(self, name: str) -> bool:
        return name in self._hives and name not in self._down

    def home_of(self, device_id: str) -> str:
        """The member currently homing a router-managed device."""
        if device_id not in self._placements:
            raise PlatformError(f"device {device_id!r} not placed by this federation")
        return self._placements[device_id]

    def place(self, key: str) -> str:
        """Ring placement of an arbitrary key (pure function)."""
        return self.ring.place(key)

    def total_devices(self) -> int:
        """Community size across the whole federation."""
        return sum(len(hive.devices) for hive in self._hives.values())

    def placement_spread(self) -> dict[str, int]:
        """Router-managed devices per member (load-balance view)."""
        counts = {name: 0 for name in self._hives}
        for home in self._placements.values():
            counts[home] += 1
        return counts

    def peer_view(self, name: str) -> set[str]:
        """The member set as gossiped to one member (its local view)."""
        if name not in self._hives:
            raise PlatformError(f"unknown federated hive {name!r}")
        return set(self._peer_views.get(name, set()))

    def task_stats(self, task_name: str) -> dict[str, TaskStats]:
        """Per-member :class:`TaskStats` of one syndicated task."""
        stats: dict[str, TaskStats] = {}
        for name, hive in self._hives.items():
            per_task = hive.stats.per_task.get(task_name)
            if per_task is not None:
                stats[name] = per_task
        return stats

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def join(self, name: str, hive: Hive) -> list[MigrationEvent]:
        """Add a member; re-home the ~1/N of devices the ring hands it.

        The join handshake synchronously syncs the syndicated-task
        catalog onto the joining Hive (an admin operation, not gossip),
        so a migrated device can upload immediately; the *announcement*
        of the join to the other members rides the lossy control plane.
        """
        if name in self._hives:
            raise PlatformError(f"hive {name!r} already federated")
        self._hives[name] = hive
        self.ring.add(name)
        # Adopt before devices migrate in (their uploads need routing);
        # offer after, so the offers reach the migrated devices.
        self._adopt_catalog(name)
        self._peer_views[name] = set(self._hives)
        self.membership_log.append(MembershipEvent(self._sim.now, name, "join"))
        self._gossip_membership()
        migrations = self._rebalance(reason="join")
        self._offer_catalog(name)
        return migrations

    def leave(self, name: str) -> list[MigrationEvent]:
        """Remove a member permanently; its devices re-home elsewhere.

        The departing Hive's store leaves the federated query plane with
        it — drain or hand off its data first if it must be kept.
        """
        self._require_member(name)
        if len(self.up_members) <= 1 and name not in self._down:
            raise PlatformError("cannot remove the last live federation member")
        if name not in self._down:
            self.ring.remove(name)
        migrations = self._rebalance(reason="leave")
        del self._hives[name]
        self._down.discard(name)
        self._peer_views.pop(name, None)
        self.membership_log.append(MembershipEvent(self._sim.now, name, "leave"))
        self._gossip_membership()
        return migrations

    def fail(self, name: str) -> list[MigrationEvent]:
        """Crash a member: drop it from the ring, re-home its devices.

        The failure is a control-plane event — the member stops homing
        devices and receiving announcements — but its columnar store
        stays durable and queryable (disks outlive processes).
        """
        self._require_member(name)
        if name in self._down:
            raise PlatformError(f"hive {name!r} is already down")
        if len(self.up_members) <= 1:
            raise PlatformError("cannot fail the last live federation member")
        self._down.add(name)
        self.ring.remove(name)
        self.membership_log.append(MembershipEvent(self._sim.now, name, "fail"))
        self._gossip_membership()
        return self._rebalance(reason="failover")

    def rejoin(self, name: str) -> list[MigrationEvent]:
        """Recover a failed member: it pulls its keyspace back.

        Like :meth:`join`, the handshake syncs the task catalog (tasks
        syndicated during the outage were never delivered to it).
        """
        self._require_member(name)
        if name not in self._down:
            raise PlatformError(f"hive {name!r} is not down")
        self._down.discard(name)
        self.ring.add(name)
        self._adopt_catalog(name)
        self._peer_views[name] = set(self._hives)
        self.membership_log.append(MembershipEvent(self._sim.now, name, "rejoin"))
        self._gossip_membership()
        migrations = self._rebalance(reason="rejoin")
        self._offer_catalog(name)
        return migrations

    def schedule_failure(
        self, name: str, at: float, duration: float | None = None
    ) -> None:
        """Script a member outage (and recovery) as simulator events."""
        self._require_member(name)
        self.faults.schedule_outage(
            f"hive:{name}",
            at,
            duration,
            on_down=lambda: self.fail(name),
            on_up=lambda: self.rejoin(name),
        )

    def _require_member(self, name: str) -> None:
        if name not in self._hives:
            raise PlatformError(f"unknown federated hive {name!r}")

    # ------------------------------------------------------------------
    # Device placement
    # ------------------------------------------------------------------

    def register_device(self, device: "MobileDevice") -> str:
        """Home a device onto its ring-assigned member; returns its name."""
        if not self._hives:
            raise PlatformError("federation has no members; join() a hive first")
        if device.device_id in self._placements:
            raise PlatformError(f"device {device.device_id!r} already placed")
        home = self.ring.place(device.device_id)
        self._hives[home].register_device(device)
        self._devices[device.device_id] = device
        self._placements[device.device_id] = home
        return home

    def _rebalance(self, reason: str) -> list[MigrationEvent]:
        """Migrate every device whose ring owner changed."""
        migrations: list[MigrationEvent] = []
        for device_id, current in list(self._placements.items()):
            target = self.ring.place(device_id)
            if target != current:
                migrations.append(self._migrate(device_id, target, reason))
        return migrations

    def _migrate(self, device_id: str, to_name: str, reason: str) -> MigrationEvent:
        timed = self.obs.registry.enabled
        started = _time.perf_counter() if timed else 0.0
        from_name = self._placements[device_id]
        with self._tracer.span(
            "federation.migration",
            device=device_id,
            from_hive=from_name,
            to_hive=to_name,
            reason=reason,
        ):
            from_hive = self._hives[from_name]
            to_hive = self._hives[to_name]
            device = from_hive.unregister_device(device_id)
            # A *copy* of the user's community state (motivation history)
            # travels with the first of their devices to arrive; local
            # history wins, and the two hives must never share the mutable
            # state (a user's other device may stay behind).
            state = from_hive.community.get(device.user)
            if state is not None:
                to_hive.adopt_user_state(dataclasses.replace(state))
            to_hive.register_device(device)
            self._placements[device_id] = to_name
            event = MigrationEvent(
                time=self._sim.now,
                device_id=device_id,
                user=device.user,
                from_hive=from_name,
                to_hive=to_name,
                reason=reason,
            )
            self.migration_log.append(event)
        self.obs.migrations.inc()
        if timed:
            self.obs.migration_seconds.observe(_time.perf_counter() - started)
        return event

    # ------------------------------------------------------------------
    # Task syndication
    # ------------------------------------------------------------------

    def syndicate(
        self,
        task: SensingTask,
        owner: "Honeycomb",
        home: str,
        partners: list[str] | None = None,
        recruitment=None,
    ) -> FederatedSyndicationReceipt:
        """Publish ``task`` federation-wide from its home member.

        The home Hive publishes synchronously (the Honeycomb lives
        there).  Every other live member receives an announcement over
        the control transport: partners adopt *and offer* the task to
        their shard of the crowd, non-partners adopt it for routing only
        (so migrated devices can keep uploading).  Down members catch up
        through the rejoin catalog sync.  All data routes back to the
        one owning Honeycomb regardless of which community produced it.
        """
        self._require_member(home)
        if home in self._down:
            raise PlatformError(f"home hive {home!r} is down")
        partner_names = (
            [name for name in self.member_names if name != home]
            if partners is None
            else list(partners)
        )
        for name in partner_names:
            self._require_member(name)
            if name == home:
                raise PlatformError("home hive listed among partners")
        if task.name in self._tasks:
            raise PlatformError(f"task {task.name!r} already syndicated")

        owner.register_task(task)
        entry = _SyndicatedTask(
            task=task,
            owner=owner,
            recruitment=recruitment,
            offered_at={home, *partner_names},
        )
        self._tasks[task.name] = entry

        home_hive = self._hives[home]
        home_hive.adopt_task(task, owner)
        home_offers = home_hive.offer_task(task.name, recruitment=recruitment)

        announcements = 0
        for name in self.member_names:
            if name == home or name in self._down:
                continue
            announcements += 1
            self.stats.task_announcements += 1
            self._control_send(
                lambda n=name: self._deliver_task(n, entry)
            )
        return FederatedSyndicationReceipt(
            task=task.name,
            home_hive=home,
            partner_hives=tuple(partner_names),
            home_offers=home_offers,
            announcements=announcements,
        )

    def _deliver_task(self, name: str, entry: _SyndicatedTask) -> None:
        """A task announcement arrives at one member."""
        hive = self._hives.get(name)
        if hive is None or name in self._down:
            return  # left or crashed while the message was in flight
        if entry.task.name not in hive.stats.per_task:
            hive.adopt_task(entry.task, entry.owner)
        if name in entry.offered_at:
            hive.offer_task(entry.task.name, recruitment=entry.recruitment)

    def _adopt_catalog(self, name: str) -> None:
        """Join/rejoin handshake, adopt half: admit every syndicated
        task locally.

        Synchronous on purpose — a migrated device may upload to the new
        member immediately, before any gossip round.  Runs *before* the
        rebalance so those uploads route.
        """
        hive = self._hives[name]
        for entry in self._tasks.values():
            if entry.task.name not in hive.stats.per_task:
                hive.adopt_task(entry.task, entry.owner)

    def _offer_catalog(self, name: str) -> None:
        """Join/rejoin handshake, offer half: re-offer the tasks this
        member publishes.

        Runs *after* the rebalance so offers reach the devices just
        homed onto the member, not an empty community.  Live tasks are
        re-offered only; devices already running one decline the
        duplicate.
        """
        hive = self._hives[name]
        for entry in self._tasks.values():
            if name in entry.offered_at and entry.task.end > self._sim.now:
                hive.offer_task(entry.task.name, recruitment=entry.recruitment)

    def placement_recruitment(self, hive_name: str):
        """A recruitment policy restricting offers to ring-owned devices.

        Compose it (``&``) with any other policy when publishing through
        a member Hive directly: devices the ring homes elsewhere (stale
        registrations, handover races) are filtered out so no device is
        offered the same task by two members.
        """
        from repro.apisense.recruitment import PredicateRecruitment

        self._require_member(hive_name)
        return PredicateRecruitment(
            lambda device, _time: self.ring.place(device.device_id) == hive_name,
            name=f"placement[{hive_name}]",
        )

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def route_upload(
        self,
        device_id: str,
        user: str,
        task_name: str,
        records: list["SensorRecord"],
    ) -> tuple[str, int]:
        """Ingest an upload batch at the member owning ``device_id``.

        The scale-out entry point for deployments that terminate device
        connections at a fleet gateway instead of binding
        :class:`MobileDevice` objects: the ring decides which member's
        pipeline absorbs the batch.  Returns ``(member, accepted)``.
        """
        home = self.ring.place(device_id)
        accepted = self._hives[home].receive_upload(device_id, user, task_name, records)
        return home, accepted

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def _gossip_membership(self) -> None:
        """Announce the current member set to every live member."""
        members = set(self._hives)
        self.obs.gossip_rounds.inc()
        for name in self.up_members:
            self.stats.membership_updates += 1
            self._control_send(
                lambda n=name, m=frozenset(members): self._deliver_membership(n, m)
            )

    def _deliver_membership(self, name: str, members: frozenset[str]) -> None:
        if name in self._hives and name not in self._down:
            self._peer_views[name] = set(members)

    def _control_send(self, deliver: Callable[[], None]) -> None:
        """One control message with bounded loss retries.

        With no transport configured the control plane is ideal and
        synchronous; with one, the message pays the same latency/loss as
        any other hop and is retried ``control_max_retries`` times with
        ``control_retry_delay`` spacing before giving up.
        """
        if self.transport is None:
            self.stats.messages_sent += 1
            self.obs.messages_sent.inc()
            deliver()
            return
        attempts = 0

        def attempt() -> None:
            nonlocal attempts
            attempts += 1
            self.stats.messages_sent += 1
            self.obs.messages_sent.inc()
            if self.transport.send(self._sim, deliver):
                return
            self.stats.messages_lost += 1
            self.obs.messages_lost.inc()
            if attempts <= self.control_max_retries:
                self.stats.retries += 1
                self.obs.retries.inc()
                self._sim.schedule(self.control_retry_delay, attempt)
            else:
                self.stats.gave_up += 1

        attempt()
