"""The federated query plane: one view over every member's store.

Data collected by a federated crowd never congregates in one store —
each member Hive's :class:`~repro.store.DatasetStore` holds its shard of
the crowd's records.  :class:`FederatedDataset` gives readers back the
single-store API: a :meth:`~FederatedDataset.scan` fans the filtered
columnar scan out across every member store and merges the results
(re-interning user ids into one shared table), and
:meth:`~FederatedDataset.aggregate` folds the members' streaming
aggregates into one :class:`FederatedTaskAggregate`.

Because placement homes each device on exactly one member, the same
record is never stored twice — merged counts equal what a single
monolithic Hive would have collected, which is the federation's no-loss
/ no-duplication invariant (asserted by ``benchmarks/
test_bench_federation.py``).

Percentile caveat: P² sketches do not compose exactly, so the federated
``lag_p95``/``lag_p99`` are the *worst member's* values — a conservative
SLA bound — while means and counts merge exactly.  Per-member sketches
stay readable via :attr:`FederatedTaskAggregate.per_member`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.errors import StoreError
from repro.privacy.secure_aggregation import (
    ParticipantProfile,
    SecureAggregationPolicy,
    SecureAggregationSession,
    histogram_components,
)
from repro.store.aggregates import TaskAggregate
from repro.store.dataset_store import ColumnarBatch, DatasetStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.router import FederationRouter
    from repro.simulation import FaultInjector


@dataclass(frozen=True)
class FederatedTaskAggregate:
    """Streaming aggregates of one task, merged across members."""

    task: str
    records: int
    gps_records: int
    users: frozenset[str]
    coverage_cells: int
    first_time: float | None
    last_time: float | None
    lag_mean: float
    lag_max: float
    #: Conservative federation-wide percentiles: the worst member's view.
    lag_p50: float
    lag_p95: float
    lag_p99: float
    per_member: Mapping[str, TaskAggregate] = field(default_factory=dict)

    @property
    def n_users(self) -> int:
        return len(self.users)

    def to_text(self) -> str:
        lines = [
            f"federated task {self.task}: {self.records} records from "
            f"{self.n_users} users across {len(self.per_member)} hives, "
            f"{self.coverage_cells} coverage cells, "
            f"lag mean {self.lag_mean:.1f}s / worst p95 {self.lag_p95:.1f}s"
        ]
        for name in sorted(self.per_member):
            member = self.per_member[name]
            lines.append(
                f"  {name}: {member.records} records, {member.n_users} users, "
                f"{member.coverage_cells} cells, p95 {member.lag_p95:.1f}s"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class FederatedSecureAggregate:
    """Aggregates of one task computed without any aggregator seeing
    per-participant data (see :meth:`FederatedDataset.secure_aggregate`).

    ``records``/``value_count`` are exact (integers survive the
    fixed-point codec); ``value_sum`` matches the plaintext sum within
    codec tolerance (``0.5 * contributors / 10**decimals``).
    """

    task: str
    records: int
    value_count: int
    value_sum: float
    histogram: Mapping[str, int] | None
    contributors: int
    dropped: tuple[str, ...]
    protocol_split: Mapping[str, int]
    members: tuple[str, ...]

    @property
    def mean_value(self) -> float:
        return self.value_sum / self.value_count if self.value_count else 0.0

    def to_text(self) -> str:
        split = ", ".join(
            f"{name}:{count}" for name, count in sorted(self.protocol_split.items())
        )
        lines = [
            f"secure aggregate of {self.task}: {self.records} records from "
            f"{self.contributors} contributors across {len(self.members)} hives "
            f"({split}; {len(self.dropped)} dropped), "
            f"value sum {self.value_sum:.3f} / mean {self.mean_value:.3f}"
        ]
        if self.histogram is not None:
            for label, count in self.histogram.items():
                lines.append(f"  {label}: {count}")
        return "\n".join(lines)


class FederatedDataset:
    """Read-side federation: scans and aggregates over member stores."""

    def __init__(self, stores: Mapping[str, DatasetStore]):
        if not stores:
            raise StoreError("federated dataset needs at least one member store")
        self._stores = dict(stores)

    @classmethod
    def from_router(cls, router: "FederationRouter") -> "FederatedDataset":
        """The query view of a federation's current members.

        Down members are included: their stores are durable and the
        query plane reads storage, not processes.
        """
        return cls({name: router.hive(name).store for name in router.member_names})

    @property
    def member_names(self) -> list[str]:
        return sorted(self._stores)

    def store(self, name: str) -> DatasetStore:
        if name not in self._stores:
            raise StoreError(f"unknown federation member {name!r}")
        return self._stores[name]

    @property
    def tasks(self) -> list[str]:
        names: dict[str, None] = {}
        for store in self._stores.values():
            for task in store.tasks:
                names.setdefault(task, None)
        return list(names)

    @property
    def n_records(self) -> int:
        return sum(store.n_records for store in self._stores.values())

    # ------------------------------------------------------------------
    # Scan path
    # ------------------------------------------------------------------

    def scan(
        self,
        task: str,
        t0: float | None = None,
        t1: float | None = None,
        bbox=None,
        user: str | None = None,
    ) -> ColumnarBatch:
        """Fan a filtered columnar scan out and merge the results.

        Same filter semantics as :meth:`DatasetStore.scan`; the merged
        batch re-interns user ids into one federation-wide table (each
        member numbers its users independently).
        """
        merged_users: dict[str, int] = {}
        pieces: list[tuple[np.ndarray, ...]] = []
        for name in sorted(self._stores):
            batch = self._stores[name].scan(task, t0=t0, t1=t1, bbox=bbox, user=user)
            if not len(batch):
                continue
            remap = np.array(
                [
                    merged_users.setdefault(member_user, len(merged_users))
                    for member_user in batch.user_table
                ],
                dtype=np.int64,
            )
            pieces.append(
                (batch.time, batch.lat, batch.lon, batch.value, remap[batch.user_id])
            )
        if not pieces:
            empty = np.empty(0, dtype=np.float64)
            return ColumnarBatch(
                time=empty,
                lat=empty,
                lon=empty,
                value=empty,
                user_id=np.empty(0, dtype=np.int64),
                user_table=tuple(merged_users),
            )
        return ColumnarBatch(
            time=np.concatenate([p[0] for p in pieces]),
            lat=np.concatenate([p[1] for p in pieces]),
            lon=np.concatenate([p[2] for p in pieces]),
            value=np.concatenate([p[3] for p in pieces]),
            user_id=np.concatenate([p[4] for p in pieces]),
            user_table=tuple(merged_users),
        )

    def scan_time(self, task: str, t0: float, t1: float) -> ColumnarBatch:
        return self.scan(task, t0=t0, t1=t1)

    def scan_bbox(self, task: str, bbox) -> ColumnarBatch:
        return self.scan(task, bbox=bbox)

    def scan_user(self, task: str, user: str) -> ColumnarBatch:
        return self.scan(task, user=user)

    # ------------------------------------------------------------------
    # Aggregate path
    # ------------------------------------------------------------------

    def aggregate(self, task: str) -> FederatedTaskAggregate:
        """Merge the members' streaming aggregates for one task.

        Counts, user sets, coverage cells, time bounds and lag means
        merge exactly; percentiles are the worst member's (see module
        docstring).  Raises :class:`StoreError` when no member has data
        for the task.
        """
        per_member: dict[str, TaskAggregate] = {}
        cell_degs: set[float] = set()
        for name, store in self._stores.items():
            aggregate = store.aggregates.get(task)
            if aggregate is not None:
                per_member[name] = aggregate
                cell_degs.add(aggregate.cell_deg)
        if not per_member:
            raise StoreError(f"no aggregates for unknown task {task!r}")
        if len(cell_degs) > 1:
            raise StoreError(
                f"members disagree on coverage cell size for {task!r}: "
                f"{sorted(cell_degs)}; coverage cells cannot be merged"
            )

        users: set[str] = set()
        cells: set[tuple[int, int]] = set()
        first_time: float | None = None
        last_time: float | None = None
        lag_sum = 0.0
        lag_count = 0
        for name, aggregate in per_member.items():
            table = self._stores[name].users
            users.update(table[uid] for uid in aggregate.user_ids)
            cells.update(aggregate.cells)
            if aggregate.first_time is not None:
                first_time = (
                    aggregate.first_time
                    if first_time is None
                    else min(first_time, aggregate.first_time)
                )
            if aggregate.last_time is not None:
                last_time = (
                    aggregate.last_time
                    if last_time is None
                    else max(last_time, aggregate.last_time)
                )
            lag_sum += aggregate.lag_sum
            lag_count += aggregate.lag_count

        return FederatedTaskAggregate(
            task=task,
            records=sum(a.records for a in per_member.values()),
            gps_records=sum(a.gps_records for a in per_member.values()),
            users=frozenset(users),
            coverage_cells=len(cells),
            first_time=first_time,
            last_time=last_time,
            lag_mean=lag_sum / lag_count if lag_count else 0.0,
            lag_max=max(a.lag_max for a in per_member.values()),
            lag_p50=max(a.lag_p50 for a in per_member.values()),
            lag_p95=max(a.lag_p95 for a in per_member.values()),
            lag_p99=max(a.lag_p99 for a in per_member.values()),
            per_member=per_member,
        )

    # ------------------------------------------------------------------
    # Secure aggregate path (the privacy tier)
    # ------------------------------------------------------------------

    def secure_aggregate(
        self,
        task: str,
        *,
        bin_edges: Sequence[float] | None = None,
        policy: SecureAggregationPolicy | None = None,
        profiles: Mapping[str, ParticipantProfile] | None = None,
        rng: random.Random | None = None,
        faults: "FaultInjector | None" = None,
        fault_prefix: str = "device:",
        down: "set[str] | frozenset[str]" = frozenset(),
    ) -> FederatedSecureAggregate:
        """Counts / sums / means / histograms, aggregator-obliviously.

        Every (member, user) pair with data for ``task`` becomes one
        protocol participant contributing its private partial vector —
        record count, scalar-value count and sum, plus one histogram
        bin-count per ``bin_edges`` bin (numpy convention: last bin
        closed).  The protocols guarantee the folding parties see only
        ciphertexts / masked integers; the decrypted federation totals
        equal the plaintext :meth:`aggregate`/:meth:`scan` results
        within fixed-point tolerance.

        ``profiles`` (user id -> :class:`ParticipantProfile`, e.g. from
        :meth:`repro.apisense.hive.Hive.secure_participants`) feeds the
        per-device protocol selection; users without a profile are
        treated as strong devices.  Dropouts come from ``down`` (user
        ids) and from ``faults`` (components ``{fault_prefix}{user}``);
        the returned totals cover the survivors only, and
        ``dropped`` lists who fell out.
        """
        components = ["records", "value_count", "value_sum"]
        if bin_edges is not None:
            components.extend(histogram_components(bin_edges))
        profiles = profiles or {}

        participants: list[ParticipantProfile] = []
        contributions: dict[str, list[float]] = {}
        expanded_down: set[str] = set()
        for name in sorted(self._stores):
            batch = self._stores[name].scan(task)
            if not len(batch):
                continue
            for uid in np.unique(batch.user_id):
                user = batch.user_table[int(uid)]
                mask = batch.user_id == uid
                values = batch.value[mask]
                finite = values[np.isfinite(values)]
                vector = [
                    float(mask.sum()),
                    float(len(finite)),
                    float(finite.sum()) if len(finite) else 0.0,
                ]
                if bin_edges is not None:
                    counts, _ = np.histogram(finite, bins=np.asarray(bin_edges, dtype=float))
                    vector.extend(float(c) for c in counts)
                base = profiles.get(user)
                pid = f"{name}:{user}"
                participants.append(
                    ParticipantProfile(
                        participant_id=pid,
                        battery=base.battery if base else None,
                        supports_paillier=base.supports_paillier if base else True,
                        member=name,
                    )
                )
                contributions[pid] = vector
                if user in down or pid in down:
                    expanded_down.add(pid)
                elif faults is not None and faults.is_down(f"{fault_prefix}{user}"):
                    expanded_down.add(pid)
        if not contributions:
            raise StoreError(f"no member holds records for task {task!r}")

        session = SecureAggregationSession(
            task,
            participants,
            components=components,
            policy=policy,
            rng=rng,
        )
        result = session.run(contributions, down=expanded_down)

        histogram = None
        if bin_edges is not None:
            histogram = {
                label: int(round(result.sums[label]))
                for label in components[3:]
            }
        return FederatedSecureAggregate(
            task=task,
            records=int(round(result.sums["records"])),
            value_count=int(round(result.sums["value_count"])),
            value_sum=result.sums["value_sum"],
            histogram=histogram,
            contributors=result.contributors,
            dropped=result.dropped,
            protocol_split=result.protocol_split,
            members=tuple(self.member_names),
        )
