"""Consistent-hash placement of devices onto Hives.

The classic construction: each Hive contributes ``replicas`` virtual
nodes hashed onto a 32-bit ring, and a key is owned by the first virtual
node clockwise from its hash.  The properties that matter here:

- **deterministic** — placement is a pure function of (members,
  replicas, key); every member of the federation computes the same
  answer without coordination, and identical runs place identically;
- **stable** — adding or removing one Hive re-homes only the keys whose
  clockwise successor changed, ~1/N of the crowd, instead of reshuffling
  everyone the way ``hash(key) % N`` would.

Hashing uses :func:`zlib.crc32` like the store's shard routing — fast,
seedless, and stable across processes and Python versions (``hash()`` is
salted per process and would break determinism).
"""

from __future__ import annotations

import bisect
import zlib
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import PlatformError


def _hash32(key: str) -> int:
    return zlib.crc32(key.encode())


@dataclass(frozen=True)
class PlacementDiff:
    """Which keys moved across one membership change."""

    moved: dict[str, tuple[str, str]] = field(default_factory=dict)

    @property
    def n_moved(self) -> int:
        return len(self.moved)

    def moved_to(self, node: str) -> list[str]:
        return [key for key, (_old, new) in self.moved.items() if new == node]

    def moved_from(self, node: str) -> list[str]:
        return [key for key, (old, _new) in self.moved.items() if old == node]


class ConsistentHashRing:
    """A consistent-hash ring of named nodes with virtual replicas."""

    def __init__(self, replicas: int = 128):
        if replicas <= 0:
            raise PlatformError(f"replicas must be positive: {replicas}")
        self.replicas = replicas
        self._nodes: set[str] = set()
        #: Sorted virtual-node hashes and the parallel owner list.
        self._hashes: list[int] = []
        self._owners: list[str] = []

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        if node in self._nodes:
            raise PlatformError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for replica in range(self.replicas):
            point = _hash32(f"{node}\x00vnode\x00{replica}")
            index = bisect.bisect(self._hashes, point)
            # CRC collisions between distinct vnodes are resolved by
            # insertion order; they only shift a hair of keyspace.
            self._hashes.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise PlatformError(f"node {node!r} not on the ring")
        self._nodes.discard(node)
        kept = [
            (point, owner)
            for point, owner in zip(self._hashes, self._owners)
            if owner != node
        ]
        self._hashes = [point for point, _ in kept]
        self._owners = [owner for _, owner in kept]

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def place(self, key: str) -> str:
        """The node owning ``key`` (first virtual node clockwise)."""
        if not self._nodes:
            raise PlatformError("cannot place on an empty ring")
        index = bisect.bisect(self._hashes, _hash32(key))
        if index == len(self._hashes):  # wrap around the ring
            index = 0
        return self._owners[index]

    def placement(self, keys: Iterable[str]) -> dict[str, str]:
        """Batch placement: ``{key: node}``."""
        return {key: self.place(key) for key in keys}

    def diff(self, keys: Iterable[str], other: "ConsistentHashRing") -> PlacementDiff:
        """Keys whose owner differs between this ring and ``other``."""
        moved: dict[str, tuple[str, str]] = {}
        for key in keys:
            old = self.place(key)
            new = other.place(key)
            if old != new:
                moved[key] = (old, new)
        return PlacementDiff(moved=moved)

    def spread(self, keys: Iterable[str]) -> dict[str, int]:
        """Keys per node (load-balance check); includes empty nodes."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.place(key)] += 1
        return counts
