"""Federation-wide live dashboards: merging member window snapshots.

A federated deployment runs one stream engine per member Hive; each
engine closes windows over its own slice of the crowd.  Because
placement homes every device on exactly one member, same-window member
snapshots partition the crowd's records — so folding them (count-sum,
cell-union, user-activity-sum, P²-merge) reconstructs exactly the view
a single monolithic Hive's engine would have materialized (percentiles
within sketch-merge tolerance; everything else exact).

:class:`FederatedStreamMerger` does that fold at read time: no snapshot
shipping, no coordination — it reads the members' retained window
histories and merges on demand, mirroring how
:class:`~repro.federation.query.FederatedDataset` treats the batch
store.  Members close windows independently (their watermarks advance
with their own traffic), so merging anchors on the newest window
boundary **every** member has closed.
"""

from __future__ import annotations

import hashlib
import struct
import time as _time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Mapping

from repro import obs
from repro.crypto import FixedPointCodec, MaskedAggregation, MaskingParticipant
from repro.errors import StreamError
from repro.obs.instruments import MergerInstruments
from repro.streams.engine import StreamEngine
from repro.streams.queries import StreamAlert
from repro.streams.views import WindowSnapshot, merge_snapshots

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.router import FederationRouter

#: Component order of the secure window fold (additive stats only).
SECURE_WINDOW_COMPONENTS = ("records", "value_count", "value_sum")


@dataclass(frozen=True)
class SecureWindowTotals:
    """One window's federation-wide additive totals, securely folded.

    Only the exactly-additive window state travels the masking protocol
    (record count, scalar-value count and sum) — cells and sketches are
    set/CDF-structured and stay member-local.  ``protocol`` records how
    the fold ran: ``"masking"`` for a real multi-member round,
    ``"plaintext"`` when a single member held the window (masking a
    cohort of one would hide nothing from anyone).
    """

    task: str
    view: str
    start: float
    end: float
    members: tuple[str, ...]
    records: int
    value_count: int
    value_sum: float
    protocol: str

    @property
    def rate(self) -> float:
        duration = self.end - self.start
        return self.records / duration if duration else 0.0

    @property
    def mean_value(self) -> float:
        return self.value_sum / self.value_count if self.value_count else 0.0

    def to_text(self) -> str:
        return (
            f"[{self.start:.0f},{self.end:.0f})s {self.task}/{self.view} (secure, "
            f"{len(self.members)} hives, {self.protocol}): {self.records} rec "
            f"({self.rate:.2f}/s), value mean {self.mean_value:.3f}"
        )


class FederatedStreamMerger:
    """One live windowed view over every member Hive's stream engine."""

    def __init__(self, engines: Mapping[str, StreamEngine]):
        if not engines:
            raise StreamError("federated stream merger needs at least one engine")
        self._engines = dict(engines)
        self.obs = MergerInstruments(obs.metrics_registry(), obs.next_instance("merger"))
        self._tracer = obs.tracer()

    @classmethod
    def from_router(cls, router: "FederationRouter") -> "FederatedStreamMerger":
        """The live view of a federation's current members."""
        return cls(
            {name: router.hive(name).streams for name in router.member_names}
        )

    @property
    def member_names(self) -> list[str]:
        return sorted(self._engines)

    def engine(self, name: str) -> StreamEngine:
        if name not in self._engines:
            raise StreamError(f"unknown federation member {name!r}")
        return self._engines[name]

    @property
    def tasks(self) -> list[str]:
        names: set[str] = set()
        for engine in self._engines.values():
            names.update(engine.tasks)
        return sorted(names)

    @property
    def views(self) -> list[str]:
        """View names registered on every member (mergeable views)."""
        common: set[str] | None = None
        for engine in self._engines.values():
            names = set(engine.views)
            common = names if common is None else common & names
        return sorted(common or ())

    # ------------------------------------------------------------------
    # Merge path
    # ------------------------------------------------------------------

    def common_boundary(self, task: str, view: str) -> float | None:
        """The newest window end every member holding the view has closed.

        Members that never materialized (task, view) — e.g. no device of
        that task homed there yet — don't hold the federation back and
        are simply skipped.  A member that *has* ingested the task's
        records but not closed any window yet is pending, not idle:
        merging without it would under-count, so it pins the boundary to
        ``None`` until its first close.
        """
        ends = []
        for engine in self._engines.values():
            if view not in engine.views:
                continue
            latest = engine.latest(task, view)
            if latest is None:
                if task in engine.tasks:
                    return None  # ingested but nothing closed: wait
                continue
            ends.append(latest.end)
        return min(ends) if ends else None

    def merged(
        self, task: str, view: str, end: float | None = None
    ) -> WindowSnapshot:
        """Fold the members' snapshots of one window into one view.

        ``end`` selects the window by its close boundary (default: the
        newest boundary all members have reached, see
        :meth:`common_boundary`).  Members whose retained history does
        not include that window contribute nothing (their slice of the
        crowd was idle or the window aged out of their history).
        """
        if end is None:
            end = self.common_boundary(task, view)
            if end is None:
                raise StreamError(
                    f"no member has closed a window of {task!r}/{view!r} yet"
                )
        timed = self.obs.registry.enabled
        started = _time.perf_counter() if timed else 0.0
        pieces = []
        for engine in self._engines.values():
            if view not in engine.views:
                continue
            for snapshot in engine.snapshots(task, view):
                if snapshot.end == end:
                    pieces.append(snapshot)
                    break
        if not pieces:
            raise StreamError(
                f"no member retains the {task!r}/{view!r} window ending at {end}"
            )
        with self._tracer.span(
            "federation.merge", task=task, view=view, end=end, members=len(pieces)
        ):
            merged = merge_snapshots(pieces)
        self.obs.merges.inc()
        if timed:
            self.obs.merge_seconds.observe(_time.perf_counter() - started)
        return merged

    def history(self, task: str, view: str) -> list[WindowSnapshot]:
        """Every fully-merged retained window, oldest first.

        Only boundaries up to :meth:`common_boundary` are returned — a
        window some member has not closed yet would under-count.
        """
        horizon = self.common_boundary(task, view)
        if horizon is None:
            return []
        ends: set[float] = set()
        for engine in self._engines.values():
            if view not in engine.views:
                continue
            ends.update(
                s.end for s in engine.snapshots(task, view) if s.end <= horizon
            )
        return [self.merged(task, view, end=end) for end in sorted(ends)]

    # ------------------------------------------------------------------
    # Secure merge path (the privacy tier)
    # ------------------------------------------------------------------

    def secure_totals(
        self,
        task: str,
        view: str,
        end: float | None = None,
        *,
        decimals: int = 3,
        group_seed: bytes | None = None,
    ) -> SecureWindowTotals:
        """Fold one window's additive totals without reading pane state.

        Each member Hive acts as one masking participant: it blinds its
        per-window partials (record count, value count, value sum) with
        the pairwise masks before anything leaves the hive, so the
        merger — and every other hive — sees only uniformly masked
        integers whose sum unmasks to the federation totals.  The result
        matches :meth:`merged` exactly on counts and within fixed-point
        tolerance on ``value_sum``.

        ``group_seed`` is the cohort secret (shared at federation join
        time in a deployment); the default derives one from the (task,
        view) identity, and per-window/per-component mask streams are
        separated through the round id.
        """
        if end is None:
            end = self.common_boundary(task, view)
            if end is None:
                raise StreamError(
                    f"no member has closed a window of {task!r}/{view!r} yet"
                )
        pieces = list(self.iter_member_snapshots(task, view, end))
        if not pieces:
            raise StreamError(
                f"no member retains the {task!r}/{view!r} window ending at {end}"
            )
        members = tuple(name for name, _ in pieces)
        start = pieces[0][1].start
        if len(pieces) == 1:
            # A cohort of one cannot hide anything from itself; report
            # the member's own totals and say so.
            only = pieces[0][1]
            return SecureWindowTotals(
                task=task, view=view, start=start, end=end, members=members,
                records=only.records, value_count=only.value_count,
                value_sum=only.value_sum, protocol="plaintext",
            )
        codec = FixedPointCodec(decimals)
        seed = group_seed or f"fed-stream\x00{task}\x00{view}".encode()
        n = len(pieces)
        # Distinct mask streams per (window, component): the same cohort
        # seed serves every round without mask reuse.  The window tag
        # hashes the *exact* float boundary — truncating/rounding it
        # would collide fractional ends (e.g. 100.0 vs 100.5) and mask
        # reuse across windows leaks per-hive plaintext deltas.
        window_tag = int.from_bytes(
            hashlib.sha256(struct.pack(">d", end)).digest()[:7], "big"
        )
        round_base = window_tag * len(SECURE_WINDOW_COMPONENTS)
        totals: list[float] = []
        for offset, component in enumerate(SECURE_WINDOW_COMPONENTS):
            aggregation = MaskedAggregation(n, codec=codec)
            for position, (_name, snapshot) in enumerate(pieces):
                participant = MaskingParticipant(position, n, seed, codec=codec)
                aggregation.accept(
                    participant.masked_value(
                        float(getattr(snapshot, component)),
                        round_id=round_base + offset,
                    )
                )
            totals.append(aggregation.result_sum())
        return SecureWindowTotals(
            task=task,
            view=view,
            start=start,
            end=end,
            members=members,
            records=int(round(totals[0])),
            value_count=int(round(totals[1])),
            value_sum=totals[2],
            protocol="masking",
        )

    def secure_dashboard(self, view: str) -> str:
        """The live dashboard built from secure folds only."""
        lines = [
            f"federated secure dashboard ({len(self._engines)} hives, view {view!r})"
        ]
        for task in self.tasks:
            try:
                totals = self.secure_totals(task, view)
            except StreamError:
                lines.append(f"  {task}: no closed window yet")
                continue
            lines.append("  " + totals.to_text())
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Alerts / dashboard
    # ------------------------------------------------------------------

    def alerts(self) -> list[tuple[str, StreamAlert]]:
        """Every member's retained alerts as (member, alert), by time."""
        merged: list[tuple[str, StreamAlert]] = []
        for name in sorted(self._engines):
            merged.extend((name, alert) for alert in self._engines[name].alerts.alerts())
        merged.sort(key=lambda pair: pair[1].time)
        return merged

    @property
    def unacknowledged_alerts(self) -> int:
        return sum(e.alerts.unacknowledged for e in self._engines.values())

    def dashboard(self, view: str) -> str:
        """One federation-wide live dashboard: every task's latest merged window."""
        lines = [
            f"federated live dashboard ({len(self._engines)} hives, view {view!r})"
        ]
        for task in self.tasks:
            try:
                snapshot = self.merged(task, view)
            except StreamError:
                lines.append(f"  {task}: no closed window yet")
                continue
            lines.append("  " + snapshot.to_text())
        unacked = self.unacknowledged_alerts
        lines.append(f"  alerts: {unacked} unacknowledged across the federation")
        return "\n".join(lines)

    def iter_member_snapshots(
        self, task: str, view: str, end: float
    ) -> Iterator[tuple[str, WindowSnapshot]]:
        """The per-member slices of one window (debugging / imbalance)."""
        for name in sorted(self._engines):
            engine = self._engines[name]
            if view not in engine.views:
                continue
            for snapshot in engine.snapshots(task, view):
                if snapshot.end == end:
                    yield name, snapshot
                    break
