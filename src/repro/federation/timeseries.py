"""Federation-wide metrics history: per-hive scrapes, merged rollup.

Each member hive gets its own :class:`~repro.obs.timeseries.MetricsScraper`
selecting only that hive's ``instance`` labels, plus one **residual**
scraper (member name ``"@router"``) for everything no member claims —
the router's control plane, servers, secure-agg sessions.  All member
scrapers fire inside one callback at each cadence tick, so their frames
share one aligned timestamp, and the rollup folds that boundary
immediately: every sample lands in a shared :class:`TimeSeriesStore`
under its key *minus* the ``instance`` label, summed across members.

The result is the "one dashboard sees the whole ring" store: a query
like ``rollup.rate("repro_pipeline_records_accepted_total")`` is the
federation-wide ingest rate, and by construction each rollup series
equals the sum of the members' series at every aligned scrape time
(the equality the federation e2e test pins).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import ObsError
from repro.obs.timeseries import (
    MetricsScraper,
    ScrapeFrame,
    TimeSeriesStore,
    instance_select,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.router import FederationRouter
    from repro.obs.registry import MetricsRegistry
    from repro.simulation import CancelToken, Simulator

__all__ = ["FederationScraper", "ROUTER_MEMBER"]

#: The residual member: series owned by no hive (router, server...).
ROUTER_MEMBER = "@router"


class FederationScraper:
    """Aligned per-hive scrapers feeding one instance-less rollup store.

    One :meth:`tick` (or the periodic event :meth:`start` schedules)
    drives every member scraper at the same simulated timestamp and
    folds the new frames into :attr:`store` — the rollup — right away.
    Per-member history stays available via :meth:`member_store` for
    drill-down dashboards.
    """

    def __init__(
        self,
        router: "FederationRouter",
        registry: "MetricsRegistry | None" = None,
        cadence: float = 1.0,
        capacity: int = 512,
    ):
        if registry is None:
            from repro import obs as _obs

            registry = _obs.metrics_registry()
        self.router = router
        self.registry = registry
        self.cadence = cadence
        #: The merged, instance-less federation-wide store.
        self.store = TimeSeriesStore(capacity)
        self._scrapers: dict[str, MetricsScraper] = {}
        self._claimed: set[str] = set()
        self._frame_callbacks: list[Callable[[str, ScrapeFrame], None]] = []
        self._rollup_callbacks: list[Callable[[ScrapeFrame], None]] = []
        self._last_t = float("-inf")
        self.ticks = 0
        # member store layout -> rollup column mapping caches
        self._maps: dict[str, tuple[int, np.ndarray, np.ndarray]] = {}
        self._sync_members(capacity)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def _sync_members(self, capacity: int) -> None:
        """(Re)build member scrapers; call after hives join the ring."""
        claimed: set[str] = set()
        for name in self.router.member_names:
            instances = self.router.hive(name).obs_instances()
            claimed |= instances
            if name not in self._scrapers:
                self._scrapers[name] = MetricsScraper(
                    registry=self.registry,
                    cadence=self.cadence,
                    select=instance_select(instances),
                    capacity=capacity,
                )
        self._claimed = claimed
        # The residual scraper keeps whatever no member claims, plus
        # unlabelled series (sim time) — rebuilt whenever claims move.
        residual = self._scrapers.get(ROUTER_MEMBER)
        select = instance_select(claimed, invert=True)
        if residual is None:
            self._scrapers[ROUTER_MEMBER] = MetricsScraper(
                registry=self.registry,
                cadence=self.cadence,
                select=select,
                capacity=capacity,
            )
        else:
            residual._select = select
            residual._readers_version = -1  # force reader rebuild

    def refresh_members(self) -> None:
        """Pick up hives that joined after construction."""
        self._sync_members(self.store.capacity)

    @property
    def members(self) -> list[str]:
        return sorted(self._scrapers)

    def member_store(self, name: str) -> TimeSeriesStore:
        """One member's own (instance-labelled) history."""
        if name not in self._scrapers:
            raise ObsError(f"no scraper for federation member {name!r}")
        return self._scrapers[name].store

    def member_scraper(self, name: str) -> MetricsScraper:
        if name not in self._scrapers:
            raise ObsError(f"no scraper for federation member {name!r}")
        return self._scrapers[name]

    def on_frame(self, callback: Callable[[str, ScrapeFrame], None]) -> None:
        """Subscribe to per-member frames (called as ``(member, frame)``)."""
        self._frame_callbacks.append(callback)

    def on_rollup(self, callback: Callable[[ScrapeFrame], None]) -> None:
        """Subscribe to merged rollup frames (the server's watch feed)."""
        self._rollup_callbacks.append(callback)

    # ------------------------------------------------------------------
    # The aligned scrape boundary
    # ------------------------------------------------------------------

    def tick(self, now: float) -> "ScrapeFrame | None":
        """Scrape every member at ``now`` and fold the rollup frame."""
        if not self.registry.enabled or now <= self._last_t:
            return None
        frames: list[tuple[str, ScrapeFrame]] = []
        for name, scraper in self._scrapers.items():
            frame = scraper.scrape(now)
            if frame is not None:
                frames.append((name, frame))
        if not frames:
            return None
        self._last_t = now
        self.ticks += 1
        slot = self.store.open_frame(now)
        for name, frame in frames:
            self._fold(name, frame, slot)
            for callback in self._frame_callbacks:
                callback(name, frame)
        rollup = ScrapeFrame(self.ticks, now, self.store, slot)
        for callback in self._rollup_callbacks:
            callback(rollup)
        return rollup

    def _fold(self, name: str, frame: ScrapeFrame, slot: int) -> None:
        """Sum one member frame's row into the rollup row at ``slot``."""
        member = frame.store
        cached = self._maps.get(name)
        if cached is None or cached[0] != member.layout_version:
            src_cols = []
            dst_cols = []
            for key in member.keys():
                stripped = (
                    key[0],
                    tuple(kv for kv in key[1] if kv[0] != "instance"),
                )
                src_cols.append(member._cols[key])
                dst_cols.append(self.store.column(stripped))
            cached = (
                member.layout_version,
                np.asarray(src_cols, dtype=np.intp),
                np.asarray(dst_cols, dtype=np.intp),
            )
            self._maps[name] = cached
        _, src, dst = cached
        row = member._values[frame._slot, src]
        live = ~np.isnan(row)
        if not live.all():
            row = row[live]
            dst = dst[live]
        # np.add.at: several member series (e.g. two hives' pipelines)
        # may fold into one instance-less rollup column.
        target = self.store._values[slot]
        seed = np.isnan(target[dst])
        target[dst[seed]] = 0.0
        np.add.at(target, dst, row)
        self.store.samples_appended += int(np.count_nonzero(seed))

    def start(
        self,
        sim: "Simulator",
        until: "float | None" = None,
        first_at: "float | None" = None,
    ) -> "CancelToken":
        """Schedule aligned federation scrapes on the simulator clock."""
        return sim.schedule_periodic(
            self.cadence, lambda: self.tick(sim.now), until=until, first_at=first_at
        )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def stats(self) -> dict:
        per_member = {
            name: scraper.stats.scrapes for name, scraper in self._scrapers.items()
        }
        return {
            "ticks": self.ticks,
            "members": per_member,
            "rollup_series": self.store.n_series,
            "rollup_frames": self.store.n_frames,
        }
