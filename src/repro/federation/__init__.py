"""The federation tier: multi-Hive scale-out (paper Section 2).

"One of the benefits of building a common platform like APISENSE lies in
the federation of communities of mobile users."  A single Hive owns one
community, one ingest pipeline and one columnar store; the federation
tier composes many such Hives into one logical platform:

- :class:`~repro.federation.ring.ConsistentHashRing` places devices onto
  Hives deterministically and stays stable under membership change (a
  join/leave re-homes only ~1/N of the crowd);
- :class:`~repro.federation.router.FederationRouter` runs the control
  plane: membership (join/leave), failure/rejoin injection with
  automatic re-homing of orphaned devices, task syndication and
  membership gossip carried over the same lossy
  :class:`~repro.apisense.transport.Transport` as everything else;
- :class:`~repro.federation.query.FederatedDataset` is the query plane:
  one scan/aggregate view fanned out over every member Hive's
  :class:`~repro.store.DatasetStore` and merged;
- :class:`~repro.federation.streams.FederatedStreamMerger` is the live
  plane: the members' windowed stream views (see :mod:`repro.streams`)
  folded into one federation-wide dashboard at read time (count-sum,
  cell-union, P²-merge);
- :func:`~repro.federation.health.federation_snapshot` aggregates the
  member dashboards into one :class:`~repro.federation.health.
  FederationHealthReport`.

There is no single data point of coordination: placement is a pure
function of the ring (every member can compute it), data stays in the
owning Hive's store, and queries merge at read time.
"""

from repro.federation.health import (
    FederationHealthReport,
    MemberHealth,
    federation_snapshot,
)
from repro.federation.query import (
    FederatedDataset,
    FederatedSecureAggregate,
    FederatedTaskAggregate,
)
from repro.federation.ring import ConsistentHashRing, PlacementDiff
from repro.federation.streams import FederatedStreamMerger, SecureWindowTotals
from repro.federation.timeseries import ROUTER_MEMBER, FederationScraper
from repro.federation.router import (
    ControlPlaneStats,
    FederatedSyndicationReceipt,
    FederationRouter,
    MembershipEvent,
    MigrationEvent,
)

__all__ = [
    "ConsistentHashRing",
    "PlacementDiff",
    "FederationRouter",
    "MembershipEvent",
    "MigrationEvent",
    "ControlPlaneStats",
    "FederatedSyndicationReceipt",
    "FederatedDataset",
    "FederatedSecureAggregate",
    "FederatedStreamMerger",
    "FederatedTaskAggregate",
    "SecureWindowTotals",
    "FederationHealthReport",
    "MemberHealth",
    "federation_snapshot",
    "FederationScraper",
    "ROUTER_MEMBER",
]
