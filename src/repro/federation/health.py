"""Federation-wide health: every member dashboard in one report.

A federation operator watches N Hives at once; this rolls the per-member
:class:`~repro.apisense.monitoring.PlatformHealthReport` snapshots up
into one :class:`FederationHealthReport` with the federation-level
signals on top: membership (who is up, who is down), placement balance
across the ring, migration churn, and control-plane quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.apisense.monitoring import PlatformHealthReport, snapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.router import FederationRouter


@dataclass(frozen=True)
class MemberHealth:
    """One member's slice of the federation dashboard."""

    name: str
    up: bool
    devices: int
    report: PlatformHealthReport


@dataclass(frozen=True)
class FederationHealthReport:
    """One federation-wide dashboard snapshot."""

    time: float
    n_members: int
    up_members: tuple[str, ...]
    down_members: tuple[str, ...]
    total_devices: int
    #: Placement balance over *live* members: max/mean devices per hive
    #: (1.0 is perfect; consistent hashing lands near it with enough
    #: virtual nodes).
    placement_imbalance: float
    migrations: int
    control_messages: int
    control_loss_rate: float
    total_records: int
    total_shed: int
    members: tuple[MemberHealth, ...] = field(default_factory=tuple)

    def member(self, name: str) -> MemberHealth:
        for member in self.members:
            if member.name == name:
                return member
        raise KeyError(name)

    def to_text(self) -> str:
        lines = [
            f"federation health @ t={self.time:.0f}s",
            f"  members: {self.n_members} "
            f"({len(self.up_members)} up, {len(self.down_members)} down"
            + (f": {', '.join(self.down_members)}" if self.down_members else "")
            + ")",
            f"  crowd: {self.total_devices} devices, placement imbalance "
            f"{self.placement_imbalance:.2f}, {self.migrations} migrations",
            f"  control plane: {self.control_messages} messages, "
            f"{self.control_loss_rate:.1%} loss",
            f"  data: {self.total_records} stored records, "
            f"{self.total_shed} shed by backpressure",
        ]
        for member in self.members:
            state = "up" if member.up else "DOWN"
            report = member.report
            streams = (
                f"{report.stream_views} views"
                if report.streams_attached
                # A member whose engine has no registered views renders
                # as detached, not as a zero-valued streaming tier.
                else "streams tier not attached"
            )
            lines.append(
                f"  hive {member.name} [{state}]: {member.devices} devices, "
                f"{report.store_records} records, "
                f"{report.pipeline_flushes} flushes, "
                f"{report.pipeline_shed} shed, {streams}, "
                f"motivation {report.mean_motivation:.2f}"
            )
        return "\n".join(lines)


def federation_snapshot(router: "FederationRouter", time: float) -> FederationHealthReport:
    """Take a health snapshot of the whole federation at ``time``."""
    members = []
    for name in router.member_names:
        hive = router.hive(name)
        members.append(
            MemberHealth(
                name=name,
                up=router.is_up(name),
                devices=len(hive.devices),
                report=snapshot(hive, time),
            )
        )
    live_counts = [m.devices for m in members if m.up]
    mean_live = sum(live_counts) / len(live_counts) if live_counts else 0.0
    imbalance = max(live_counts) / mean_live if live_counts and mean_live else 0.0
    return FederationHealthReport(
        time=time,
        n_members=len(members),
        up_members=tuple(router.up_members),
        down_members=tuple(router.down_members),
        total_devices=sum(m.devices for m in members),
        placement_imbalance=imbalance,
        migrations=len(router.migration_log),
        control_messages=router.stats.messages_sent,
        control_loss_rate=router.stats.loss_rate,
        total_records=sum(m.report.store_records for m in members),
        total_shed=sum(m.report.pipeline_shed for m in members),
        members=tuple(members),
    )
