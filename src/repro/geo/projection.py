"""Local East-North-Up projection for metre-space geometry.

Privacy mechanisms (planar Laplace noise, speed smoothing) are defined in
Euclidean metre space.  At city scale an equirectangular projection around
a reference point is accurate to centimetres, which is far below GPS noise,
so we use it instead of a full geodesic library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geo.point import GeoPoint
from repro.units import EARTH_RADIUS_M


@dataclass(frozen=True)
class LocalProjection:
    """Projects WGS-84 coordinates to (x, y) metres around ``origin``.

    ``x`` grows eastward, ``y`` northward.  The inverse transform is exact
    with respect to the forward one, so round-trips are lossless up to
    floating-point error.
    """

    origin: GeoPoint

    @property
    def _cos_lat0(self) -> float:
        return math.cos(math.radians(self.origin.lat))

    def to_xy(self, point: GeoPoint) -> tuple[float, float]:
        """Project a geographic point to local metres."""
        x = math.radians(point.lon - self.origin.lon) * EARTH_RADIUS_M * self._cos_lat0
        y = math.radians(point.lat - self.origin.lat) * EARTH_RADIUS_M
        return (x, y)

    def to_point(self, x: float, y: float) -> GeoPoint:
        """Inverse projection from local metres back to WGS-84."""
        lat = self.origin.lat + math.degrees(y / EARTH_RADIUS_M)
        lon = self.origin.lon + math.degrees(x / (EARTH_RADIUS_M * self._cos_lat0))
        return GeoPoint(lat=lat, lon=lon)

    def translate(self, point: GeoPoint, dx: float, dy: float) -> GeoPoint:
        """Shift ``point`` by (dx, dy) metres in the local frame."""
        x, y = self.to_xy(point)
        return self.to_point(x + dx, y + dy)
