"""Geographic points and timestamped location records."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GeoError


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A WGS-84 coordinate pair in decimal degrees.

    Instances are immutable and hashable so they can be used as dictionary
    keys (e.g. POI anchors in the mobility generator).
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not (-90.0 <= self.lat <= 90.0):
            raise GeoError(f"latitude out of range [-90, 90]: {self.lat}")
        if not (-180.0 <= self.lon <= 180.0):
            raise GeoError(f"longitude out of range [-180, 180]: {self.lon}")
        if math.isnan(self.lat) or math.isnan(self.lon):
            raise GeoError("coordinates must not be NaN")

    def __str__(self) -> str:
        return f"({self.lat:.6f}, {self.lon:.6f})"


@dataclass(frozen=True, slots=True)
class Record:
    """One timestamped location fix, the unit of mobility data.

    ``time`` is seconds since the dataset epoch.  Extra sensor payloads are
    carried separately by the platform layer; keeping the mobility record
    minimal keeps privacy mechanisms independent from the platform.
    """

    point: GeoPoint
    time: float

    @property
    def lat(self) -> float:
        return self.point.lat

    @property
    def lon(self) -> float:
        return self.point.lon

    def moved(self, point: GeoPoint) -> "Record":
        """Return a copy of this record relocated to ``point``."""
        return Record(point=point, time=self.time)

    def shifted(self, delta_seconds: float) -> "Record":
        """Return a copy of this record with its timestamp shifted."""
        return Record(point=self.point, time=self.time + delta_seconds)

    def __str__(self) -> str:
        return f"{self.point}@{self.time:.1f}s"
