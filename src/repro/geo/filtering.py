"""Trajectory signal filtering (denoising).

Used by the adversary (denoising a noisy protected trace before POI
extraction is the classic counter to per-fix perturbation mechanisms) and
by on-device pre-processing in the platform layer.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrajectoryError
from repro.geo.point import GeoPoint
from repro.geo.trajectory import Trajectory


def rolling_median(trajectory: Trajectory, window: int) -> Trajectory:
    """Component-wise rolling median over ``window`` records.

    The median is robust to the heavy-tailed displacement of planar
    Laplace noise; at a stop the filtered fix converges on the true
    anchor at rate ~1/sqrt(window), which is exactly why
    geo-indistinguishability fails to hide POIs (experiment E2).

    ``window`` must be odd and >= 1; ``window=1`` is the identity.
    """
    if window < 1 or window % 2 == 0:
        raise TrajectoryError(f"window must be odd and >= 1: {window}")
    if window == 1 or len(trajectory) <= 2:
        return trajectory
    half = window // 2
    lats = np.array([r.lat for r in trajectory.records])
    lons = np.array([r.lon for r in trajectory.records])
    n = len(lats)
    filtered = []
    for index, record in enumerate(trajectory.records):
        lo = max(0, index - half)
        hi = min(n, index + half + 1)
        filtered.append(
            record.moved(
                GeoPoint(float(np.median(lats[lo:hi])), float(np.median(lons[lo:hi])))
            )
        )
    return Trajectory(user=trajectory.user, records=tuple(filtered))


def rolling_mean(trajectory: Trajectory, window: int) -> Trajectory:
    """Component-wise rolling mean; cheaper but less robust than median."""
    if window < 1 or window % 2 == 0:
        raise TrajectoryError(f"window must be odd and >= 1: {window}")
    if window == 1 or len(trajectory) <= 2:
        return trajectory
    half = window // 2
    lats = np.array([r.lat for r in trajectory.records])
    lons = np.array([r.lon for r in trajectory.records])
    n = len(lats)
    filtered = []
    for index, record in enumerate(trajectory.records):
        lo = max(0, index - half)
        hi = min(n, index + half + 1)
        filtered.append(
            record.moved(
                GeoPoint(float(np.mean(lats[lo:hi])), float(np.mean(lons[lo:hi])))
            )
        )
    return Trajectory(user=trajectory.user, records=tuple(filtered))
