"""Trajectory simplification (Douglas-Peucker).

Devices buffering hours of fixes benefit from shipping simplified
polylines; analysts benefit from lighter datasets.  Simplification keeps
the record subset whose polyline stays within ``tolerance_m`` of the
original path (perpendicular distance), preserving timestamps of the
kept records.
"""

from __future__ import annotations

import math

from repro.errors import TrajectoryError
from repro.geo.projection import LocalProjection
from repro.geo.trajectory import Trajectory


def _perpendicular_distance(
    point: tuple[float, float],
    start: tuple[float, float],
    end: tuple[float, float],
) -> float:
    """Distance from ``point`` to the segment ``start``-``end`` (metres)."""
    px, py = point
    ax, ay = start
    bx, by = end
    dx, dy = bx - ax, by - ay
    length_sq = dx * dx + dy * dy
    if length_sq == 0.0:
        return math.hypot(px - ax, py - ay)
    t = max(0.0, min(1.0, ((px - ax) * dx + (py - ay) * dy) / length_sq))
    cx, cy = ax + t * dx, ay + t * dy
    return math.hypot(px - cx, py - cy)


def douglas_peucker(trajectory: Trajectory, tolerance_m: float) -> Trajectory:
    """Simplify a trajectory, keeping it within ``tolerance_m`` of itself.

    Endpoints are always kept, so the result is a valid trajectory with
    at least two records (or one, for single-record inputs).
    """
    if tolerance_m <= 0:
        raise TrajectoryError(f"tolerance must be positive: {tolerance_m}")
    if len(trajectory) <= 2:
        return trajectory

    projection = LocalProjection(trajectory.bounding_box.center)
    xy = [projection.to_xy(p) for p in trajectory.points]
    keep = [False] * len(xy)
    keep[0] = keep[-1] = True

    # Iterative stack form of the classic recursion.
    stack: list[tuple[int, int]] = [(0, len(xy) - 1)]
    while stack:
        first, last = stack.pop()
        max_distance = 0.0
        index = -1
        for i in range(first + 1, last):
            distance = _perpendicular_distance(xy[i], xy[first], xy[last])
            if distance > max_distance:
                max_distance = distance
                index = i
        if index >= 0 and max_distance > tolerance_m:
            keep[index] = True
            stack.append((first, index))
            stack.append((index, last))

    records = tuple(
        record for record, kept in zip(trajectory.records, keep) if kept
    )
    return Trajectory(user=trajectory.user, records=records)


def compression_ratio(original: Trajectory, simplified: Trajectory) -> float:
    """Records removed as a fraction of the original (0 = none, ->1 = most)."""
    if len(original) == 0:
        return 0.0
    return 1.0 - len(simplified) / len(original)
