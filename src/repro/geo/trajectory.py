"""Trajectories: ordered sequences of timestamped location records."""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.errors import TrajectoryError
from repro.geo.bbox import BoundingBox
from repro.geo.distance import haversine_m, interpolate
from repro.geo.point import GeoPoint, Record
from repro.units import DAY


@dataclass(frozen=True)
class Trajectory:
    """One user's timestamped path, sorted by strictly increasing time.

    A trajectory is immutable; every transformation returns a new instance.
    Privacy mechanisms operate on single trajectories (typically one day of
    data, per the paper) and datasets group them per user.
    """

    user: str
    records: tuple[Record, ...]
    _times: tuple[float, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.records:
            raise TrajectoryError(f"trajectory for {self.user!r} is empty")
        times = tuple(r.time for r in self.records)
        for earlier, later in zip(times, times[1:]):
            if later <= earlier:
                raise TrajectoryError(
                    f"records for {self.user!r} not strictly increasing in "
                    f"time ({earlier} then {later})"
                )
        object.__setattr__(self, "_times", times)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_records(cls, user: str, records: Sequence[Record]) -> "Trajectory":
        """Build a trajectory, sorting records and dropping duplicate times.

        This is the forgiving constructor used at ingestion boundaries; the
        plain constructor enforces (rather than repairs) the invariants.
        """
        ordered = sorted(records, key=lambda r: r.time)
        deduped: list[Record] = []
        for record in ordered:
            if deduped and record.time <= deduped[-1].time:
                continue
            deduped.append(record)
        return cls(user=user, records=tuple(deduped))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def __getitem__(self, index: int) -> Record:
        return self.records[index]

    @property
    def points(self) -> list[GeoPoint]:
        return [r.point for r in self.records]

    @property
    def start_time(self) -> float:
        return self.records[0].time

    @property
    def end_time(self) -> float:
        return self.records[-1].time

    @property
    def duration(self) -> float:
        """Elapsed seconds between first and last record."""
        return self.end_time - self.start_time

    @property
    def length_m(self) -> float:
        """Total path length in metres."""
        total = 0.0
        for a, b in zip(self.records, self.records[1:]):
            total += haversine_m(a.point, b.point)
        return total

    @property
    def bounding_box(self) -> BoundingBox:
        return BoundingBox.around(self.points)

    def speeds(self) -> list[float]:
        """Per-segment speeds in m/s (length n-1)."""
        result = []
        for a, b in zip(self.records, self.records[1:]):
            dt = b.time - a.time
            result.append(haversine_m(a.point, b.point) / dt)
        return result

    def mean_speed(self) -> float:
        """Overall mean speed: path length over duration (m/s)."""
        if self.duration == 0:
            return 0.0
        return self.length_m / self.duration

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def map_points(self, transform: Callable[[Record], GeoPoint]) -> "Trajectory":
        """Apply a spatial transform to every record, keeping timestamps."""
        return Trajectory(
            user=self.user,
            records=tuple(r.moved(transform(r)) for r in self.records),
        )

    def renamed(self, user: str) -> "Trajectory":
        """A copy attributed to a different (e.g. pseudonymous) user id."""
        return Trajectory(user=user, records=self.records)

    def slice_time(self, start: float, end: float) -> "Trajectory | None":
        """Records with ``start <= time < end``; None if that is empty."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        if lo >= hi:
            return None
        return Trajectory(user=self.user, records=self.records[lo:hi])

    def split_by_day(self, day_length: float = DAY) -> list["Trajectory"]:
        """Split into per-day sub-trajectories (the paper's unit of work).

        Day ``k`` covers ``[k * day_length, (k + 1) * day_length)``.  Days
        without records produce no entry.
        """
        if day_length <= 0:
            raise TrajectoryError(f"day length must be positive: {day_length}")
        first_day = int(self.start_time // day_length)
        last_day = int(self.end_time // day_length)
        days = []
        for day in range(first_day, last_day + 1):
            piece = self.slice_time(day * day_length, (day + 1) * day_length)
            if piece is not None:
                days.append(piece)
        return days

    def resample_uniform_distance(self, step_m: float) -> list[GeoPoint]:
        """Points at uniform curvilinear spacing ``step_m`` along the path.

        Always includes the first point; includes the final point as the
        last sample.  This is the geometric half of speed smoothing: the
        output deliberately discards all timing information.
        """
        if step_m <= 0:
            raise TrajectoryError(f"resampling step must be positive: {step_m}")
        points = self.points
        if len(points) == 1 or self.length_m == 0.0:
            return [points[0]]
        resampled = [points[0]]
        carried = 0.0  # distance already walked into the current segment
        for a, b in zip(points, points[1:]):
            segment = haversine_m(a, b)
            if segment == 0.0:
                continue
            position = carried
            while position + step_m <= segment:
                position += step_m
                resampled.append(interpolate(a, b, position / segment))
            carried = position - segment
        if resampled[-1] != points[-1]:
            resampled.append(points[-1])
        return resampled

    def split_gaps(self, max_gap: float) -> list["Trajectory"]:
        """Split the trajectory wherever consecutive fixes are more than
        ``max_gap`` seconds apart.

        Radio dropouts and phones switched off leave holes; interpolating
        across them fabricates movement.  Segmenting at gaps lets
        consumers treat each contiguous stretch honestly.
        """
        if max_gap <= 0:
            raise TrajectoryError(f"max gap must be positive: {max_gap}")
        segments: list[Trajectory] = []
        start = 0
        for index in range(1, len(self.records)):
            if self.records[index].time - self.records[index - 1].time > max_gap:
                segments.append(
                    Trajectory(user=self.user, records=self.records[start:index])
                )
                start = index
        segments.append(Trajectory(user=self.user, records=self.records[start:]))
        return segments

    def resample_chord(self, step_m: float) -> list[GeoPoint]:
        """Points emitted each time the path gets ``step_m`` metres away
        from the last emitted point (chord distance).

        Unlike :meth:`resample_uniform_distance`, which measures distance
        *along* the path, chord resampling is insensitive to GPS jitter: a
        user dwelling at a place accumulates curvilinear path length from
        fix noise but never strays ``step_m`` away from the last emitted
        point, so a stop contributes no samples at all.  This is the
        geometric core of speed smoothing.
        """
        if step_m <= 0:
            raise TrajectoryError(f"resampling step must be positive: {step_m}")
        from repro.geo.projection import LocalProjection

        projection = LocalProjection(self.bounding_box.center)
        xy = [projection.to_xy(p) for p in self.points]
        emitted = [xy[0]]
        ex, ey = xy[0]
        for (ax, ay), (bx, by) in zip(xy, xy[1:]):
            sx, sy = ax, ay
            while True:
                dx, dy = bx - sx, by - sy
                seg2 = dx * dx + dy * dy
                if seg2 == 0.0:
                    break
                fx, fy = sx - ex, sy - ey
                half_b = fx * dx + fy * dy
                c = fx * fx + fy * fy - step_m * step_m
                disc = half_b * half_b - seg2 * c
                if disc < 0.0:
                    break
                t = (-half_b + disc**0.5) / seg2
                if not (0.0 <= t <= 1.0):
                    break
                sx, sy = sx + t * dx, sy + t * dy
                emitted.append((sx, sy))
                ex, ey = sx, sy
        return [projection.to_point(x, y) for x, y in emitted]

    def point_at_time(self, time: float) -> GeoPoint:
        """Linear interpolation of the position at ``time``.

        Times before the first record clamp to the first point and times
        after the last clamp to the last point.
        """
        if time <= self.start_time:
            return self.records[0].point
        if time >= self.end_time:
            return self.records[-1].point
        index = bisect.bisect_right(self._times, time)
        before = self.records[index - 1]
        after = self.records[index]
        fraction = (time - before.time) / (after.time - before.time)
        return interpolate(before.point, after.point, fraction)
