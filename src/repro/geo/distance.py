"""Great-circle distances on the WGS-84 sphere approximation."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.geo.point import GeoPoint
from repro.units import EARTH_RADIUS_M


def haversine_m(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points, in metres.

    Uses the haversine formula, which is numerically stable for the small
    (city-scale) distances this library mostly deals with.
    """
    lat1 = math.radians(a.lat)
    lat2 = math.radians(b.lat)
    dlat = lat2 - lat1
    dlon = math.radians(b.lon - a.lon)
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(h)))


def path_length_m(points: Sequence[GeoPoint] | Iterable[GeoPoint]) -> float:
    """Total polyline length of a sequence of points, in metres."""
    total = 0.0
    previous: GeoPoint | None = None
    for point in points:
        if previous is not None:
            total += haversine_m(previous, point)
        previous = point
    return total


def interpolate(a: GeoPoint, b: GeoPoint, fraction: float) -> GeoPoint:
    """Linearly interpolate between two nearby points.

    Plain linear interpolation in degree space, which is accurate to well
    under a metre for the sub-100 km segments used here.  ``fraction`` = 0
    returns ``a``, 1 returns ``b``; values outside [0, 1] extrapolate.
    """
    return GeoPoint(
        lat=a.lat + (b.lat - a.lat) * fraction,
        lon=a.lon + (b.lon - a.lon) * fraction,
    )


def centroid(points: Sequence[GeoPoint]) -> GeoPoint:
    """Arithmetic centroid in degree space of a non-empty point sequence."""
    if not points:
        raise ValueError("centroid of empty point sequence")
    lat = sum(p.lat for p in points) / len(points)
    lon = sum(p.lon for p in points) / len(points)
    return GeoPoint(lat=lat, lon=lon)
