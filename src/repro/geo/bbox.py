"""Axis-aligned geographic bounding boxes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import GeoError
from repro.geo.point import GeoPoint


@dataclass(frozen=True)
class BoundingBox:
    """A latitude/longitude axis-aligned box, inclusive on all edges."""

    south: float
    west: float
    north: float
    east: float

    def __post_init__(self) -> None:
        if self.south > self.north:
            raise GeoError(f"south {self.south} > north {self.north}")
        if self.west > self.east:
            raise GeoError(f"west {self.west} > east {self.east}")

    @classmethod
    def around(cls, points: Iterable[GeoPoint]) -> "BoundingBox":
        """Smallest box containing every point of a non-empty iterable."""
        pts = list(points)
        if not pts:
            raise GeoError("bounding box of empty point set")
        return cls(
            south=min(p.lat for p in pts),
            west=min(p.lon for p in pts),
            north=max(p.lat for p in pts),
            east=max(p.lon for p in pts),
        )

    @property
    def south_west(self) -> GeoPoint:
        return GeoPoint(self.south, self.west)

    @property
    def north_east(self) -> GeoPoint:
        return GeoPoint(self.north, self.east)

    @property
    def center(self) -> GeoPoint:
        return GeoPoint((self.south + self.north) / 2.0, (self.west + self.east) / 2.0)

    def contains(self, point: GeoPoint) -> bool:
        """Whether ``point`` lies inside the box (edges inclusive)."""
        return self.south <= point.lat <= self.north and self.west <= point.lon <= self.east

    def expanded(self, margin_deg: float) -> "BoundingBox":
        """A copy grown by ``margin_deg`` degrees on every side."""
        return BoundingBox(
            south=max(-90.0, self.south - margin_deg),
            west=max(-180.0, self.west - margin_deg),
            north=min(90.0, self.north + margin_deg),
            east=min(180.0, self.east + margin_deg),
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box containing both boxes."""
        return BoundingBox(
            south=min(self.south, other.south),
            west=min(self.west, other.west),
            north=max(self.north, other.north),
            east=max(self.east, other.east),
        )
