"""Geodesy substrate: points, distances, projections, grids, trajectories.

Every higher layer (mobility generation, privacy mechanisms, utility
metrics, the APISENSE GPS sensor) builds on the primitives exported here.
"""

from repro.geo.point import GeoPoint, Record
from repro.geo.distance import haversine_m, path_length_m
from repro.geo.projection import LocalProjection
from repro.geo.bbox import BoundingBox
from repro.geo.grid import SpatialGrid
from repro.geo.trajectory import Trajectory
from repro.geo.simplify import compression_ratio, douglas_peucker
from repro.geo.filtering import rolling_mean, rolling_median

__all__ = [
    "GeoPoint",
    "Record",
    "haversine_m",
    "path_length_m",
    "LocalProjection",
    "BoundingBox",
    "SpatialGrid",
    "Trajectory",
    "douglas_peucker",
    "compression_ratio",
    "rolling_median",
    "rolling_mean",
]
