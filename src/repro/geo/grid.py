"""Uniform spatial grids used by cloaking, heatmaps and traffic flows.

A :class:`SpatialGrid` tiles a bounding box with square cells of a given
size in metres.  Cells are addressed by integer ``(row, col)`` pairs; row 0
is the southernmost row.  Points outside the box are clamped to the border
cells so that protected datasets whose noise pushed a point slightly out of
the study area still aggregate sensibly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GeoError
from repro.geo.bbox import BoundingBox
from repro.geo.point import GeoPoint
from repro.geo.projection import LocalProjection

CellIndex = tuple[int, int]


@dataclass(frozen=True)
class SpatialGrid:
    """Square-cell tiling of a geographic bounding box.

    Parameters
    ----------
    bbox:
        Area covered by the grid.
    cell_size_m:
        Side of each (approximately) square cell, in metres.
    """

    bbox: BoundingBox
    cell_size_m: float
    _projection: LocalProjection = field(init=False, repr=False)
    _rows: int = field(init=False)
    _cols: int = field(init=False)

    def __post_init__(self) -> None:
        if self.cell_size_m <= 0:
            raise GeoError(f"cell size must be positive: {self.cell_size_m}")
        projection = LocalProjection(self.bbox.south_west)
        width_m, height_m = projection.to_xy(self.bbox.north_east)
        object.__setattr__(self, "_projection", projection)
        object.__setattr__(self, "_rows", max(1, int(height_m // self.cell_size_m) + 1))
        object.__setattr__(self, "_cols", max(1, int(width_m // self.cell_size_m) + 1))

    @property
    def rows(self) -> int:
        return self._rows

    @property
    def cols(self) -> int:
        return self._cols

    @property
    def n_cells(self) -> int:
        return self._rows * self._cols

    def cell_of(self, point: GeoPoint) -> CellIndex:
        """Cell containing ``point``; outside points clamp to the border."""
        x, y = self._projection.to_xy(point)
        col = int(x // self.cell_size_m)
        row = int(y // self.cell_size_m)
        return (
            min(max(row, 0), self._rows - 1),
            min(max(col, 0), self._cols - 1),
        )

    def center_of(self, cell: CellIndex) -> GeoPoint:
        """Geographic center of a cell."""
        row, col = cell
        if not (0 <= row < self._rows and 0 <= col < self._cols):
            raise GeoError(f"cell {cell} outside grid {self._rows}x{self._cols}")
        x = (col + 0.5) * self.cell_size_m
        y = (row + 0.5) * self.cell_size_m
        return self._projection.to_point(x, y)

    def snap(self, point: GeoPoint) -> GeoPoint:
        """Snap a point to the center of its cell (spatial cloaking)."""
        return self.center_of(self.cell_of(point))

    def neighbours(self, cell: CellIndex) -> list[CellIndex]:
        """The 4-connected neighbours of a cell that exist in the grid."""
        row, col = cell
        candidates = [(row - 1, col), (row + 1, col), (row, col - 1), (row, col + 1)]
        return [
            (r, c)
            for r, c in candidates
            if 0 <= r < self._rows and 0 <= c < self._cols
        ]

    def all_cells(self) -> list[CellIndex]:
        """Every cell index, row-major."""
        return [(r, c) for r in range(self._rows) for c in range(self._cols)]
