"""Bench trajectory tooling: diff tracked BENCH_*.json against a ref.

The repo tracks one ``BENCH_<area>.json`` per benchmarked subsystem
(ROADMAP item 3: the performance trajectory is part of the history).
This module makes that trajectory readable: load every tracked bench
file from the working tree **and** from a git ref (default the merge
base with the default branch... whatever the caller passes), flatten
the numeric leaves to dot-paths, and report per-metric deltas with a
regression verdict.

Direction is inferred from the metric name: times, latencies and drop
counts regress when they grow; throughputs regress when they shrink;
everything else is informational.  ``python -m repro obs bench-diff``
renders the table and exits non-zero on regression beyond the
threshold — CI runs it non-gating against the merge base.
"""

from __future__ import annotations

import json
import re
import subprocess
from dataclasses import dataclass
from pathlib import Path

__all__ = ["MetricDiff", "bench_diff", "render_diff"]

#: Metric-name fragments that regress when the value *grows*.
_HIGHER_WORSE = re.compile(
    r"seconds|latency|overhead|_ms\b|p50|p90|p95|p99|dropped|lost|evicted|"
    r"gaps|shed|wall|unaccounted",
    re.IGNORECASE,
)
#: Fragments that regress when the value *shrinks*.
_HIGHER_BETTER = re.compile(
    r"per_s|per_sec|throughput|ops|rows_s|rate_hz|speedup", re.IGNORECASE
)


@dataclass(frozen=True)
class MetricDiff:
    """One numeric leaf compared across the two trees."""

    file: str
    path: str
    base: float
    current: float
    direction: str  # "higher_worse" | "higher_better" | "neutral"
    threshold: float  # percent

    @property
    def pct_change(self) -> float:
        if self.base == 0:
            return 0.0 if self.current == 0 else float("inf")
        return (self.current - self.base) / abs(self.base) * 100.0

    @property
    def regressed(self) -> bool:
        change = self.pct_change
        if self.direction == "higher_worse":
            return change > self.threshold
        if self.direction == "higher_better":
            return change < -self.threshold
        return False


def _flatten(node, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a JSON tree as ``a.b.c -> value``."""
    out: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            out.update(_flatten(value, f"{prefix}.{key}" if prefix else str(key)))
    elif isinstance(node, list):
        for index, value in enumerate(node):
            out.update(_flatten(value, f"{prefix}[{index}]"))
    elif isinstance(node, bool):
        pass  # bools are flags, not metrics
    elif isinstance(node, (int, float)):
        out[prefix] = float(node)
    return out


def _direction(path: str) -> str:
    if _HIGHER_WORSE.search(path):
        return "higher_worse"
    if _HIGHER_BETTER.search(path):
        return "higher_better"
    return "neutral"


def _git(repo_root: Path, *argv: str) -> str:
    return subprocess.run(
        ["git", *argv],
        cwd=repo_root,
        check=True,
        capture_output=True,
        text=True,
    ).stdout


def tracked_bench_files(repo_root: "Path | None" = None) -> list[str]:
    root = _repo_root(repo_root)
    names = _git(root, "ls-files", "BENCH_*.json").split()
    return sorted(names)


def _repo_root(repo_root: "Path | None") -> Path:
    if repo_root is not None:
        return Path(repo_root)
    top = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        check=True,
        capture_output=True,
        text=True,
    ).stdout.strip()
    return Path(top)


def bench_diff(
    base: str = "HEAD",
    threshold: float = 5.0,
    repo_root: "Path | None" = None,
) -> "tuple[list[MetricDiff], list[str]]":
    """Diff every tracked bench file: working tree vs ``base`` ref.

    Returns ``(diffs, missing)`` — ``missing`` lists files with no
    counterpart at the base ref (new benchmarks, not regressions).
    """
    root = _repo_root(repo_root)
    diffs: list[MetricDiff] = []
    missing: list[str] = []
    for name in tracked_bench_files(root):
        current_path = root / name
        if not current_path.exists():
            continue
        current = _flatten(json.loads(current_path.read_text()))
        try:
            base_text = _git(root, "show", f"{base}:{name}")
        except subprocess.CalledProcessError:
            missing.append(name)
            continue
        baseline = _flatten(json.loads(base_text))
        for path in sorted(set(current) & set(baseline)):
            diffs.append(
                MetricDiff(
                    file=name,
                    path=path,
                    base=baseline[path],
                    current=current[path],
                    direction=_direction(path),
                    threshold=threshold,
                )
            )
    return diffs, missing


def render_diff(
    diffs: "list[MetricDiff]",
    missing: "list[str]",
    base: str,
    threshold: float,
    show_unchanged: bool = False,
) -> str:
    """The bench-diff table: regressions first, then notable moves."""
    lines = [f"bench diff vs {base} (threshold {threshold:g}%)"]
    if not diffs and not missing:
        lines.append("  no tracked BENCH_*.json files to compare")
        return "\n".join(lines)
    regressions = [d for d in diffs if d.regressed]
    moved = [
        d
        for d in diffs
        if not d.regressed and abs(d.pct_change) > max(threshold, 1e-9)
    ]
    for name in missing:
        lines.append(f"  {name}: new (absent at {base})")
    for bucket, label in ((regressions, "REGRESSED"), (moved, "moved")):
        for diff in sorted(bucket, key=lambda d: -abs(d.pct_change)):
            lines.append(
                f"  [{label}] {diff.file}:{diff.path}: "
                f"{diff.base:g} -> {diff.current:g} "
                f"({diff.pct_change:+.1f}%, {diff.direction.replace('_', ' ')})"
            )
    unchanged = len(diffs) - len(regressions) - len(moved)
    if show_unchanged:
        for diff in diffs:
            if not diff.regressed and abs(diff.pct_change) <= threshold:
                lines.append(
                    f"  [ok] {diff.file}:{diff.path}: "
                    f"{diff.base:g} -> {diff.current:g} ({diff.pct_change:+.1f}%)"
                )
    else:
        lines.append(
            f"  {len(regressions)} regressed, {len(moved)} moved beyond "
            f"{threshold:g}%, {unchanged} within noise"
        )
    return "\n".join(lines)
