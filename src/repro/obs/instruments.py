"""Per-tier instrument bundles.

Each platform component owns one bundle: the bundle registers the
tier's metric families on the shared registry (idempotent — every
instance wires the same families) and resolves the *children* for this
instance's label set once, so the component's hot path is an attribute
load + increment, never a label lookup.

Every instrument carries an ``instance`` label (``pipeline-1``,
``hive-2``...) allocated by :func:`repro.obs.next_instance`, so
multi-hive federations keep tiers separable in the exposition while
``MetricsRegistry.total(name)`` still folds them platform-wide.

Naming follows the Prometheus convention the exposition implies:
``repro_<tier>_<what>_total`` for counters, ``..._seconds`` for
histograms (these surface automatically in the ``obs top`` hot-path
table), plain gauge names for levels.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry

__all__ = [
    "PipelineInstruments",
    "StoreInstruments",
    "StreamInstruments",
    "FederationInstruments",
    "MergerInstruments",
    "SecureAggInstruments",
    "ServerInstruments",
    "MiddlewareInstruments",
]


class PipelineInstruments:
    """IngestPipeline: admission accounting + flush timing."""

    def __init__(self, registry: MetricsRegistry, instance: str):
        self.registry = registry
        self.instance = instance
        r = registry
        lbl = {"instance": instance}
        self.submitted = r.counter(
            "repro_pipeline_records_submitted_total",
            "Records offered to the ingest pipeline.",
            ("instance",),
        ).labels(**lbl)
        self.accepted = r.counter(
            "repro_pipeline_records_accepted_total",
            "Records admitted past backpressure.",
            ("instance",),
        ).labels(**lbl)
        outcome = r.counter(
            "repro_pipeline_records_refused_total",
            "Records refused or evicted, by backpressure outcome.",
            ("instance", "outcome"),
        )
        self.rejected = outcome.labels(outcome="rejected", **lbl)
        self.dropped = outcome.labels(outcome="dropped", **lbl)
        self.spilled = r.counter(
            "repro_pipeline_records_spilled_total",
            "Records spilled to the overflow area.",
            ("instance",),
        ).labels(**lbl)
        self.flushed = r.counter(
            "repro_pipeline_records_flushed_total",
            "Records flushed into the dataset store.",
            ("instance",),
        ).labels(**lbl)
        self.flushes = r.counter(
            "repro_pipeline_flushes_total",
            "Shard flush operations.",
            ("instance",),
        ).labels(**lbl)
        self.flush_seconds = r.histogram(
            "repro_pipeline_flush_seconds",
            "Wall-clock time per shard flush (store append + routing + listeners).",
            ("instance",),
        ).labels(**lbl)


class StoreInstruments:
    """DatasetStore: append / scan / compaction timing."""

    def __init__(self, registry: MetricsRegistry, instance: str):
        self.registry = registry
        self.instance = instance
        r = registry
        lbl = {"instance": instance}
        self.records_appended = r.counter(
            "repro_store_records_appended_total",
            "Records written into columnar segments.",
            ("instance",),
        ).labels(**lbl)
        self.append_seconds = r.histogram(
            "repro_store_append_seconds",
            "Wall-clock time per columnar append batch.",
            ("instance",),
        ).labels(**lbl)
        self.scans = r.counter(
            "repro_store_scans_total",
            "Store scan operations.",
            ("instance",),
        ).labels(**lbl)
        self.scan_seconds = r.histogram(
            "repro_store_scan_seconds",
            "Wall-clock time per store scan.",
            ("instance",),
        ).labels(**lbl)
        self.compactions = r.counter(
            "repro_store_compactions_total",
            "Segment compaction passes.",
            ("instance",),
        ).labels(**lbl)
        self.compact_seconds = r.histogram(
            "repro_store_compact_seconds",
            "Wall-clock time per compaction pass.",
            ("instance",),
        ).labels(**lbl)


class StreamInstruments:
    """StreamEngine: pane updates, window closes, alerts."""

    def __init__(self, registry: MetricsRegistry, instance: str):
        self.registry = registry
        self.instance = instance
        r = registry
        lbl = {"instance": instance}
        self.records_seen = r.counter(
            "repro_stream_records_seen_total",
            "Records folded into live panes at flush time.",
            ("instance",),
        ).labels(**lbl)
        self.late_records = r.counter(
            "repro_stream_late_records_total",
            "Records behind the watermark beyond allowed lateness.",
            ("instance",),
        ).labels(**lbl)
        self.windows_closed = r.counter(
            "repro_stream_windows_closed_total",
            "Window snapshots emitted on watermark close.",
            ("instance",),
        ).labels(**lbl)
        self.window_close_seconds = r.histogram(
            "repro_stream_window_close_seconds",
            "Wall-clock time per view window-close emission.",
            ("instance",),
        ).labels(**lbl)
        self.alerts = r.counter(
            "repro_stream_alerts_total",
            "Continuous-query alerts fired.",
            ("instance",),
        ).labels(**lbl)
        #: Event-time watermark (callback-backed at wiring time): scrape
        #: ``sim_time - watermark`` for a view-freshness SLI with zero
        #: hot-path cost.
        self.watermark = r.gauge(
            "repro_stream_watermark_seconds",
            "Event-time watermark of the stream engine.",
            ("instance",),
        ).labels(**lbl)


class FederationInstruments:
    """FederationRouter: gossip control plane + migrations."""

    def __init__(self, registry: MetricsRegistry, instance: str):
        self.registry = registry
        self.instance = instance
        r = registry
        lbl = {"instance": instance}
        sent = r.counter(
            "repro_federation_control_messages_total",
            "Inter-hive control-plane sends, by outcome.",
            ("instance", "outcome"),
        )
        self.messages_sent = sent.labels(outcome="sent", **lbl)
        self.messages_lost = sent.labels(outcome="lost", **lbl)
        self.retries = r.counter(
            "repro_federation_control_retries_total",
            "Control-plane send retries after loss.",
            ("instance",),
        ).labels(**lbl)
        self.gossip_rounds = r.counter(
            "repro_federation_gossip_rounds_total",
            "Membership gossip rounds.",
            ("instance",),
        ).labels(**lbl)
        self.migrations = r.counter(
            "repro_federation_migrations_total",
            "Device migrations between hives.",
            ("instance",),
        ).labels(**lbl)
        self.migration_seconds = r.histogram(
            "repro_federation_migration_seconds",
            "Wall-clock time per device migration.",
            ("instance",),
        ).labels(**lbl)


class MergerInstruments:
    """FederatedStreamMerger: cross-hive window folds."""

    def __init__(self, registry: MetricsRegistry, instance: str):
        self.registry = registry
        self.instance = instance
        r = registry
        lbl = {"instance": instance}
        self.merges = r.counter(
            "repro_federation_merges_total",
            "Federated window merges performed.",
            ("instance",),
        ).labels(**lbl)
        self.merge_seconds = r.histogram(
            "repro_federation_merge_seconds",
            "Wall-clock time per federated window merge.",
            ("instance",),
        ).labels(**lbl)


class SecureAggInstruments:
    """SecureAggregationSession: round phases, protocols, dropouts."""

    def __init__(self, registry: MetricsRegistry, instance: str):
        self.registry = registry
        self.instance = instance
        r = registry
        self._lbl = {"instance": instance}
        self._phase_seconds = r.histogram(
            "repro_secure_agg_phase_seconds",
            "Wall-clock time per secure-aggregation round phase.",
            ("instance", "phase"),
        )
        self._rounds = r.counter(
            "repro_secure_agg_rounds_total",
            "Completed secure-aggregation rounds, by protocol cohort.",
            ("instance", "protocol"),
        )
        self.dropouts = r.counter(
            "repro_secure_agg_dropouts_total",
            "Participants lost mid-session.",
            ("instance",),
        ).labels(**self._lbl)

    def phase_seconds(self, phase: str):
        return self._phase_seconds.labels(phase=phase, **self._lbl)

    def round_done(self, protocol: str) -> None:
        self._rounds.labels(protocol=protocol, **self._lbl).inc()


class ServerInstruments:
    """ReproServer: surfaces, sessions, pushes."""

    def __init__(self, registry: MetricsRegistry, instance: str):
        self.registry = registry
        self.instance = instance
        r = registry
        self._lbl = {"instance": instance}
        self._requests = r.counter(
            "repro_server_requests_total",
            "Requests handled, by surface.",
            ("instance", "surface"),
        )
        self._request_seconds = r.histogram(
            "repro_server_request_seconds",
            "Wall-clock time per request, by surface.",
            ("instance", "surface"),
        )
        self._denials = r.counter(
            "repro_server_denials_total",
            "Middleware denials, by hook.",
            ("instance", "hook"),
        )
        self.sessions = r.gauge(
            "repro_server_sessions",
            "Live sessions.",
            ("instance",),
        ).labels(**self._lbl)
        self.subscriptions = r.gauge(
            "repro_server_subscriptions",
            "Live channel subscriptions.",
            ("instance",),
        ).labels(**self._lbl)
        pushes = r.counter(
            "repro_server_pushes_total",
            "Dashboard pushes, by outcome (enqueued/sent/dropped).",
            ("instance", "outcome"),
        )
        self.pushes_enqueued = pushes.labels(outcome="enqueued", **self._lbl)
        self.pushes_sent = pushes.labels(outcome="sent", **self._lbl)
        self.pushes_dropped = pushes.labels(outcome="dropped", **self._lbl)
        self.push_seconds = r.histogram(
            "repro_server_push_seconds",
            "Wall-clock time per window fan-out (snapshot build + enqueue).",
            ("instance",),
        ).labels(**self._lbl)

    def request(self, surface: str):
        return self._requests.labels(surface=surface, **self._lbl)

    def request_seconds(self, surface: str):
        return self._request_seconds.labels(surface=surface, **self._lbl)

    def denial(self, hook: str):
        return self._denials.labels(hook=hook, **self._lbl)


class MiddlewareInstruments:
    """MetricsMiddleware: per-hook traffic on the shared registry."""

    def __init__(self, registry: MetricsRegistry, instance: str):
        self.registry = registry
        self.instance = instance
        r = registry
        self._lbl = {"instance": instance}
        self._hooks = r.counter(
            "repro_middleware_events_total",
            "Middleware chain events, by hook.",
            ("instance", "hook"),
        )
        self.connects = self._hooks.labels(hook="connect", **self._lbl)
        self.channel_messages = self._hooks.labels(hook="channel_message", **self._lbl)
        self._surface_requests = r.counter(
            "repro_middleware_requests_total",
            "Requests observed by the metrics middleware, by surface.",
            ("instance", "surface"),
        )
        outcomes = r.counter(
            "repro_middleware_outcomes_total",
            "Non-Ok middleware outcomes observed, by kind.",
            ("instance", "kind"),
        )
        self.denied = outcomes.labels(kind="deny", **self._lbl)
        self.redirected = outcomes.labels(kind="redirect", **self._lbl)

    def request(self, surface: str):
        return self._surface_requests.labels(surface=surface, **self._lbl)
