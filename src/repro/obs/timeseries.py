"""Metrics over time: a scraper, a columnar TSDB, and a query layer.

PR 8's :class:`~repro.obs.registry.MetricsRegistry` answers "what is
the counter *now*"; this module adds the time dimension production
monitoring actually runs on — subscription-based remote observation of
server state over time (the CERN-RDA pattern in PAPERS.md):

- :class:`MetricsScraper` samples the registry on the **simulator
  clock** at a fixed cadence into a :class:`TimeSeriesStore`.  The hot
  path is flat: reader lists are rebuilt only when the registry's
  topology :attr:`~repro.obs.registry.MetricsRegistry.version` changes,
  so one scrape is a handful of list comprehensions feeding batched
  numpy row writes.  A disabled registry turns a scrape into one branch.
- :class:`TimeSeriesStore` is a bounded **frame-columnar ring buffer**:
  one clock vector plus a ``(capacity, n_series)`` value matrix, one
  row per scrape, drop-oldest retention with exact eviction accounting
  (``samples_appended == samples_retained + samples_evicted`` always).
- The query layer — :meth:`~TimeSeriesStore.rate`,
  :meth:`~TimeSeriesStore.delta`, :meth:`~TimeSeriesStore.windowed_agg`,
  :meth:`~TimeSeriesStore.histogram_quantile` — turns scraped counters
  and cumulative histogram buckets into the trends the SLO module
  (:mod:`repro.obs.slo`) and the autoscaling roadmap items consume.

Federation-wide rollup lives in :mod:`repro.federation.timeseries`:
per-hive scrapers sampled at one aligned boundary, merged by summing
series grouped without their ``instance`` label.
"""

from __future__ import annotations

import math
from itertools import accumulate
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import ObsError
from repro.obs.registry import (
    Gauge,
    Histogram,
    MetricsRegistry,
    _format,
    _label_key,
    _render_labels,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation import CancelToken, Simulator

__all__ = [
    "SeriesKey",
    "Series",
    "TimeSeriesStore",
    "ScrapeFrame",
    "ScraperStats",
    "MetricsScraper",
    "instance_select",
    "series_id",
]

#: One series' identity: (fully-expanded name, sorted label pairs).
#: Histogram families appear as their Prometheus-conventional expansion
#: (``<name>_bucket`` per ``le``, ``<name>_sum``, ``<name>_count``).
SeriesKey = "tuple[str, tuple[tuple[str, str], ...]]"

SelectFn = Callable[[str, Mapping[str, str]], bool]


def series_id(name: str, labels: Mapping[str, str] | None = None) -> tuple:
    """Build the canonical :data:`SeriesKey` for (name, labels)."""
    return (name, _label_key(labels or {}))


def instance_select(
    instances: Iterable[str],
    invert: bool = False,
    include_unlabelled: bool | None = None,
) -> SelectFn:
    """A scraper filter keyed on the ``instance`` label.

    ``invert=False`` keeps exactly the series whose ``instance`` is in
    ``instances`` (one hive's tiers); ``invert=True`` keeps everything
    *else* — the residual scraper a federation uses for components owned
    by no member (routers, servers, secure-agg sessions).  Series with
    no ``instance`` label follow ``include_unlabelled`` (default: the
    ``invert`` side, so exactly one scraper of a partition claims them).
    """
    owned = frozenset(instances)
    unlabelled = invert if include_unlabelled is None else include_unlabelled

    def select(name: str, labels: Mapping[str, str]) -> bool:
        instance = labels.get("instance")
        if instance is None:
            return unlabelled
        return (instance in owned) != invert

    return select


class Series:
    """One materialized series: aligned ``t`` / ``values`` numpy arrays."""

    __slots__ = ("name", "labels", "t", "values")

    def __init__(
        self,
        name: str,
        labels: tuple,
        t: np.ndarray,
        values: np.ndarray,
    ):
        self.name = name
        self.labels = labels
        self.t = t
        self.values = values

    def __len__(self) -> int:
        return len(self.t)

    @property
    def series(self) -> str:
        """Rendered identity (``name{label="v",...}``)."""
        return self.name + _render_labels(self.labels)

    def label(self, key: str) -> str | None:
        for k, v in self.labels:
            if k == key:
                return v
        return None

    def latest(self) -> tuple[float, float] | None:
        """Newest ``(t, value)`` sample, or None for an empty series."""
        if not len(self.t):
            return None
        return float(self.t[-1]), float(self.values[-1])

    def clipped(self, t0: float, t1: float) -> "Series":
        """The sub-series with ``t0 <= t <= t1`` (zero-copy views)."""
        lo = int(np.searchsorted(self.t, t0, side="left"))
        hi = int(np.searchsorted(self.t, t1, side="right"))
        return Series(self.name, self.labels, self.t[lo:hi], self.values[lo:hi])


class TimeSeriesStore:
    """A bounded frame-columnar ring buffer of scraped samples.

    Layout follows the store tier's columnar idiom: one time vector and
    one ``(capacity, n_series)`` float matrix; every scrape is one row.
    Series appearing mid-run get a new column back-filled with NaN (the
    "did not exist yet" marker), so reads drop NaN before returning.
    Retention is drop-oldest by whole frames, with the eviction
    accounted per sample: ``samples_appended == samples_retained +
    samples_evicted`` holds at every moment.
    """

    def __init__(self, capacity: int = 512):
        if capacity < 2:
            raise ObsError(f"time-series capacity must be >= 2 frames: {capacity}")
        self.capacity = capacity
        self._t = np.zeros(capacity, dtype=np.float64)
        self._values = np.full((capacity, 0), np.nan, dtype=np.float64)
        self._cols: dict[tuple, int] = {}
        self._keys: list[tuple] = []
        self._start = 0  # oldest retained frame slot
        self._count = 0  # retained frames
        self.frames_appended = 0
        self.frames_evicted = 0
        self.samples_appended = 0
        self.samples_evicted = 0
        #: Bumped when a column is added (rollup re-mapping hook).
        self.layout_version = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def column(self, key: tuple) -> int:
        """The column index for ``key`` (allocated on first use)."""
        col = self._cols.get(key)
        if col is None:
            col = len(self._keys)
            self._cols[key] = col
            self._keys.append(key)
            if col >= self._values.shape[1]:
                # Amortised doubling: a fresh registry brings hundreds
                # of series in one scrape, and growing one column at a
                # time would copy the whole matrix per series.  Spare
                # columns stay NaN, which every reader already skips.
                width = max(8, 2 * self._values.shape[1])
                grown = np.full(
                    (self.capacity, width), np.nan, dtype=np.float64
                )
                if self._values.shape[1]:
                    grown[:, : self._values.shape[1]] = self._values
                self._values = grown
            self.layout_version += 1
        return col

    def open_frame(self, t: float) -> int:
        """Start the frame at ``t``; returns its row slot.

        Frames must advance strictly in time (the scraper's duplicate
        guard enforces this for clocks that stall).  On a full ring the
        oldest frame is evicted first, its live samples counted.
        """
        if self._count:
            newest = self._t[(self._start + self._count - 1) % self.capacity]
            if t <= newest:
                raise ObsError(
                    f"frames must advance in time: {t} after {newest}"
                )
        if self._count >= self.capacity:
            victim = self._start
            evicted = int(np.count_nonzero(~np.isnan(self._values[victim])))
            self.samples_evicted += evicted
            self.frames_evicted += 1
            self._start = (self._start + 1) % self.capacity
            self._count -= 1
        slot = (self._start + self._count) % self.capacity
        self._count += 1
        self.frames_appended += 1
        self._t[slot] = t
        self._values[slot, :] = np.nan
        return slot

    def write(self, slot: int, cols, values) -> None:
        """Write one group of samples into an open frame's row."""
        self._values[slot, cols] = values
        self.samples_appended += len(cols)

    def write_one(self, slot: int, col: int, value: float) -> None:
        self._values[slot, col] = value
        self.samples_appended += 1

    def append(self, t: float, samples: Mapping[tuple, float]) -> int:
        """Convenience one-shot frame append (tests, rollups)."""
        slot = self.open_frame(t)
        for key, value in samples.items():
            self.write_one(slot, self.column(key), value)
        return slot

    def record(
        self, name: str, t: float, value: float, labels: Mapping[str, str] | None = None
    ) -> None:
        """Append one single-series frame (synthetic fixtures)."""
        self.append(t, {series_id(name, labels): value})

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    @property
    def n_series(self) -> int:
        return len(self._keys)

    @property
    def n_frames(self) -> int:
        return self._count

    @property
    def samples_retained(self) -> int:
        """Live (non-NaN) samples across the retained frames."""
        if not self._count:
            return 0
        return int(np.count_nonzero(~np.isnan(self._values[self._order()])))

    def keys(self) -> list[tuple]:
        return list(self._keys)

    def _order(self) -> np.ndarray:
        """Retained frame slots, oldest first."""
        return (self._start + np.arange(self._count)) % self.capacity

    def frame_times(self) -> np.ndarray:
        return self._t[self._order()]

    def _series_at(self, key: tuple, col: int) -> Series:
        order = self._order()
        t = self._t[order]
        values = self._values[order, col]
        live = ~np.isnan(values)
        return Series(key[0], key[1], t[live], values[live])

    def select(self, name: str, **match: str) -> list[Series]:
        """Every series named ``name`` whose labels include ``match``."""
        want = set(_label_key(match))
        out = []
        for key, col in self._cols.items():
            if key[0] == name and want <= set(key[1]):
                out.append(self._series_at(key, col))
        return out

    def series(self, name: str, labels: Mapping[str, str] | None = None) -> Series:
        """One series; with ``labels=None`` the name must be unambiguous."""
        if labels is not None:
            key = series_id(name, labels)
            col = self._cols.get(key)
            if col is None:
                raise ObsError(f"unknown series {name}{_render_labels(key[1])}")
            return self._series_at(key, col)
        matches = [key for key in self._cols if key[0] == name]
        if not matches:
            raise ObsError(f"unknown series {name!r}")
        if len(matches) > 1:
            raise ObsError(
                f"{name!r} is ambiguous across {len(matches)} label sets; "
                "pass labels= or use select()"
            )
        return self._series_at(matches[0], self._cols[matches[0]])

    def latest(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> tuple[float, float] | None:
        return self.series(name, labels).latest()

    # ------------------------------------------------------------------
    # Query layer: trends over scraped samples
    # ------------------------------------------------------------------

    def _window_bounds(self, window: float | None, at: float | None) -> tuple[float, float]:
        if not self._count:
            return (0.0, 0.0)
        newest = float(self._t[(self._start + self._count - 1) % self.capacity])
        t1 = newest if at is None else at
        t0 = float("-inf") if window is None else t1 - window
        return (t0, t1)

    def delta(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        window: float | None = None,
        at: float | None = None,
    ) -> float:
        """Counter increase over the lookback window (newest - oldest).

        Sums over every matching label set when ``labels`` is None, so
        per-instance counters fold platform-wide like
        :meth:`MetricsRegistry.total` does for point-in-time reads.
        """
        t0, t1 = self._window_bounds(window, at)
        picked = (
            [self.series(name, labels)] if labels is not None else self.select(name)
        )
        if not picked:
            raise ObsError(f"unknown series {name!r}")
        total = 0.0
        for series in picked:
            clip = series.clipped(t0, t1)
            if len(clip) >= 2:
                total += float(clip.values[-1] - clip.values[0])
        return total

    def rate(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        window: float | None = None,
        at: float | None = None,
    ) -> float:
        """Per-second counter rate over the lookback window."""
        t0, t1 = self._window_bounds(window, at)
        picked = (
            [self.series(name, labels)] if labels is not None else self.select(name)
        )
        if not picked:
            raise ObsError(f"unknown series {name!r}")
        total = 0.0
        for series in picked:
            clip = series.clipped(t0, t1)
            if len(clip) >= 2:
                span = float(clip.t[-1] - clip.t[0])
                if span > 0:
                    total += float(clip.values[-1] - clip.values[0]) / span
        return total

    def windowed_agg(
        self,
        name: str,
        agg: str = "mean",
        labels: Mapping[str, str] | None = None,
        window: float | None = None,
        at: float | None = None,
    ) -> float:
        """Aggregate a gauge's samples over the lookback window.

        ``agg`` is one of ``mean | min | max | sum | last | count``;
        with ``labels=None`` the matching label sets' samples pool
        before aggregating.
        """
        if agg not in ("mean", "min", "max", "sum", "last", "count"):
            raise ObsError(f"unknown windowed agg {agg!r}")
        t0, t1 = self._window_bounds(window, at)
        picked = (
            [self.series(name, labels)] if labels is not None else self.select(name)
        )
        if not picked:
            raise ObsError(f"unknown series {name!r}")
        pooled = [series.clipped(t0, t1) for series in picked]
        values = np.concatenate([clip.values for clip in pooled]) if pooled else np.empty(0)
        if agg == "count":
            return float(len(values))
        if not len(values):
            return 0.0
        if agg == "last":
            newest = max(pooled, key=lambda clip: clip.t[-1] if len(clip) else -math.inf)
            return float(newest.values[-1])
        return float(getattr(np, agg)(values))

    def histogram_quantile(
        self,
        q: float,
        name: str,
        window: float | None = None,
        at: float | None = None,
        **match: str,
    ) -> float:
        """Bucket-interpolated quantile of a histogram *over time*.

        Pass the histogram's *family* name (``..._seconds``); the
        per-``le`` increases of its cumulative ``_bucket`` series over
        the window — summed across matching label sets, so a federation
        of instances folds into one distribution — feed the same
        interpolation the registry uses for whole-run quantiles.
        """
        if not 0.0 <= q <= 1.0:
            raise ObsError(f"quantile must be in [0, 1]: {q}")
        buckets = self.select(f"{name}_bucket", **match)
        if not buckets:
            raise ObsError(f"no scraped buckets for histogram {name!r}")
        t0, t1 = self._window_bounds(window, at)
        by_edge: dict[float, float] = {}
        for series in buckets:
            le = series.label("le")
            edge = math.inf if le == "+Inf" else float(le)
            clip = series.clipped(t0, t1)
            if len(clip) >= 2:
                by_edge[edge] = by_edge.get(edge, 0.0) + float(
                    clip.values[-1] - clip.values[0]
                )
        if not by_edge:
            return 0.0
        edges = sorted(by_edge)
        total = by_edge.get(math.inf, by_edge[edges[-1]])
        if total <= 0:
            return 0.0
        rank = q * total
        seen = 0.0
        lower = 0.0
        finite = [edge for edge in edges if math.isfinite(edge)]
        for edge in finite:
            cumulative = by_edge[edge]
            in_bucket = cumulative - seen
            if cumulative >= rank and in_bucket > 0:
                fraction = (rank - seen) / in_bucket
                return lower + (edge - lower) * min(1.0, max(0.0, fraction))
            seen = cumulative
            lower = edge
        return finite[-1] if finite else 0.0


class ScrapeFrame:
    """One scrape's worth of aligned samples (lazy materialization).

    Built only when frame subscribers exist — the scrape hot path never
    pays for dict rendering nobody asked for.
    """

    __slots__ = ("seq", "t", "_store", "_slot")

    def __init__(self, seq: int, t: float, store: TimeSeriesStore, slot: int):
        self.seq = seq
        self.t = t
        self._store = store
        self._slot = slot

    @property
    def store(self) -> TimeSeriesStore:
        return self._store

    @property
    def n_series(self) -> int:
        return self._store.n_series

    def samples(self, names: Sequence[str] = ()) -> dict[str, float]:
        """Rendered ``series -> value`` rows; ``names`` are prefixes
        (empty = everything live in this frame)."""
        row = self._store._values[self._slot]
        out: dict[str, float] = {}
        for key, col in self._store._cols.items():
            value = row[col]
            if math.isnan(value):
                continue
            if names and not any(key[0].startswith(prefix) for prefix in names):
                continue
            out[key[0] + _render_labels(key[1])] = float(value)
        return out

    def digest(self, names: Sequence[str] = ()) -> dict:
        """The wire form the ``obs watch`` channel pushes."""
        return {
            "seq": self.seq,
            "t": self.t,
            "n_series": self.n_series,
            "samples": self.samples(names),
        }


class ScraperStats:
    """Scrape accounting (the robustness tests pin these)."""

    __slots__ = ("scrapes", "skipped_disabled", "skipped_clock", "samples")

    def __init__(self):
        self.scrapes = 0
        self.skipped_disabled = 0
        self.skipped_clock = 0
        self.samples = 0


class MetricsScraper:
    """Samples a registry into a :class:`TimeSeriesStore` on a cadence.

    - ``cadence`` is in **simulated seconds** (:meth:`start` schedules a
      periodic event);
    - ``select`` optionally filters ``(name, labels)`` — the federation
      uses this to scrape one hive's instances per member store;
    - a disabled registry makes :meth:`scrape` a counted no-op, and a
      stalled clock never writes two frames at one timestamp.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        store: TimeSeriesStore | None = None,
        cadence: float = 1.0,
        select: SelectFn | None = None,
        clock: Callable[[], float] | None = None,
        capacity: int = 512,
    ):
        if cadence <= 0:
            raise ObsError(f"scrape cadence must be positive: {cadence}")
        if registry is None:
            from repro import obs as _obs

            registry = _obs.metrics_registry()
        self.registry = registry
        self.store = store if store is not None else TimeSeriesStore(capacity)
        self.cadence = cadence
        self._select = select
        self._clock = clock
        self.stats = ScraperStats()
        self._frame_callbacks: list[Callable[[ScrapeFrame], None]] = []
        self._last_t = float("-inf")
        self._seq = 0
        # Flat reader cache, rebuilt only on registry topology change:
        self._readers_version = -1
        self._plain: list = []  # counters + value-backed gauges
        self._plain_cols = np.empty(0, dtype=np.intp)
        self._fns: list = []  # callback-backed gauges
        self._fn_cols = np.empty(0, dtype=np.intp)
        #: per histogram child: (child, bucket col array, sum col, count col)
        self._hists: list[tuple] = []
        # Fused-write plan (see _rebuild_readers): all columns in
        # reader order plus a reusable row buffer.
        self._all_cols = np.empty(0, dtype=np.intp)
        self._value_buf = np.empty(0, dtype=np.float64)
        self._hist_segments: list[tuple] = []
        self._samples_per_scrape = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def on_frame(self, callback: Callable[[ScrapeFrame], None]) -> None:
        """Subscribe to completed frames (the watch channel's feed)."""
        self._frame_callbacks.append(callback)

    def start(
        self,
        sim: "Simulator",
        until: float | None = None,
        first_at: float | None = None,
    ) -> "CancelToken":
        """Schedule periodic scrapes on the simulator clock.

        Pass ``until`` for bounded replays — an unbounded periodic event
        keeps a drained simulator alive forever.
        """
        if self._clock is None:
            self._clock = lambda: sim.now
        return sim.schedule_periodic(
            self.cadence, lambda: self.scrape(sim.now), until=until, first_at=first_at
        )

    # ------------------------------------------------------------------
    # The scrape hot path
    # ------------------------------------------------------------------

    def _rebuild_readers(self) -> None:
        registry = self.registry
        store = self.store
        select = self._select
        plain: list = []
        plain_cols: list[int] = []
        fns: list = []
        fn_cols: list[int] = []
        hists: list[tuple] = []
        for name in registry.families:
            family = registry.family(name)
            for key, child in family.children():
                if select is not None and not select(name, dict(key)):
                    continue
                if isinstance(child, Histogram):
                    bucket_cols = [
                        store.column((f"{name}_bucket", key + (("le", _format(edge)),)))
                        for edge in child.buckets
                    ]
                    bucket_cols.append(
                        store.column((f"{name}_bucket", key + (("le", "+Inf"),)))
                    )
                    hists.append(
                        (
                            child,
                            np.asarray(bucket_cols, dtype=np.intp),
                            store.column((f"{name}_sum", key)),
                            store.column((f"{name}_count", key)),
                        )
                    )
                elif isinstance(child, Gauge) and child._fn is not None:
                    fns.append(child)
                    fn_cols.append(store.column((name, key)))
                else:
                    plain.append(child)
                    plain_cols.append(store.column((name, key)))
        self._plain = plain
        self._plain_cols = np.asarray(plain_cols, dtype=np.intp)
        self._fns = fns
        self._fn_cols = np.asarray(fn_cols, dtype=np.intp)
        self._hists = hists
        # One fused write per scrape: all columns in reader order, and
        # a reusable value buffer the readers fill segment by segment
        # (17 small fancy-index writes cost ~2x the whole sample pass).
        all_cols: list[int] = list(plain_cols) + list(fn_cols)
        hist_segments: list[tuple] = []
        offset = len(all_cols)
        for child, bucket_cols, sum_col, count_col in hists:
            all_cols.extend(int(c) for c in bucket_cols)
            all_cols.append(sum_col)
            all_cols.append(count_col)
            hist_segments.append((child, offset, offset + len(bucket_cols)))
            offset += len(bucket_cols) + 2
        self._all_cols = np.asarray(all_cols, dtype=np.intp)
        self._value_buf = np.empty(len(all_cols), dtype=np.float64)
        self._hist_segments = hist_segments
        self._samples_per_scrape = len(all_cols)
        self._readers_version = registry.version

    def scrape(self, now: float | None = None) -> ScrapeFrame | None:
        """Take one sample of every selected series; None when skipped."""
        registry = self.registry
        if not registry.enabled:
            self.stats.skipped_disabled += 1
            return None
        if now is None:
            if self._clock is None:
                raise ObsError("scrape needs now= or a bound clock")
            now = self._clock()
        if now <= self._last_t:
            # A stalled simulator clock must not produce two frames at
            # one timestamp (rates would divide by zero).
            self.stats.skipped_clock += 1
            return None
        if registry.version != self._readers_version:
            self._rebuild_readers()
        store = self.store
        slot = store.open_frame(now)
        buf = self._value_buf
        n_plain = len(self._plain)
        buf[:n_plain] = [c._value for c in self._plain]
        if self._fns:
            buf[n_plain : n_plain + len(self._fns)] = [
                g.value for g in self._fns
            ]
        for child, start, stop in self._hist_segments:
            buf[start:stop] = list(accumulate(child.bucket_counts))
            buf[stop] = child._sum
            buf[stop + 1] = child._count
        store.write(slot, self._all_cols, buf)
        self._last_t = now
        self._seq += 1
        self.stats.scrapes += 1
        self.stats.samples += self._samples_per_scrape
        frame = ScrapeFrame(self._seq, now, store, slot)
        for callback in self._frame_callbacks:
            callback(frame)
        return frame

    @property
    def last_frame_time(self) -> float:
        return self._last_t
