"""``repro.obs`` — unified observability for the whole platform.

One process-wide :class:`MetricsRegistry` (labeled counters, gauges,
fixed-bucket histograms, Prometheus-style text exposition) and one
:class:`Tracer` (spans into a bounded drop-oldest :class:`TraceLog`)
serve every tier: ingest, store, streams, federation, privacy, server.

Metrics are **on** by default (cheap: pre-resolved children, one int
add per event); tracing is **off** by default (opt in per run via
:func:`configure`). Both are live toggles — flipping
``configure(metrics=False)`` turns every instrument in the process into
a single-branch no-op without rewiring anything.

Typical use::

    from repro import obs

    obs.configure(tracing=True, sample_rate=0.05)
    ... drive the platform ...
    print(obs.render_prometheus())          # full exposition
    for row in obs.hot_paths():             # obs top
        print(row.to_text())
    paths = obs.tracing.record_paths(obs.tracer().log)

Tests call :func:`reset` to start from a fresh registry/tracer.
"""

from __future__ import annotations

from typing import Callable

from repro.obs import instruments, registry, tracing
from repro.obs.registry import DEFAULT_BUCKETS, MetricsRegistry, Sample, StageTiming
from repro.obs.slo import (
    DEFAULT_BURN_RULES,
    BurnRateRule,
    ObsAlert,
    SLODefinition,
    SLOStatus,
    SLOTracker,
    availability_sli,
    freshness_sli,
    latency_sli,
)
from repro.obs.timeseries import (
    MetricsScraper,
    ScrapeFrame,
    Series,
    TimeSeriesStore,
    instance_select,
    series_id,
)
from repro.obs.tracing import Span, TraceLog, Tracer, record_paths, trace_tree

__all__ = [
    "MetricsRegistry",
    "Tracer",
    "TraceLog",
    "Span",
    "Sample",
    "StageTiming",
    "DEFAULT_BUCKETS",
    "record_paths",
    "trace_tree",
    "configure",
    "reset",
    "metrics_registry",
    "tracer",
    "render_prometheus",
    "hot_paths",
    "next_instance",
    "instruments",
    "registry",
    "tracing",
    # metrics over time
    "MetricsScraper",
    "TimeSeriesStore",
    "ScrapeFrame",
    "Series",
    "instance_select",
    "series_id",
    # SLOs
    "SLODefinition",
    "SLOStatus",
    "SLOTracker",
    "ObsAlert",
    "BurnRateRule",
    "DEFAULT_BURN_RULES",
    "availability_sli",
    "latency_sli",
    "freshness_sli",
]

_registry = MetricsRegistry(enabled=True)
_tracer = Tracer(enabled=False)
_instance_counters: dict[str, int] = {}


def metrics_registry() -> MetricsRegistry:
    """The process-wide registry every tier instruments against."""
    return _registry


def tracer() -> Tracer:
    """The process-wide tracer every tier emits spans through."""
    return _tracer


def configure(
    metrics: bool | None = None,
    tracing: bool | None = None,
    sample_rate: float | None = None,
    trace_capacity: int | None = None,
    clock: Callable[[], float] | None = None,
) -> None:
    """Flip observability switches on the process-wide instances.

    Only the arguments given are touched, so callers can toggle one
    axis (say, tracing) without disturbing the rest.
    """
    if metrics is not None:
        _registry.enabled = metrics
    if tracing is not None:
        _tracer.enabled = tracing
    if sample_rate is not None:
        if not 0.0 <= sample_rate <= 1.0:
            from repro.errors import ObsError

            raise ObsError(f"sample_rate must be in [0, 1]: {sample_rate}")
        _tracer.sample_rate = sample_rate
    if trace_capacity is not None:
        _tracer.log = TraceLog(capacity=trace_capacity)
    if clock is not None:
        _registry.set_clock(clock)
        _tracer.set_clock(clock)


def reset(metrics: bool = True, tracing: bool = False) -> None:
    """Fresh registry + tracer (tests; long-lived REPLs between runs).

    Components wired against the *old* registry keep their old children
    — re-construct the platform after a reset, as tests do.
    """
    global _registry, _tracer
    _registry = MetricsRegistry(enabled=metrics)
    _tracer = Tracer(enabled=tracing)
    _instance_counters.clear()


def next_instance(prefix: str) -> str:
    """Allocate a stable per-process instance label (``pipeline-1``...)."""
    n = _instance_counters.get(prefix, 0) + 1
    _instance_counters[prefix] = n
    return f"{prefix}-{n}"


def render_prometheus() -> str:
    """The process-wide registry's full text exposition."""
    return _registry.render_prometheus()


def hot_paths() -> list[StageTiming]:
    """Every timed stage, hottest first — the ``obs top`` table."""
    return _registry.stage_timings()
