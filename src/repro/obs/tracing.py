"""End-to-end record tracing: spans, a bounded trace log, reconstruction.

A *trace* follows one device upload through the platform's record path:

    ingest.admit  (Hive.receive_upload — the root span)
      -> ingest.flush       (IngestPipeline shard flush)
           -> store.append  (DatasetStore columnar write)
      -> stream.window      (StreamEngine pane/window close)
      -> federation.merge   (FederatedStreamMerger fold)
      -> server.push        (dashboard channel push)

Span context propagates *with the data*, not with the call stack: the
record path is asynchronous (flushes are simulator events, window
closes happen on watermark advance), so each traced
:class:`~repro.apisense.device.SensorRecord` carries its ``trace_id``
and downstream stages stamp the record keys they handled onto their
spans (``records`` attr: ``{trace_id: [record times]}``). That makes the
:class:`TraceLog` a *correctness* tool as well as a latency one —
:func:`record_paths` rebuilds every record's journey from spans alone,
and tests assert exactly-once pipeline → store → window delivery
without consulting any component's internal counters.

Durations are wall-clock (``time.perf_counter``) because the point is
profiling the reproduction's real hot paths; each span additionally
stamps the simulated time at which it ran (``sim_time``) so spans are
placeable on the simulated axis too.

The log is bounded and drop-oldest (like the platform's ``AlertLog``):
tracing must never grow memory without bound on long simulations.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.errors import ObsError

__all__ = ["Span", "TraceLog", "Tracer", "record_paths", "trace_tree", "traced_keys"]

#: Stages making up the record path, in path order.
RECORD_PATH_STAGES = (
    "ingest.admit",
    "ingest.flush",
    "store.append",
    "stream.window",
    "federation.merge",
    "server.push",
)


@dataclass
class Span:
    """One timed operation, possibly belonging to a trace."""

    name: str
    span_id: int
    trace_id: int | None = None
    parent_id: int | None = None
    start: float = 0.0
    end: float = 0.0
    sim_time: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Wall-clock seconds spent inside the span."""
        return max(0.0, self.end - self.start)

    def record_keys(self) -> list[tuple[int, float]]:
        """The ``(trace_id, record_time)`` keys this span handled."""
        keys: list[tuple[int, float]] = []
        for tid, times in (self.attrs.get("records") or {}).items():
            keys.extend((tid, t) for t in times)
        return keys

    def to_text(self) -> str:
        extra = {k: v for k, v in self.attrs.items() if k != "records"}
        bits = [f"{self.name:<20} {self.duration * 1e6:>9.1f}us"]
        if self.sim_time is not None:
            bits.append(f"sim={self.sim_time:g}")
        if self.trace_id is not None:
            bits.append(f"trace={self.trace_id}")
        if extra:
            bits.append(" ".join(f"{k}={v}" for k, v in sorted(extra.items())))
        return "  ".join(bits)


class TraceLog:
    """Bounded drop-oldest span sink."""

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ObsError(f"trace log capacity must be positive: {capacity}")
        self.capacity = capacity
        self._spans: deque[Span] = deque(maxlen=capacity)
        self.total = 0
        self.dropped = 0

    def append(self, span: Span) -> None:
        if len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append(span)
        self.total += 1

    def spans(self, name: str | None = None, trace_id: int | None = None) -> list[Span]:
        out = list(self._spans)
        if name is not None:
            out = [s for s in out if s.name == name]
        if trace_id is not None:
            out = [s for s in out if s.trace_id == trace_id]
        return out

    def trace_ids(self) -> list[int]:
        """Distinct trace ids still fully or partially in the log."""
        seen: dict[int, None] = {}
        for span in self._spans:
            if span.trace_id is not None:
                seen.setdefault(span.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        self._spans.clear()
        self.total = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)


class _SpanHandle:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span | None):
        self._tracer = tracer
        self.span = span

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span (no-op when tracing is off)."""
        if self.span is not None:
            self.span.attrs.update(attrs)

    def add_records(self, records: Mapping[int, Iterable[float]]) -> None:
        """Merge ``{trace_id: [record times]}`` into the span's record set."""
        if self.span is None:
            return
        existing = self.span.attrs.setdefault("records", {})
        for tid, times in records.items():
            existing.setdefault(tid, []).extend(times)

    def __enter__(self) -> "_SpanHandle":
        if self.span is not None:
            self._tracer._stack.append(self.span)
            self.span.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.span is not None:
            self.span.end = time.perf_counter()
            popped = self._tracer._stack.pop()
            assert popped is self.span
            self._tracer.log.append(self.span)


class Tracer:
    """Span factory with deterministic sampling and parent propagation.

    The simulator is single-threaded, so parenthood is a plain stack:
    a span opened while another is open becomes its child. Cross-event
    parenthood (a flush span caused by an earlier admit span) is
    expressed through ``trace_id`` + the ``records`` attr instead —
    the record path is reconstructed from data lineage, not the stack.
    """

    def __init__(
        self,
        log: TraceLog | None = None,
        enabled: bool = False,
        sample_rate: float = 1.0,
        clock: Callable[[], float] | None = None,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ObsError(f"sample_rate must be in [0, 1]: {sample_rate}")
        self.log = log if log is not None else TraceLog()
        self.enabled = enabled
        self.sample_rate = sample_rate
        self._clock = clock
        self._stack: list[Span] = []
        self._next_trace = 1
        self._next_span = 1
        self._accum = 0.0  # systematic sampler state

    def set_clock(self, clock: Callable[[], float] | None) -> None:
        self._clock = clock

    def new_trace(self) -> int | None:
        """Start a new trace, or ``None`` when disabled / not sampled.

        Sampling is *systematic* (every ``1/rate``-th candidate), not
        random — deterministic runs stay deterministic.
        """
        if not self.enabled or self.sample_rate == 0.0:
            return None
        self._accum += self.sample_rate
        if self._accum < 1.0:
            return None
        self._accum -= 1.0
        trace_id = self._next_trace
        self._next_trace += 1
        return trace_id

    def span(self, name: str, trace_id: int | None = None, **attrs: Any) -> _SpanHandle:
        """Open a span; a cheap no-op handle when tracing is disabled.

        ``trace_id`` ties the span to a trace explicitly; when omitted,
        the enclosing open span's trace (if any) is inherited.
        """
        if not self.enabled:
            return _SpanHandle(self, None)
        parent = self._stack[-1] if self._stack else None
        if trace_id is None and parent is not None:
            trace_id = parent.trace_id
        span = Span(
            name=name,
            span_id=self._next_span,
            trace_id=trace_id,
            parent_id=parent.span_id if parent else None,
            sim_time=self._clock() if self._clock else None,
            attrs=dict(attrs),
        )
        self._next_span += 1
        return _SpanHandle(self, span)


def traced_keys(records) -> dict[int, list[float]]:
    """``{trace_id: [record times]}`` for the traced records of a batch.

    Works on anything carrying ``trace_id``/``time`` attributes (the
    platform's ``SensorRecord``); untraced records are skipped.
    """
    out: dict[int, list[float]] = {}
    for record in records:
        tid = getattr(record, "trace_id", None)
        if tid is not None:
            out.setdefault(tid, []).append(record.time)
    return out


def record_paths(
    spans: Iterable[Span],
) -> dict[tuple[int, float], dict[str, list[Span]]]:
    """Rebuild per-record journeys from spans alone.

    Returns ``{(trace_id, record_time): {stage_name: [spans]}}`` —
    every record key any span claimed to handle, mapped to the spans
    that handled it, grouped by stage. Exactly-once delivery through a
    stage means the key's list for that stage has length 1.
    """
    paths: dict[tuple[int, float], dict[str, list[Span]]] = {}
    for span in spans:
        for key in span.record_keys():
            paths.setdefault(key, {}).setdefault(span.name, []).append(span)
    return paths


def trace_tree(spans: Iterable[Span], trace_id: int) -> list[tuple[int, Span]]:
    """One trace's spans as ``(depth, span)`` rows in tree order.

    Depth follows ``parent_id`` links; spans whose parent is not in the
    log (evicted, or a cross-event stage) sit at depth 0 in start order.
    """
    mine = sorted(
        (s for s in spans if s.trace_id == trace_id),
        key=lambda s: (s.start, s.span_id),
    )
    by_id = {s.span_id: s for s in mine}
    rows: list[tuple[int, Span]] = []

    def depth_of(span: Span) -> int:
        depth = 0
        parent = span.parent_id
        while parent is not None and parent in by_id:
            depth += 1
            parent = by_id[parent].parent_id
        return depth

    for span in mine:
        rows.append((depth_of(span), span))
    return rows
