"""SLOs over scraped history: pluggable SLIs, multi-window burn rates.

A service-level objective here is three pluggable pieces, not a
hard-coded threshold (the policy-object lesson from Dearle et al. in
PAPERS.md):

- an **SLI probe** — any ``(store, t0, t1) -> good_ratio | None``
  callable reading the :class:`~repro.obs.timeseries.TimeSeriesStore`
  (factories below cover the three canonical shapes: availability from
  a good/total counter pair, latency from histogram bucket deltas,
  freshness from a watermark gauge);
- an **objective** — the target good-ratio (``0.999`` = "three nines");
- **burn-rate rules** — the SRE multi-window pattern: burn =
  ``(1 - good_ratio) / (1 - objective)``, and the SLO is *burning* only
  when **every** window's burn exceeds its factor (the long window
  proves sustained damage, the short window proves it is still
  happening, so recovery resolves fast).

:class:`SLOTracker` evaluates definitions against a store, appends an
:class:`ObsAlert` into the platform's bounded
:class:`~repro.streams.queries.AlertLog` machinery on every state
transition, and hands transitions to subscribers — the server's
``obs watch`` channel pushes them to live dashboards exactly once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from repro.errors import ObsError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.timeseries import TimeSeriesStore

__all__ = [
    "SLIProbe",
    "BurnRateRule",
    "DEFAULT_BURN_RULES",
    "SLODefinition",
    "SLOStatus",
    "ObsAlert",
    "SLOTracker",
    "availability_sli",
    "latency_sli",
    "freshness_sli",
]

#: An SLI probe maps a (store, window) to the good-ratio in [0, 1], or
#: None when the window holds no usable data (state stays unchanged).
SLIProbe = Callable[["TimeSeriesStore", float, float], "float | None"]


@dataclass(frozen=True)
class BurnRateRule:
    """One window of the multi-window burn-rate pattern."""

    window: float  # lookback, simulated seconds
    factor: float  # burn threshold: burning needs burn >= factor

    def __post_init__(self):
        if self.window <= 0:
            raise ObsError(f"burn window must be positive: {self.window}")
        if self.factor <= 0:
            raise ObsError(f"burn factor must be positive: {self.factor}")


#: Sim-scale transcription of the SRE page/ticket pair: a long window
#: at a low factor (sustained damage) AND a short one at a high factor
#: (still happening right now).
DEFAULT_BURN_RULES = (
    BurnRateRule(window=300.0, factor=2.0),
    BurnRateRule(window=60.0, factor=6.0),
)


@dataclass(frozen=True)
class SLODefinition:
    """One objective: a named SLI probe held to a target good-ratio."""

    name: str
    objective: float
    probe: SLIProbe
    rules: tuple = DEFAULT_BURN_RULES
    description: str = ""

    def __post_init__(self):
        if not 0.0 < self.objective < 1.0:
            raise ObsError(
                f"objective must be in (0, 1): {self.name}={self.objective}"
            )
        if not self.rules:
            raise ObsError(f"SLO {self.name!r} needs at least one burn rule")

    def burn_rates(
        self, store: "TimeSeriesStore", now: float
    ) -> "list[float | None]":
        """Per-rule burn rates at ``now`` (None where the probe had no data)."""
        budget = 1.0 - self.objective
        out: list[float | None] = []
        for rule in self.rules:
            ratio = self.probe(store, now - rule.window, now)
            out.append(None if ratio is None else (1.0 - ratio) / budget)
        return out


@dataclass
class SLOStatus:
    """Current evaluation of one definition."""

    name: str
    objective: float
    burning: bool = False
    since: float = 0.0  # when the current state began
    burn_rates: "tuple[float | None, ...]" = ()
    transitions: int = 0

    @property
    def state(self) -> str:
        return "burning" if self.burning else "ok"

    def worst_burn(self) -> float:
        known = [b for b in self.burn_rates if b is not None]
        return max(known) if known else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "objective": self.objective,
            "state": self.state,
            "since": self.since,
            "burn_rates": [
                None if b is None else round(b, 4) for b in self.burn_rates
            ],
            "transitions": self.transitions,
        }


@dataclass(frozen=True)
class ObsAlert:
    """One SLO state transition (fits the AlertLog like a StreamAlert)."""

    time: float
    slo: str
    state: str  # "burning" | "ok"
    burn_rates: "tuple[float | None, ...]"
    message: str
    seq: int

    def to_text(self) -> str:
        return f"t={self.time:.0f}s [slo] {self.slo} -> {self.state}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "slo": self.slo,
            "state": self.state,
            "burn_rates": [
                None if b is None else round(b, 4) for b in self.burn_rates
            ],
            "message": self.message,
            "seq": self.seq,
        }


class SLOTracker:
    """Evaluates SLO definitions against one store, alerting on flips.

    Transitions land in a bounded :class:`AlertLog` (the same
    drop-oldest machinery the stream tier's continuous queries use) and
    fan out to :meth:`on_transition` subscribers.  Each alert carries a
    monotonic ``seq`` so downstream push queues can dedupe exactly-once.
    """

    def __init__(
        self,
        store: "TimeSeriesStore",
        slos: "Iterable[SLODefinition]" = (),
        alert_capacity: int = 256,
    ):
        # Runtime import: streams imports repro.obs for its instruments,
        # so obs.slo must not import streams at module load.
        from repro.streams.queries import AlertLog

        self.store = store
        self._slos: dict[str, SLODefinition] = {}
        self._statuses: dict[str, SLOStatus] = {}
        self.alerts = AlertLog(capacity=alert_capacity)
        self._callbacks: list[Callable[[ObsAlert], None]] = []
        self._seq = 0
        self.evaluations = 0
        for slo in slos:
            self.add(slo)

    def add(self, slo: SLODefinition) -> None:
        if slo.name in self._slos:
            raise ObsError(f"duplicate SLO {slo.name!r}")
        self._slos[slo.name] = slo
        self._statuses[slo.name] = SLOStatus(name=slo.name, objective=slo.objective)

    def on_transition(self, callback: Callable[[ObsAlert], None]) -> None:
        self._callbacks.append(callback)

    @property
    def definitions(self) -> "list[SLODefinition]":
        return list(self._slos.values())

    def status(self, name: str) -> SLOStatus:
        if name not in self._statuses:
            raise ObsError(f"unknown SLO {name!r}")
        return self._statuses[name]

    def statuses(self) -> "list[SLOStatus]":
        return [self._statuses[name] for name in sorted(self._statuses)]

    @property
    def burning(self) -> "list[SLOStatus]":
        return [s for s in self.statuses() if s.burning]

    def evaluate(self, now: float) -> "list[ObsAlert]":
        """Re-evaluate every definition at ``now``; returns transitions.

        A probe returning None for *any* rule window leaves that SLO's
        state unchanged — no data is not evidence of recovery.
        """
        self.evaluations += 1
        transitions: list[ObsAlert] = []
        for name, slo in self._slos.items():
            status = self._statuses[name]
            burns = slo.burn_rates(self.store, now)
            status.burn_rates = tuple(burns)
            if any(b is None for b in burns):
                continue
            burning = all(
                burn >= rule.factor for burn, rule in zip(burns, slo.rules)
            )
            if burning == status.burning:
                continue
            status.burning = burning
            status.since = now
            status.transitions += 1
            self._seq += 1
            worst = status.worst_burn()
            alert = ObsAlert(
                time=now,
                slo=name,
                state=status.state,
                burn_rates=tuple(burns),
                message=(
                    f"burn {worst:.1f}x budget across all windows"
                    if burning
                    else f"burn back under factor (worst {worst:.1f}x)"
                ),
                seq=self._seq,
            )
            self.alerts.append(alert)
            transitions.append(alert)
            for callback in self._callbacks:
                callback(alert)
        return transitions

    def to_dict(self) -> dict:
        return {
            "slos": [s.to_dict() for s in self.statuses()],
            "alerts_total": self.alerts.total,
            "alerts_dropped": self.alerts.dropped,
            "evaluations": self.evaluations,
        }


# ----------------------------------------------------------------------
# SLI probe factories — the three canonical shapes
# ----------------------------------------------------------------------


def availability_sli(
    good: str,
    total: str,
    good_labels: "Mapping[str, str] | None" = None,
    total_labels: "Mapping[str, str] | None" = None,
) -> SLIProbe:
    """good_ratio = Δgood / Δtotal from two counter families.

    With no labels the deltas fold across every label set, so the SLI
    is platform-wide (all instances, all label splits).
    """

    def probe(store: "TimeSeriesStore", t0: float, t1: float) -> "float | None":
        try:
            grew = store.delta(total, labels=total_labels, window=t1 - t0, at=t1)
        except ObsError:
            return None
        if grew <= 0:
            return None  # no traffic in the window: no evidence either way
        try:
            ok = store.delta(good, labels=good_labels, window=t1 - t0, at=t1)
        except ObsError:
            ok = 0.0
        return min(1.0, max(0.0, ok / grew))

    return probe


def latency_sli(
    family: str, threshold: float, **match: str
) -> SLIProbe:
    """good_ratio = fraction of observations <= ``threshold`` seconds.

    Reads the scraped cumulative ``<family>_bucket`` / ``<family>_count``
    deltas; pick a threshold on a bucket edge for an exact ratio
    (between edges the conservative lower bucket counts as good).
    """

    def probe(store: "TimeSeriesStore", t0: float, t1: float) -> "float | None":
        buckets = store.select(f"{family}_bucket", **match)
        if not buckets:
            return None
        # Per label set (le stripped): the cumulative bucket at the
        # largest edge <= threshold counts the fast observations.
        fast_by_set: dict[tuple, tuple[float, float]] = {}  # -> (edge, grew)
        total = 0.0
        for series in buckets:
            le = series.label("le")
            edge = math.inf if le == "+Inf" else float(le)
            clip = series.clipped(t0, t1)
            if len(clip) < 2:
                continue
            grew = float(clip.values[-1] - clip.values[0])
            if not math.isfinite(edge):
                total += grew
            elif edge <= threshold:
                group = tuple(kv for kv in series.labels if kv[0] != "le")
                best = fast_by_set.get(group)
                if best is None or edge > best[0]:
                    fast_by_set[group] = (edge, grew)
        if total <= 0:
            return None
        fast = sum(grew for _, grew in fast_by_set.values())
        return min(1.0, max(0.0, fast / total))

    return probe


def freshness_sli(
    watermark: str, max_age: float, **match: str
) -> SLIProbe:
    """good_ratio = fraction of scrapes where the watermark kept up.

    A sample is *good* when ``scrape_time - watermark <= max_age``.
    Non-finite watermarks (an engine that has never seen a record
    reports ``-inf``) are skipped — silence is not staleness.
    """

    def probe(store: "TimeSeriesStore", t0: float, t1: float) -> "float | None":
        picked = store.select(watermark, **match)
        if not picked:
            return None
        good = 0
        seen = 0
        for series in picked:
            clip = series.clipped(t0, t1)
            for t, value in zip(clip.t, clip.values):
                if not math.isfinite(value):
                    continue
                seen += 1
                if float(t) - float(value) <= max_age:
                    good += 1
        if not seen:
            return None
        return good / seen

    return probe
