"""The metrics registry: labeled counters, gauges, fixed-bucket histograms.

One process-wide :class:`MetricsRegistry` replaces the per-component
counter dataclasses as the *observable* surface of the platform: every
tier registers its instruments here (labeled at least by ``instance``),
the operator dashboard (:func:`repro.apisense.monitoring.snapshot`)
reads it, and :meth:`MetricsRegistry.render_prometheus` exposes the
whole platform in the Prometheus text format — over the serving tier's
``obs`` surface or the ``python -m repro obs dump`` CLI.

Design constraints, in order:

- **cheap when disabled** — every child instrument checks one registry
  flag before touching state, so ``configure(metrics=False)`` turns the
  whole platform's instrumentation into a branch per event;
- **cheap when enabled** — instrument *children* are resolved once at
  wiring time (``family.labels(...)``) and held by the instrumented
  component, so the hot path is an attribute load + int add, never a
  dict lookup by label values;
- **sim-clock aware** — the registry can carry the deployment's
  simulator clock; the exposition then reports ``repro_sim_time_seconds``
  so scrapes are placeable on the simulated axis, and instruments that
  measure *simulated* durations share one clock source.

Wall-clock durations (flush timing, scan timing...) use
``time.perf_counter`` — they measure the reproduction's real hot paths,
which is what the HPRM-style latency decomposition needs.
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, Iterator, Mapping, Sequence

from repro.errors import ObsError

#: Default latency buckets (seconds): 100us .. 10s, roughly log-spaced.
DEFAULT_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    10.0,
)

_KINDS = ("counter", "gauge", "histogram")


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ObsError(f"invalid metric name {name!r}")


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Child:
    """Base of all per-label-set instruments."""

    __slots__ = ("_registry", "labels")

    def __init__(self, registry: "MetricsRegistry", labels: tuple[tuple[str, str], ...]):
        self._registry = registry
        self.labels = labels


class Counter(_Child):
    """A monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self, registry, labels):
        super().__init__(registry, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ObsError(f"counters only go up; inc({amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Child):
    """A value that goes up and down — settable or callback-backed."""

    __slots__ = ("_value", "_fn")

    def __init__(self, registry, labels):
        super().__init__(registry, labels)
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        if self._registry.enabled:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._registry.enabled:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Read the gauge from ``fn`` at observation time (live values
        like queue depths never need explicit ``set`` calls)."""
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram(_Child):
    """Fixed-bucket distribution: cumulative counts + sum + count."""

    __slots__ = ("buckets", "bucket_counts", "_sum", "_count")

    def __init__(self, registry, labels, buckets: Sequence[float]):
        super().__init__(registry, labels)
        self.buckets = tuple(buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +inf tail
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (exact data is gone).

        Returns the upper edge of the bucket holding the q-th
        observation, linearly interpolated inside it; observations past
        the last finite bucket report that bucket's edge.
        """
        if not 0.0 <= q <= 1.0:
            raise ObsError(f"quantile must be in [0, 1]: {q}")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        seen = 0.0
        lower = 0.0
        for edge, in_bucket in zip(self.buckets, self.bucket_counts):
            if seen + in_bucket >= rank and in_bucket:
                fraction = (rank - seen) / in_bucket
                return lower + (edge - lower) * min(1.0, max(0.0, fraction))
            seen += in_bucket
            lower = edge
        return self.buckets[-1] if self.buckets else lower


class _Family:
    """One registered metric: a name, a kind, and its labeled children."""

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        kind: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ):
        self._registry = registry
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = labelnames
        self.buckets = buckets
        self._children: dict[tuple[tuple[str, str], ...], _Child] = {}

    def labels(self, **labels: str) -> Counter | Gauge | Histogram:
        """The child instrument for one label set (created on first use)."""
        if set(labels) != set(self.labelnames):
            raise ObsError(
                f"{self.name} takes labels {self.labelnames}, got {tuple(labels)}"
            )
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            if self.kind == "counter":
                child = Counter(self._registry, key)
            elif self.kind == "gauge":
                child = Gauge(self._registry, key)
            else:
                assert self.buckets is not None
                child = Histogram(self._registry, key, self.buckets)
            self._children[key] = child
            self._registry.version += 1
        return child

    def children(self) -> Iterator[tuple[tuple[tuple[str, str], ...], _Child]]:
        yield from sorted(self._children.items())


class Sample:
    """One exposition row: a fully-expanded series name, labels, value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...], value: float):
        self.name = name
        self.labels = labels
        self.value = value

    @property
    def series(self) -> str:
        """The rendered series identity (``name{label="v",...}``)."""
        return self.name + _render_labels(self.labels)

    def to_dict(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class StageTiming:
    """One row of the hot-path table (``obs top``)."""

    __slots__ = ("stage", "count", "total_seconds", "p50", "p99")

    def __init__(self, stage: str, count: int, total: float, p50: float, p99: float):
        self.stage = stage
        self.count = count
        self.total_seconds = total
        self.p50 = p50
        self.p99 = p99

    @property
    def mean(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def to_text(self) -> str:
        return (
            f"{self.stage:<44} {self.count:>9} calls  "
            f"total {self.total_seconds * 1e3:>9.1f}ms  "
            f"mean {self.mean * 1e6:>8.1f}us  "
            f"p50 {self.p50 * 1e6:>8.1f}us  p99 {self.p99 * 1e6:>9.1f}us"
        )


class MetricsRegistry:
    """Process-wide instrument registry with a text exposition."""

    def __init__(self, enabled: bool = True, clock: Callable[[], float] | None = None):
        self.enabled = enabled
        self._clock = clock
        self._families: dict[str, _Family] = {}
        #: Topology counter: bumped whenever a family or child appears,
        #: so scrapers can cache their flat reader lists and only
        #: rebuild when the set of live series actually changed.
        self.version = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> _Family:
        assert kind in _KINDS
        _validate_name(name)
        names = tuple(labelnames)
        existing = self._families.get(name)
        if existing is not None:
            # Idempotent on purpose: every component instance wires the
            # same families; only a *shape* change is a bug.
            if existing.kind != kind or set(existing.labelnames) != set(names):
                raise ObsError(
                    f"metric {name!r} already registered as {existing.kind}"
                    f"{existing.labelnames}; cannot re-register as {kind}{names}"
                )
            return existing
        family = _Family(
            self,
            name,
            kind,
            help,
            names,
            tuple(buckets) if buckets is not None else None,
        )
        self._families[name] = family
        self.version += 1
        return family

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> _Family:
        return self._register(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> _Family:
        return self._register(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> _Family:
        if not buckets or list(buckets) != sorted(buckets):
            raise ObsError(f"histogram buckets must be sorted and non-empty: {buckets}")
        return self._register(name, "histogram", help, labelnames, buckets)

    def set_clock(self, clock: Callable[[], float] | None) -> None:
        """Bind the deployment's simulator clock (sim-time exposition)."""
        self._clock = clock

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    @property
    def families(self) -> list[str]:
        return sorted(self._families)

    def family(self, name: str) -> _Family:
        if name not in self._families:
            raise ObsError(f"unknown metric {name!r}")
        return self._families[name]

    def value(self, name: str, labels: Mapping[str, str] | None = None) -> float:
        """One counter/gauge child's value; 0.0 when the child never fired."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        key = _label_key(labels or {})
        child = family._children.get(key)
        if child is None:
            return 0.0
        if isinstance(child, Histogram):
            return float(child.count)
        return child.value

    def total(self, name: str, **match: str) -> float:
        """Sum of a family's children whose labels include ``match``."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        want = set(_label_key(match))
        total = 0.0
        for key, child in family._children.items():
            if want <= set(key):
                total += child.count if isinstance(child, Histogram) else child.value
        return total

    def stage_timings(self) -> list[StageTiming]:
        """Every ``*_seconds`` histogram child as a hot-path row, hottest
        (largest total time) first — the ``obs top`` table."""
        rows = []
        for name in self.families:
            family = self._families[name]
            if family.kind != "histogram" or not name.endswith("_seconds"):
                continue
            for key, child in family.children():
                assert isinstance(child, Histogram)
                if not child.count:
                    continue
                rows.append(
                    StageTiming(
                        stage=name + _render_labels(key),
                        count=child.count,
                        total=child.sum,
                        p50=child.quantile(0.50),
                        p99=child.quantile(0.99),
                    )
                )
        rows.sort(key=lambda r: r.total_seconds, reverse=True)
        return rows

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------

    def exposition(self) -> list["Sample"]:
        """Every live series as a structured :class:`Sample` row.

        This is the machine-readable twin of :meth:`render_prometheus`
        (``obs dump --json``, the scraper, the serving tier's ``obs``
        surface all read it): counters and gauges emit one row per
        child, and every histogram family expands to the
        Prometheus-conventional series — cumulative ``<name>_bucket``
        rows per ``le`` edge (``+Inf`` included) **plus** the
        ``<name>_sum`` and ``<name>_count`` rows, so rate/quantile math
        over scrapes never needs the raw bucket layout.
        """
        samples: list[Sample] = []
        if self._clock is not None:
            samples.append(Sample("repro_sim_time_seconds", (), float(self._clock())))
        for name in self.families:
            family = self._families[name]
            for key, child in family.children():
                if isinstance(child, Histogram):
                    cumulative = 0
                    for edge, in_bucket in zip(child.buckets, child.bucket_counts):
                        cumulative += in_bucket
                        samples.append(
                            Sample(
                                f"{name}_bucket",
                                key + (("le", _format(edge)),),
                                float(cumulative),
                            )
                        )
                    cumulative += child.bucket_counts[-1]
                    samples.append(
                        Sample(f"{name}_bucket", key + (("le", "+Inf"),), float(cumulative))
                    )
                    samples.append(Sample(f"{name}_sum", key, float(child.sum)))
                    samples.append(Sample(f"{name}_count", key, float(child.count)))
                else:
                    samples.append(Sample(name, key, float(child.value)))
        return samples

    def render_prometheus(self) -> str:
        """The whole registry in the Prometheus text exposition format."""
        lines: list[str] = []
        if self._clock is not None:
            lines.append("# TYPE repro_sim_time_seconds gauge")
            lines.append(f"repro_sim_time_seconds {_format(self._clock())}")
        for name in self.families:
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key, child in family.children():
                if isinstance(child, Histogram):
                    cumulative = 0
                    for edge, in_bucket in zip(child.buckets, child.bucket_counts):
                        cumulative += in_bucket
                        le = 'le="%s"' % _format(edge)
                        lines.append(
                            f"{name}_bucket{_render_labels(key, le)} {cumulative}"
                        )
                    cumulative += child.bucket_counts[-1]
                    inf = 'le="+Inf"'
                    lines.append(
                        f"{name}_bucket{_render_labels(key, inf)} {cumulative}"
                    )
                    lines.append(f"{name}_sum{_render_labels(key)} {_format(child.sum)}")
                    lines.append(f"{name}_count{_render_labels(key)} {child.count}")
                else:
                    lines.append(f"{name}{_render_labels(key)} {_format(child.value)}")
        return "\n".join(lines) + "\n"


def _format(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
