"""Fixed-point encoding of floats into the Paillier plaintext space."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CryptoError


@dataclass(frozen=True)
class FixedPointCodec:
    """Encodes signed floats as scaled integers.

    Sensor readings are floats (dB, degrees, m/s); Paillier works on
    integers.  The codec multiplies by ``10**decimals`` and rounds.  Sums
    of encoded values decode with :meth:`decode_sum` (same scale), and the
    mean of ``k`` readings is ``decode_sum(total) / k``.
    """

    decimals: int = 3

    def __post_init__(self) -> None:
        if self.decimals < 0:
            raise CryptoError(f"decimals must be >= 0: {self.decimals}")

    @property
    def scale(self) -> int:
        return 10**self.decimals

    def encode(self, value: float) -> int:
        """Float -> scaled integer (round half away from zero avoided by
        banker's rounding, which is unbiased across a population)."""
        return round(value * self.scale)

    def decode(self, encoded: int) -> float:
        """Scaled integer -> float."""
        return encoded / self.scale

    def decode_sum(self, encoded_sum: int) -> float:
        """Decode a homomorphic *sum* of encoded values (same scale)."""
        return encoded_sum / self.scale

    def decode_mean(self, encoded_sum: int, count: int) -> float:
        """Decode a homomorphic sum into the mean of ``count`` readings."""
        if count <= 0:
            raise CryptoError(f"count must be positive: {count}")
        return encoded_sum / (self.scale * count)
