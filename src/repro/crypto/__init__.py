"""Secure aggregation substrate.

Crowd-sensing campaigns often only need *aggregates* (mean network
quality per cell, histogram of noise levels...).  This package lets the
platform compute those without the Hive ever seeing individual readings:

- :mod:`repro.crypto.primes` / :mod:`repro.crypto.paillier` — a
  from-scratch Paillier cryptosystem (the offline stand-in for the ``phe``
  library);
- :mod:`repro.crypto.encoding` — fixed-point encoding of signed floats
  into the Paillier plaintext space;
- :mod:`repro.crypto.secure_sum` — the aggregator-oblivious sum / mean /
  histogram protocol;
- :mod:`repro.crypto.masking` — a Paillier-free alternative based on
  pairwise additive masks, for devices too weak for public-key crypto.
"""

from repro.crypto.paillier import (
    PaillierCiphertext,
    PaillierKeyPair,
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
)
from repro.crypto.encoding import FixedPointCodec
from repro.crypto.secure_sum import (
    AggregationQuery,
    DeviceContributor,
    ObliviousAggregator,
    QueryCoordinator,
)
from repro.crypto.masking import MaskedAggregation, MaskingParticipant
from repro.crypto.shamir import Share, reconstruct_secret, split_secret
from repro.crypto.resilient_masking import (
    MaskingDealer,
    ResilientAggregation,
    ResilientParticipant,
)

__all__ = [
    "Share",
    "split_secret",
    "reconstruct_secret",
    "MaskingDealer",
    "ResilientAggregation",
    "ResilientParticipant",
    "PaillierCiphertext",
    "PaillierKeyPair",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "generate_keypair",
    "FixedPointCodec",
    "AggregationQuery",
    "DeviceContributor",
    "ObliviousAggregator",
    "QueryCoordinator",
    "MaskedAggregation",
    "MaskingParticipant",
]
