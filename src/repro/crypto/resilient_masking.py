"""Dropout-resilient additive masking (Bonawitz-style, simplified).

The plain masking protocol (:mod:`repro.crypto.masking`) fails if any
participant drops: its pairwise masks never cancel.  This variant adds
the recovery machinery of practical secure aggregation:

1. **Setup** — a dealer draws a fresh random seed for every participant
   pair, hands each participant its own seeds, and Shamir-shares every
   seed among *all* participants with threshold ``k``.
2. **Round** — participants submit fixed-point-encoded values blinded by
   all their pairwise masks (identical to the plain protocol).
3. **Recovery** — for each participant that dropped *before submitting*,
   the aggregator collects >= ``k`` seed shares from survivors,
   reconstructs the dropped participant's pairwise seeds with the
   survivors, recomputes the dangling masks and cancels them from the
   masked sum.

Semi-honest model; the dealer is trusted at setup only (in deployments
it is replaced by pairwise Diffie-Hellman, which does not change the
recovery logic benchmarked here).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.crypto.encoding import FixedPointCodec
from repro.crypto.masking import MODULUS
from repro.crypto.shamir import Share, reconstruct_secret, split_secret
from repro.errors import ProtocolError


def _mask_from_seed(seed: int, round_id: int) -> int:
    digest = hashlib.sha256(
        seed.to_bytes(16, "big") + round_id.to_bytes(8, "big")
    ).digest()
    return int.from_bytes(digest[:16], "big") % MODULUS


def _pair_key(i: int, j: int) -> tuple[int, int]:
    return (i, j) if i < j else (j, i)


@dataclass
class ResilientParticipant:
    """One device: holds its pairwise seeds and everyone's seed shares."""

    index: int
    n_participants: int
    codec: FixedPointCodec = field(default_factory=FixedPointCodec)
    #: pair -> seed, for pairs involving this participant.
    _seeds: dict[tuple[int, int], int] = field(default_factory=dict)
    #: pair -> this participant's Shamir share of that pair's seed.
    _shares: dict[tuple[int, int], Share] = field(default_factory=dict)

    def masked_value(self, value: float, round_id: int = 0) -> int:
        """Submit: the encoded value blinded by all pairwise masks."""
        total = self.codec.encode(value) % MODULUS
        for other in range(self.n_participants):
            if other == self.index:
                continue
            seed = self._seeds[_pair_key(self.index, other)]
            mask = _mask_from_seed(seed, round_id)
            if self.index < other:
                total = (total + mask) % MODULUS
            else:
                total = (total - mask) % MODULUS
        return total

    def reveal_share(self, pair: tuple[int, int]) -> Share:
        """Hand the aggregator this participant's share of a pair seed.

        Only meaningful during recovery of a *dropped* participant; an
        honest participant refuses to reveal shares for pairs between two
        live parties (the aggregator could unmask them otherwise).
        """
        if pair not in self._shares:
            raise ProtocolError(f"participant {self.index} has no share for {pair}")
        return self._shares[pair]


class MaskingDealer:
    """Trusted setup: deals pairwise seeds and their Shamir shares."""

    def __init__(
        self,
        n_participants: int,
        threshold: int,
        rng: random.Random | None = None,
        codec: FixedPointCodec | None = None,
    ):
        if n_participants < 2:
            raise ProtocolError("need at least two participants")
        if not (1 <= threshold <= n_participants):
            raise ProtocolError(
                f"threshold {threshold} out of range for {n_participants} participants"
            )
        self.n_participants = n_participants
        self.threshold = threshold
        self._rng = rng or random.SystemRandom()
        self._codec = codec or FixedPointCodec()

    def deal(self) -> list[ResilientParticipant]:
        """Create all participants with seeds and shares distributed."""
        participants = [
            ResilientParticipant(
                index=index,
                n_participants=self.n_participants,
                codec=self._codec,
            )
            for index in range(self.n_participants)
        ]
        for i in range(self.n_participants):
            for j in range(i + 1, self.n_participants):
                seed = self._rng.getrandbits(100)
                participants[i]._seeds[(i, j)] = seed
                participants[j]._seeds[(i, j)] = seed
                shares = split_secret(
                    seed, self.n_participants, self.threshold, self._rng
                )
                for participant, share in zip(participants, shares):
                    participant._shares[(i, j)] = share
        return participants


class ResilientAggregation:
    """One aggregation round that survives participant dropout."""

    def __init__(
        self,
        n_participants: int,
        threshold: int,
        codec: FixedPointCodec | None = None,
        round_id: int = 0,
    ):
        self.n_participants = n_participants
        self.threshold = threshold
        self.codec = codec or FixedPointCodec()
        self.round_id = round_id
        self._total = 0
        self._submitted: set[int] = set()

    def accept(self, index: int, masked: int) -> None:
        """Record participant ``index``'s masked submission."""
        if index in self._submitted:
            raise ProtocolError(f"participant {index} already submitted")
        if not (0 <= index < self.n_participants):
            raise ProtocolError(f"unknown participant index {index}")
        self._total = (self._total + masked) % MODULUS
        self._submitted.add(index)

    @property
    def dropped(self) -> list[int]:
        return [
            index
            for index in range(self.n_participants)
            if index not in self._submitted
        ]

    def recover_and_sum(
        self, survivors: dict[int, ResilientParticipant]
    ) -> float:
        """Cancel dangling masks of dropped participants, decode the sum.

        ``survivors`` maps indices to the participants still reachable;
        at least ``threshold`` of them are needed per dropped pair seed.
        """
        missing = self.dropped
        if any(index in self._submitted for index in survivors):
            pass  # survivors are exactly those who submitted & answer
        for dropped_index in missing:
            for live_index in self._submitted:
                pair = _pair_key(dropped_index, live_index)
                seed = self._reconstruct_seed(pair, survivors)
                mask = _mask_from_seed(seed, self.round_id)
                # The live participant applied this mask expecting the
                # dropped one to cancel it; undo the live side's sign.
                i, j = pair
                if live_index == i:  # live added the mask
                    self._total = (self._total - mask) % MODULUS
                else:  # live subtracted the mask
                    self._total = (self._total + mask) % MODULUS
        total = self._total
        if total > MODULUS // 2:
            total -= MODULUS
        return self.codec.decode_sum(total)

    def _reconstruct_seed(
        self, pair: tuple[int, int], survivors: dict[int, ResilientParticipant]
    ) -> int:
        shares = []
        for participant in survivors.values():
            try:
                shares.append(participant.reveal_share(pair))
            except ProtocolError:
                continue
            if len(shares) == self.threshold:
                break
        if len(shares) < self.threshold:
            raise ProtocolError(
                f"only {len(shares)} shares available for pair {pair}; "
                f"threshold is {self.threshold}"
            )
        return reconstruct_secret(shares)
