"""The Paillier additively-homomorphic cryptosystem, from scratch.

Implements the classic scheme (Paillier, EUROCRYPT'99) with the standard
``g = n + 1`` optimisation:

- ``Enc(m, r) = (1 + m*n) * r^n  mod n^2``
- ``Dec(c)    = L(c^lambda mod n^2) * mu  mod n`` where ``L(x) = (x-1)/n``
- ``Enc(a) * Enc(b) = Enc(a + b)`` and ``Enc(a)^k = Enc(a*k)``

The homomorphic sum is what makes the crowd-sensing aggregation protocol
(:mod:`repro.crypto.secure_sum`) possible: the Hive multiplies ciphertexts
it cannot read, and only the query owner decrypts the total.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.primes import random_coprime, random_prime
from repro.errors import CryptoError


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public key: the modulus ``n`` (``g = n + 1`` is implicit)."""

    n: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def max_plaintext(self) -> int:
        """Largest representable non-negative plaintext (inclusive).

        Plaintexts live in Z_n; we reserve the upper half for negative
        values (two's-complement-style), so user data must fit in
        ``[-(n//3), n//3]`` to leave headroom for homomorphic sums.
        """
        return self.n // 3

    def encrypt(
        self, plaintext: int, rng: random.Random | None = None
    ) -> "PaillierCiphertext":
        """Encrypt a signed integer plaintext.

        Negative values are mapped to ``n + m``; :meth:`PaillierPrivateKey.
        decrypt` maps them back.  ``rng`` makes encryption deterministic
        for tests; by default a fresh system RNG is used.
        """
        n = self.n
        if abs(plaintext) > self.max_plaintext:
            raise CryptoError(
                f"plaintext {plaintext} exceeds +/-{self.max_plaintext}"
            )
        m = plaintext % n
        rng = rng or random.SystemRandom()
        r = random_coprime(n, rng)
        n_sq = self.n_squared
        c = ((1 + m * n) % n_sq) * pow(r, n, n_sq) % n_sq
        return PaillierCiphertext(public_key=self, value=c)

    def encrypt_zero(self, rng: random.Random | None = None) -> "PaillierCiphertext":
        """A fresh encryption of zero (used for re-randomization)."""
        return self.encrypt(0, rng)


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Private key: Carmichael ``lambda`` and precomputed ``mu``."""

    public_key: PaillierPublicKey
    lam: int
    mu: int

    def decrypt(self, ciphertext: "PaillierCiphertext") -> int:
        """Decrypt to a signed integer."""
        if ciphertext.public_key.n != self.public_key.n:
            raise CryptoError("ciphertext was encrypted under a different key")
        n = self.public_key.n
        n_sq = self.public_key.n_squared
        x = pow(ciphertext.value, self.lam, n_sq)
        plaintext = ((x - 1) // n) * self.mu % n
        if plaintext > n // 2:
            plaintext -= n
        return plaintext


@dataclass(frozen=True)
class PaillierKeyPair:
    """A public/private key pair."""

    public_key: PaillierPublicKey
    private_key: PaillierPrivateKey


@dataclass(frozen=True)
class PaillierCiphertext:
    """An encrypted integer supporting the additive homomorphism.

    ``+`` combines two ciphertexts (or a ciphertext and a plaintext int);
    ``*`` scales by a plaintext int.  Both return new ciphertexts.
    """

    public_key: PaillierPublicKey
    value: int

    def __add__(self, other: "PaillierCiphertext | int") -> "PaillierCiphertext":
        n_sq = self.public_key.n_squared
        if isinstance(other, PaillierCiphertext):
            if other.public_key.n != self.public_key.n:
                raise CryptoError("cannot add ciphertexts under different keys")
            return PaillierCiphertext(self.public_key, self.value * other.value % n_sq)
        if isinstance(other, int):
            n = self.public_key.n
            # Enc(m) * g^k = Enc(m + k); g^k = (1 + k*n) mod n^2.
            factor = (1 + (other % n) * n) % n_sq
            return PaillierCiphertext(self.public_key, self.value * factor % n_sq)
        return NotImplemented

    __radd__ = __add__

    def __mul__(self, scalar: int) -> "PaillierCiphertext":
        if not isinstance(scalar, int):
            return NotImplemented
        n = self.public_key.n
        return PaillierCiphertext(
            self.public_key,
            pow(self.value, scalar % n, self.public_key.n_squared),
        )

    __rmul__ = __mul__

    def __neg__(self) -> "PaillierCiphertext":
        return self * -1

    def __sub__(self, other: "PaillierCiphertext | int") -> "PaillierCiphertext":
        if isinstance(other, PaillierCiphertext):
            return self + (-other)
        if isinstance(other, int):
            return self + (-other)
        return NotImplemented

    def rerandomized(self, rng: random.Random | None = None) -> "PaillierCiphertext":
        """Same plaintext, fresh randomness (unlinkable ciphertext)."""
        return self + self.public_key.encrypt_zero(rng)


def generate_keypair(bits: int = 1024, rng: random.Random | None = None) -> PaillierKeyPair:
    """Generate a Paillier key pair with an ``bits``-bit modulus.

    ``bits`` >= 2048 is the modern recommendation; tests and benchmarks
    use smaller keys (256-1024) to stay fast, which changes performance
    but not behaviour.  Pass a seeded ``random.Random`` for reproducible
    keys (tests only — never in production).
    """
    if bits < 64:
        raise CryptoError(f"modulus of {bits} bits is too small to function")
    rng = rng or random.SystemRandom()
    half = bits // 2
    while True:
        p = random_prime(half, rng)
        q = random_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() == bits:
            break
    lam = (p - 1) * (q - 1) // _gcd(p - 1, q - 1)  # lcm(p-1, q-1)
    n_sq = n * n
    public = PaillierPublicKey(n=n)
    # mu = (L(g^lambda mod n^2))^-1 mod n; with g = n+1, L(g^lam) = lam mod n.
    x = pow(n + 1, lam, n_sq)
    l_value = (x - 1) // n
    mu = pow(l_value, -1, n)
    private = PaillierPrivateKey(public_key=public, lam=lam, mu=mu)
    return PaillierKeyPair(public_key=public, private_key=private)


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
