"""Shamir secret sharing over a prime field.

Substrate for dropout-resilient secure aggregation
(:mod:`repro.crypto.resilient_masking`): pairwise mask seeds are shared
with threshold ``k`` so that any ``k`` surviving participants can help
the aggregator cancel the masks of a dropped one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import CryptoError

#: The field prime: 2^127 - 1 (a Mersenne prime), comfortably above the
#: 100-bit seeds shared through it.
PRIME: int = (1 << 127) - 1


@dataclass(frozen=True)
class Share:
    """One point (x, y) of the sharing polynomial."""

    x: int
    y: int


def split_secret(
    secret: int,
    n_shares: int,
    threshold: int,
    rng: random.Random,
    prime: int = PRIME,
) -> list[Share]:
    """Split ``secret`` into ``n_shares`` with reconstruction threshold.

    Any ``threshold`` shares reconstruct the secret; fewer reveal nothing
    (information-theoretically).
    """
    if not (0 <= secret < prime):
        raise CryptoError(f"secret must be in [0, {prime}): got {secret}")
    if threshold < 1 or threshold > n_shares:
        raise CryptoError(
            f"threshold {threshold} must be in [1, n_shares={n_shares}]"
        )
    # Polynomial of degree threshold-1 with constant term = secret.
    coefficients = [secret] + [rng.randrange(prime) for _ in range(threshold - 1)]
    shares = []
    for x in range(1, n_shares + 1):
        y = 0
        for coefficient in reversed(coefficients):  # Horner
            y = (y * x + coefficient) % prime
        shares.append(Share(x=x, y=y))
    return shares


def reconstruct_secret(shares: list[Share], prime: int = PRIME) -> int:
    """Lagrange interpolation at x = 0.

    Works with any subset of size >= threshold; with fewer shares the
    result is simply wrong (Shamir gives no integrity), so callers must
    track the threshold themselves.
    """
    if not shares:
        raise CryptoError("cannot reconstruct from zero shares")
    xs = [share.x for share in shares]
    if len(set(xs)) != len(xs):
        raise CryptoError("duplicate share x-coordinates")
    secret = 0
    for i, share_i in enumerate(shares):
        numerator = 1
        denominator = 1
        for j, share_j in enumerate(shares):
            if i == j:
                continue
            numerator = numerator * (-share_j.x) % prime
            denominator = denominator * (share_i.x - share_j.x) % prime
        lagrange = numerator * pow(denominator, -1, prime) % prime
        secret = (secret + share_i.y * lagrange) % prime
    return secret
