"""Aggregator-oblivious sum / mean / histogram protocol.

Three roles, matching the platform architecture:

- :class:`QueryCoordinator` (Honeycomb side): owns the Paillier key pair,
  opens an :class:`AggregationQuery`, and is the only party able to
  decrypt — and only the *aggregate*.
- :class:`DeviceContributor` (mobile side): encrypts one reading (or a
  one-hot histogram vector) under the coordinator's public key.
- :class:`ObliviousAggregator` (Hive side): accumulates ciphertexts with
  the homomorphic sum.  It routes and aggregates without learning any
  individual value, which removes the platform operator from the trust
  boundary — the practical deployment concern of the paper's title.

The protocol is semi-honest: parties follow the messages but may try to
read what passes through them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.crypto.encoding import FixedPointCodec
from repro.crypto.paillier import (
    PaillierCiphertext,
    PaillierKeyPair,
    PaillierPublicKey,
    generate_keypair,
)
from repro.errors import ProtocolError


@dataclass(frozen=True)
class AggregationQuery:
    """A published aggregation request.

    ``bins`` is None for scalar sum/mean queries; for histogram queries
    it is the list of bin labels devices one-hot encode into.
    """

    query_id: str
    public_key: PaillierPublicKey
    codec: FixedPointCodec
    bins: tuple[str, ...] | None = None

    @property
    def is_histogram(self) -> bool:
        return self.bins is not None


@dataclass(frozen=True)
class Contribution:
    """One device's encrypted contribution to a query."""

    query_id: str
    ciphertexts: tuple[PaillierCiphertext, ...]


class QueryCoordinator:
    """The query owner: generates keys, opens queries, decrypts results."""

    def __init__(self, key_bits: int = 512, rng: random.Random | None = None):
        self._rng = rng or random.SystemRandom()
        self._keys: PaillierKeyPair = generate_keypair(key_bits, self._rng)
        self._queries: dict[str, AggregationQuery] = {}

    def open_query(
        self,
        query_id: str,
        codec: FixedPointCodec | None = None,
        bins: list[str] | None = None,
    ) -> AggregationQuery:
        """Open a new aggregation query and return its public description."""
        if query_id in self._queries:
            raise ProtocolError(f"query {query_id!r} already open")
        query = AggregationQuery(
            query_id=query_id,
            public_key=self._keys.public_key,
            codec=codec or FixedPointCodec(),
            bins=tuple(bins) if bins is not None else None,
        )
        self._queries[query_id] = query
        return query

    def decrypt_sum(self, query: AggregationQuery, total: PaillierCiphertext) -> float:
        """Decrypt a scalar aggregate into the sum of readings."""
        if query.is_histogram:
            raise ProtocolError("use decrypt_histogram for histogram queries")
        return query.codec.decode_sum(self._keys.private_key.decrypt(total))

    def decrypt_mean(
        self, query: AggregationQuery, total: PaillierCiphertext, count: int
    ) -> float:
        """Decrypt a scalar aggregate into the mean of ``count`` readings."""
        if query.is_histogram:
            raise ProtocolError("use decrypt_histogram for histogram queries")
        return query.codec.decode_mean(self._keys.private_key.decrypt(total), count)

    def decrypt_histogram(
        self, query: AggregationQuery, totals: tuple[PaillierCiphertext, ...]
    ) -> dict[str, int]:
        """Decrypt a histogram aggregate into per-bin counts."""
        if not query.is_histogram:
            raise ProtocolError("scalar query decrypted as histogram")
        assert query.bins is not None
        if len(totals) != len(query.bins):
            raise ProtocolError(
                f"expected {len(query.bins)} bins, got {len(totals)} ciphertexts"
            )
        return {
            label: self._keys.private_key.decrypt(ciphertext)
            for label, ciphertext in zip(query.bins, totals)
        }


class DeviceContributor:
    """A device-side helper that encrypts readings for a query."""

    def __init__(self, rng: random.Random | None = None):
        self._rng = rng or random.SystemRandom()

    def contribute_value(self, query: AggregationQuery, value: float) -> Contribution:
        """Encrypt one scalar reading."""
        if query.is_histogram:
            raise ProtocolError("scalar contribution to a histogram query")
        encoded = query.codec.encode(value)
        return Contribution(
            query_id=query.query_id,
            ciphertexts=(query.public_key.encrypt(encoded, self._rng),),
        )

    def contribute_category(self, query: AggregationQuery, category: str) -> Contribution:
        """Encrypt a one-hot vector for a histogram query.

        Every bin gets a ciphertext (of 0 or 1), so the aggregator cannot
        tell which bin the device voted for.
        """
        if not query.is_histogram:
            raise ProtocolError("histogram contribution to a scalar query")
        assert query.bins is not None
        if category not in query.bins:
            raise ProtocolError(f"unknown bin {category!r}; expected {query.bins}")
        ciphertexts = tuple(
            query.public_key.encrypt(1 if label == category else 0, self._rng)
            for label in query.bins
        )
        return Contribution(query_id=query.query_id, ciphertexts=ciphertexts)


@dataclass
class ObliviousAggregator:
    """The untrusted middle party: accumulates what it cannot read."""

    query: AggregationQuery
    _totals: list[PaillierCiphertext] | None = field(default=None, init=False)
    _count: int = field(default=0, init=False)

    @property
    def count(self) -> int:
        """Number of contributions accumulated so far."""
        return self._count

    def accept(self, contribution: Contribution) -> None:
        """Fold one contribution into the running encrypted totals."""
        if contribution.query_id != self.query.query_id:
            raise ProtocolError(
                f"contribution for query {contribution.query_id!r} routed to "
                f"aggregator of {self.query.query_id!r}"
            )
        width = len(self.query.bins) if self.query.is_histogram else 1
        if len(contribution.ciphertexts) != width:
            raise ProtocolError(
                f"expected {width} ciphertexts, got {len(contribution.ciphertexts)}"
            )
        if self._totals is None:
            self._totals = list(contribution.ciphertexts)
        else:
            self._totals = [
                total + ciphertext
                for total, ciphertext in zip(self._totals, contribution.ciphertexts)
            ]
        self._count += 1

    def encrypted_result(self) -> tuple[PaillierCiphertext, ...]:
        """The encrypted aggregate, for shipping to the coordinator."""
        if self._totals is None:
            raise ProtocolError("no contributions accumulated")
        return tuple(self._totals)

    def scalar_result(self) -> PaillierCiphertext:
        """Convenience accessor for scalar queries."""
        if self.query.is_histogram:
            raise ProtocolError("scalar_result on a histogram aggregator")
        return self.encrypted_result()[0]
