"""Probabilistic prime generation for Paillier key material."""

from __future__ import annotations

import random

from repro.errors import CryptoError

#: Small primes for cheap trial division before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
]


def is_probable_prime(n: int, rounds: int = 40, rng: random.Random | None = None) -> bool:
    """Miller-Rabin primality test with ``rounds`` random witnesses.

    The error probability is at most 4^-rounds; 40 rounds is the
    conventional "cryptographically negligible" setting.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or random.Random()
    # write n - 1 = d * 2^s with d odd
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def random_prime(bits: int, rng: random.Random) -> int:
    """A random prime of exactly ``bits`` bits.

    Deterministic given ``rng``'s state, which keeps key generation
    reproducible in tests and benchmarks.
    """
    if bits < 8:
        raise CryptoError(f"refusing to generate a {bits}-bit prime (< 8 bits)")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # exact bit length, odd
        if is_probable_prime(candidate, rng=rng):
            return candidate


def random_coprime(n: int, rng: random.Random) -> int:
    """A uniform element of Z_n* (invertible mod n)."""
    import math

    while True:
        candidate = rng.randrange(1, n)
        if math.gcd(candidate, n) == 1:
            return candidate
