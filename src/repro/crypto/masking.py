"""Pairwise additive-masking aggregation (Paillier-free alternative).

Each pair of participants (i, j) derives a shared mask stream from a
pairwise seed; participant ``i`` *adds* the mask and ``j`` *subtracts* it,
so every mask cancels in the sum.  The aggregator sees only uniformly
masked values.  This is the classic construction behind practical secure
aggregation (e.g. Bonawitz et al., CCS'17) stripped of the dropout
recovery machinery: the ablation benchmark (E8) compares its cost against
Paillier to show why a deployment might pick either.

Arithmetic is in Z_MODULUS with fixed-point encoding, matching the
Paillier pipeline so results are directly comparable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.encoding import FixedPointCodec
from repro.errors import ProtocolError

#: All masked arithmetic happens modulo this 128-bit prime-free power of
#: two; large enough that realistic sums never wrap.
MODULUS = 1 << 128


def _pairwise_mask(seed: bytes, i: int, j: int, round_id: int) -> int:
    """Deterministic mask shared by participants ``i < j`` for a round."""
    material = seed + i.to_bytes(4, "big") + j.to_bytes(4, "big") + round_id.to_bytes(8, "big")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:16], "big") % MODULUS


@dataclass(frozen=True)
class MaskingParticipant:
    """One device in the masking protocol.

    ``index`` identifies the participant among ``n_participants``;
    ``group_seed`` is the secret shared by the group (distributed out of
    band — e.g. during task enrolment).
    """

    index: int
    n_participants: int
    group_seed: bytes
    codec: FixedPointCodec = FixedPointCodec()

    def __post_init__(self) -> None:
        if not (0 <= self.index < self.n_participants):
            raise ProtocolError(
                f"index {self.index} out of range for {self.n_participants} participants"
            )
        if self.n_participants < 2:
            raise ProtocolError("masking needs at least two participants")

    def masked_value(self, value: float, round_id: int = 0) -> int:
        """The reading, fixed-point encoded and blinded with all pairwise
        masks for this round."""
        total = self.codec.encode(value) % MODULUS
        for other in range(self.n_participants):
            if other == self.index:
                continue
            i, j = min(self.index, other), max(self.index, other)
            mask = _pairwise_mask(self.group_seed, i, j, round_id)
            if self.index == i:
                total = (total + mask) % MODULUS
            else:
                total = (total - mask) % MODULUS
        return total


class MaskedAggregation:
    """Aggregator for one round of the masking protocol.

    All ``n_participants`` must report for the masks to cancel; a missing
    participant leaves its masks dangling and the decoded total garbage.
    (Dropout-resilient variants exist; see module docstring.)
    """

    def __init__(self, n_participants: int, codec: FixedPointCodec | None = None):
        if n_participants < 2:
            raise ProtocolError("masking needs at least two participants")
        self.n_participants = n_participants
        self.codec = codec or FixedPointCodec()
        self._total = 0
        self._received = 0

    def accept(self, masked: int) -> None:
        if self._received >= self.n_participants:
            raise ProtocolError("all participants already reported")
        self._total = (self._total + masked) % MODULUS
        self._received += 1

    def result_sum(self) -> float:
        """Decode the sum once every participant has reported."""
        if self._received != self.n_participants:
            raise ProtocolError(
                f"only {self._received}/{self.n_participants} participants "
                "reported; masks do not cancel"
            )
        total = self._total
        if total > MODULUS // 2:  # negative sums wrap around
            total -= MODULUS
        return self.codec.decode_sum(total)

    def result_mean(self) -> float:
        """Decode the mean once every participant has reported."""
        return self.result_sum() / self.n_participants
