#!/usr/bin/env python
"""The v2 Sensing Script API end to end: triggers + adaptive sampling.

An environment-quality experiment written as an event-driven script
against the paper's scripting facade, exercising three trigger kinds —
periodic timers, geofence enter/exit, and a battery threshold — plus
adaptive re-scheduling: when a device's battery drops below 40% the
script backs its own sampling timer off 4x, and restores the base rate
when the battery recovers (night charging re-arms the trigger).

The collected records flow through the full platform: device dispatcher
-> store-and-forward uplink -> Hive ingest pipeline -> columnar
DatasetStore -> Honeycomb datasets and hooks.

The module doubles as a CLI task spec::

    python -m repro task describe --spec examples/adaptive_scripting.py
    python -m repro task vet      --spec examples/adaptive_scripting.py

Run:  python examples/adaptive_scripting.py
"""

from repro.apisense import (
    BatteryModel,
    Campaign,
    CampaignConfig,
    SensingTask,
    TaskScript,
    WinWinIncentive,
)
from repro.geo.bbox import BoundingBox
from repro.mobility import GeneratorConfig, MobilityGenerator
from repro.units import DAY

#: Downtown Bordeaux: the geofence the script watches.
DOWNTOWN = BoundingBox(south=44.82, west=-0.60, north=44.85, east=-0.56)

BASE_PERIOD = 300.0
BACKOFF_FACTOR = 4.0
LOW_BATTERY = 0.4


class AdaptiveEnvironmentScript(TaskScript):
    """Sample network quality, densify downtown, back off on low battery."""

    def __init__(self):
        self.timer = None
        self.backoffs = 0
        self.geofence_events = 0

    def setup(self, ctx):
        self.timer = ctx.every(BASE_PERIOD, self.sample)
        ctx.on_battery_below(LOW_BATTERY, self.back_off)
        ctx.on_region_enter(DOWNTOWN, self.entered_downtown)
        ctx.on_region_exit(DOWNTOWN, self.left_downtown)

    def sample(self, ctx):
        # Restore the base rate once the battery has recovered (the
        # battery trigger re-arms above the threshold at the same time).
        if self.timer.period != BASE_PERIOD and ctx.battery.level >= LOW_BATTERY:
            self.timer.reschedule(BASE_PERIOD)
        ctx.save(
            {
                "gps": ctx.location.current,
                "network": ctx.network.rssi,
                "battery": ctx.battery.level,
            }
        )

    def back_off(self, ctx):
        self.backoffs += 1
        self.timer.reschedule(BASE_PERIOD * BACKOFF_FACTOR)

    def entered_downtown(self, ctx):
        self.geofence_events += 1
        ctx.save({"gps": ctx.event.value, "event": "enter-downtown"})

    def left_downtown(self, ctx):
        self.geofence_events += 1
        ctx.save({"gps": ctx.event.value, "event": "exit-downtown"})


def build_task() -> SensingTask:
    """The task spec (also what ``python -m repro task vet`` loads)."""
    return (
        SensingTask.builder("adaptive-env")
        .sensors("gps", "network", "battery")
        .every(BASE_PERIOD)
        .upload_every(1800.0)
        .until(3 * DAY)
        # A class, not an instance: every device instantiates its own
        # script, so per-device state (the timer handle) never collides.
        .script(AdaptiveEnvironmentScript)
        .build()
    )


def main() -> None:
    population = MobilityGenerator(
        GeneratorConfig(n_users=15, n_days=3, sampling_period=120.0)
    ).generate(seed=11)

    campaign = Campaign(
        population,
        incentive=WinWinIncentive(),
        # Heavy-use phones: full at dawn, below the script's 40%
        # threshold by late afternoon, recharged overnight — so the
        # back-off / restore cycle runs daily on every device.
        config=CampaignConfig(
            n_days=3,
            seed=4,
            battery_model=BatteryModel(baseline_drain_per_hour=0.06),
        ),
    )
    task = build_task()
    honeycomb = campaign.deploy(task)
    report = campaign.run()

    print(
        f"campaign: {report.total_records} records from {report.n_devices} devices "
        f"(acceptance {report.acceptance_rate_per_task[task.name]:.0%})"
    )

    # What the adaptive scripts did, device by device.
    backoffs = geofence_events = 0
    for device in campaign.devices:
        if task.name not in device.stats:
            continue
        try:
            dispatcher = device.dispatcher(task.name)
        except Exception:
            continue  # task already wound down on this device
        for stats in dispatcher.handler_stats:
            if stats.kind == "battery_below":
                backoffs += stats.fires
            elif stats.kind in ("region_enter", "region_exit"):
                geofence_events += stats.fires
    print(f"adaptive back-offs across the fleet: {backoffs}")
    print(f"geofence enter/exit events: {geofence_events}")

    # The same data, server side: pipeline -> columnar store -> Honeycomb.
    store_stats = campaign.hive.store.stats()
    print(
        f"store: {store_stats.records} records in {store_stats.segments} segments "
        f"/ {store_stats.n_shards} shards"
    )
    aggregate = honeycomb.aggregate(task.name)
    if aggregate is not None:
        print(f"streaming aggregate: {aggregate.records} records")
    downtown_view = honeycomb.dataset_view(
        task.name, bbox=(DOWNTOWN.south, DOWNTOWN.west, DOWNTOWN.north, DOWNTOWN.east)
    )
    print(f"downtown scan: {len(downtown_view)} records inside the geofence")
    print(f"honeycomb datasets: {honeycomb.n_records(task.name)} records")


if __name__ == "__main__":
    main()
