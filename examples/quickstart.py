#!/usr/bin/env python
"""Quickstart: generate mobility data and publish it through PRIVAPI.

This is the 60-second tour: synthesize a small crowd-sensing dataset,
ask PRIVAPI to publish it with a privacy floor and a utility objective,
and read the audit report explaining which anonymization strategy it
picked and why.

Run:  python examples/quickstart.py
"""

from repro import (
    CrowdedPlacesObjective,
    GeneratorConfig,
    MobilityGenerator,
    PrivacyRequirement,
    PrivApi,
)


def main() -> None:
    # 1. A synthetic population: 15 users, one week, 2-minute GPS period.
    print("Generating population (15 users x 7 days)...")
    population = MobilityGenerator(
        GeneratorConfig(n_users=15, n_days=7, sampling_period=120.0)
    ).generate(seed=42)
    dataset = population.dataset
    print(f"  {len(dataset)} users, {dataset.n_records} GPS records\n")

    # 2. Publish with PRIVAPI: hide at least 80 % of sensitive places,
    #    maximise crowded-places utility among compliant mechanisms.
    privapi = PrivApi(seed=7)
    result = privapi.publish(
        dataset,
        requirement=PrivacyRequirement(max_poi_recall=0.2),
        objective=CrowdedPlacesObjective(),
    )

    # 3. The audit report: every candidate mechanism, attacked and scored.
    print(result.report.to_text())

    # 4. The publishable artefact.
    assert result.dataset is not None
    print(
        f"\npublished dataset: {len(result.dataset)} pseudonymous users, "
        f"{result.dataset.n_records} records"
    )
    print("pseudonym mapping stays with the platform (never released).")


if __name__ == "__main__":
    main()
