#!/usr/bin/env python
"""Privacy study: mechanisms x attacks, the paper's Section 3 in one table.

Sweeps every registered mechanism against the POI-retrieval and
re-identification attacks and the two utility objectives, printing the
trade-off table that motivates PRIVAPI's thesis: no mechanism dominates,
and only speed smoothing hides POIs while keeping spatial analyses alive.

Run:  python examples/privacy_study.py
"""

from repro.core import CrowdedPlacesObjective, TrafficFlowObjective
from repro.mobility import GeneratorConfig, MobilityGenerator
from repro.privacy import (
    GeoIndistinguishabilityMechanism,
    IdentityMechanism,
    PoiAttack,
    ReidentificationAttack,
    SpatialCloakingMechanism,
    SpeedSmoothingMechanism,
    TemporalDownsamplingMechanism,
    poi_recall,
    reidentification_rate,
)
from repro.units import DAY, HOUR, MINUTE

MECHANISMS = [
    ("raw (identity)", IdentityMechanism()),
    ("geo-ind eps=0.01/m", GeoIndistinguishabilityMechanism(0.01)),
    ("geo-ind eps=0.005/m", GeoIndistinguishabilityMechanism(0.005)),
    ("geo-ind eps=0.001/m", GeoIndistinguishabilityMechanism(0.001)),
    ("cloaking 400m", SpatialCloakingMechanism(400.0)),
    ("downsample 15min", TemporalDownsamplingMechanism(15 * MINUTE)),
    ("speed-smooth 100m", SpeedSmoothingMechanism(100.0)),
    ("speed-smooth 250m", SpeedSmoothingMechanism(250.0)),
]


def main() -> None:
    print("Generating population (20 users x 8 days)...")
    population = MobilityGenerator(
        GeneratorConfig(n_users=20, n_days=8, sampling_period=120.0)
    ).generate(seed=11)
    dataset = population.dataset

    background = dataset.slice_time(0, 4 * DAY)
    target = dataset.slice_time(4 * DAY, 8 * DAY)
    linker = ReidentificationAttack(denoise_window=9).fit(background)
    poi_attack = PoiAttack(denoise_window=9)
    crowded = CrowdedPlacesObjective()
    traffic = TrafficFlowObjective()

    print(
        f"\n{'mechanism':<22} {'POI recall':>10} {'re-ident':>9} "
        f"{'crowded F1':>11} {'traffic':>8}"
    )
    print("-" * 66)
    for label, mechanism in MECHANISMS:
        protected = mechanism.protect(target, seed=3)

        found = poi_attack.run(protected)
        recalls = [
            poi_recall(
                population.truth.pois_of(user, min_total_dwell=2 * HOUR),
                found.get(user, []),
                radius_m=250.0,
            )
            for user in target.users
        ]
        recall = sum(recalls) / len(recalls)

        pseudo, secret = protected.pseudonymized()
        guesses = {p: r.guessed_user for p, r in linker.link(pseudo).items()}
        reident = reidentification_rate(secret, guesses)

        crowded_score = crowded.score(target, protected)
        traffic_score = traffic.score(target, protected)
        print(
            f"{label:<22} {recall:>10.2f} {reident:>9.2f} "
            f"{crowded_score:>11.2f} {traffic_score:>8.2f}"
        )

    print(
        "\nReading: geo-indistinguishability needs eps <= 0.001/m to push POI"
        "\nrecall down, which destroys utility; speed smoothing achieves both"
        "\n(the paper's Section 3 claim)."
    )


if __name__ == "__main__":
    main()
