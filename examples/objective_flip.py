#!/usr/bin/env python
"""The paper's thesis in one run: the best mechanism depends on the task.

"We believe there is not one unique anonymization strategy that always
performs well but many from which we can choose the one that fits the
best to the usage that will be done with the anonymized dataset."
(paper, Section 3)

Same dataset, same privacy requirement, two analyst tasks:

- *crowded places* (shape-based)  -> PRIVAPI picks speed smoothing;
- *origin-destination flows* (stop-based) -> PRIVAPI picks k-anonymity
  cloaking, because smoothing erased the stops OD analysis needs.

Run:  python examples/objective_flip.py
"""

from repro.core import (
    CrowdedPlacesObjective,
    OdFlowObjective,
    PrivacyRequirement,
    PrivApi,
)
from repro.mobility import GeneratorConfig, MobilityGenerator
from repro.privacy.mechanisms import (
    KAnonymityCloakingMechanism,
    SpeedSmoothingMechanism,
)


def main() -> None:
    population = MobilityGenerator(
        GeneratorConfig(n_users=15, n_days=6, sampling_period=120.0)
    ).generate(seed=8)

    privapi = PrivApi(
        mechanisms=[
            SpeedSmoothingMechanism(250.0),
            KAnonymityCloakingMechanism(k=6, base_cell_m=250.0),
        ],
        seed=4,
    )
    requirement = PrivacyRequirement(max_poi_recall=0.25)

    for objective in (CrowdedPlacesObjective(), OdFlowObjective()):
        result = privapi.publish(population.dataset, requirement, objective)
        print(result.report.to_text())
        print()

    print(
        "Same data, same privacy bar - different winner per task.  This is\n"
        "why PRIVAPI keeps a registry and audits per publication instead of\n"
        "hard-coding one 'best' anonymization."
    )


if __name__ == "__main__":
    main()
