#!/usr/bin/env python
"""The serving tier end-to-end: one server, many live dashboards.

`live_campaign_dashboard.py` watches a campaign through the stream
engine directly; this walkthrough puts the **server** in between.  A
campaign's Hive is wrapped in a :class:`repro.server.ReproServer`, a
middleware chain (auth + metrics) guards every surface, and N dashboard
clients connect over the in-process transport, subscribe to a windowed
view, and receive every closing `WindowSnapshot` as a push — while a
denied connection shows the chain short-circuiting.  One more client
subscribes to the **obs watch** channel: a `MetricsScraper` samples the
registry on a sim-clock cadence and the server pushes every scrape
frame plus any SLO burn-rate transition to it, exactly once.  At the
end, each client's pushed stream is asserted identical to the engine's
batch view, and the total pushed records equal the aggregate the query
surface returns: the live dashboard and the batch query agree exactly.

Run:  python examples/live_server_dashboard.py
"""

import asyncio

from repro import obs
from repro.apisense import Campaign, CampaignConfig, SensingTask
from repro.apisense.monitoring import snapshot
from repro.mobility import GeneratorConfig, MobilityGenerator
from repro.server import (
    AuthTokenMiddleware,
    MetricsMiddleware,
    ReproServer,
    ServerClient,
    ServerDenied,
)
from repro.server.protocol import snapshot_digest
from repro.streams import WindowSpec
from repro.units import DAY, HOUR

TASK = "served-noise"
VIEW = "6-hourly"
N_CLIENTS = 4
N_DAYS = 2

TOKENS = {"dash-token": "viewer", "ops-token": "operator"}
SCOPES = {
    "viewer": {"query", "channel", "obs"},
    "operator": {"ingest", "query", "channel", "obs"},
}


async def run_server(campaign: Campaign, server: ReproServer) -> list[list[dict]]:
    """Drive the campaign with ``N_CLIENTS`` subscribed dashboards."""
    clients: list[ServerClient] = []
    for _ in range(N_CLIENTS):
        client = ServerClient(server.connect_in_process())
        await client.connect({"authorization": "dash-token"})
        await client.subscribe(VIEW, alerts=True)
        clients.append(client)

    # One more dashboard watches the metrics themselves: every scrape
    # frame (filtered to the pipeline/server families) and every SLO
    # state transition arrives as a push, exactly once.
    watcher = ServerClient(server.connect_in_process())
    await watcher.connect({"authorization": "dash-token"})
    await watcher.watch_obs(names=["repro_pipeline", "repro_server"])

    # The chain guards the door: a bad token never reaches a session.
    intruder = ServerClient(server.connect_in_process())
    try:
        await intruder.connect({"authorization": "wrong"})
    except ServerDenied as denied:
        print(f"  denied connect: {denied.reason}")

    hive = campaign.hive
    for day in range(1, N_DAYS + 1):
        await server.drive(day * DAY, slice_seconds=HOUR)
        hive.end_of_day()
        campaign._daily_participation()
    await server.drive(
        N_DAYS * DAY + 2.0 * campaign.config.delivery_latency + 1.0,
        slice_seconds=HOUR,
    )
    hive.pipeline.flush_all()
    hive.streams.finalize()
    await server.drain()

    streams: list[list[dict]] = []
    for client in clients:
        pushes: list[dict] = []
        while True:
            await asyncio.sleep(0)
            fresh = client.drain_pushes()
            if not fresh:
                break
            pushes.extend(fresh)
        streams.append(pushes)

    # The obs watcher saw the metrics history live as it was scraped.
    obs_pushes = watcher.drain_pushes()
    frames = [p for p in obs_pushes if p["kind"] == "obs_frame"]
    alerts = [p for p in obs_pushes if p["kind"] == "obs_alert"]
    assert frames, "the scraper ran, so the watcher must have seen frames"
    slo = await watcher.obs_slo()
    states = {s["name"]: s["state"] for s in slo["slos"]}
    print(
        f"  obs watch: {len(frames)} scrape frames, {len(alerts)} SLO "
        f"alerts pushed; SLO states: {states}"
    )
    assert all(state == "ok" for state in states.values())
    await watcher.close()

    # The query surface answers the same numbers the pushes carried.
    aggregate = await clients[0].aggregate(TASK)
    for client in clients:
        await client.close()
    streams.append([{"aggregate": aggregate}])
    return streams


def main() -> None:
    print(f"Generating population (12 users x {N_DAYS} days)...")
    population = MobilityGenerator(
        GeneratorConfig(n_users=12, n_days=N_DAYS, sampling_period=180.0)
    ).generate(seed=7)
    campaign = Campaign(
        population, config=CampaignConfig(n_days=float(N_DAYS), seed=3)
    )
    campaign.deploy(
        SensingTask(
            name=TASK,
            sensors=("gps", "battery"),
            sampling_period=300.0,
            upload_period=1800.0,
            end=N_DAYS * DAY,
        )
    )
    hive = campaign.hive
    hive.streams.register_view(VIEW, WindowSpec.tumbling(6 * HOUR))

    # Metrics over time: a scraper samples the registry every simulated
    # hour for the whole campaign (plus the delivery tail), and one SLO
    # holds request latency to a wall-clock budget the in-process
    # transport comfortably meets — the obs watcher sees it stay "ok".
    scraper = obs.MetricsScraper(cadence=HOUR, capacity=128)
    scraper.start(
        campaign.sim,
        until=N_DAYS * DAY + 2.0 * campaign.config.delivery_latency + 1.0,
    )
    slos = obs.SLOTracker(
        scraper.store,
        [
            obs.SLODefinition(
                name="request-latency",
                objective=0.9,
                probe=obs.latency_sli("repro_server_request_seconds", 0.05),
                rules=(obs.BurnRateRule(window=12 * HOUR, factor=1.0),),
                description="90% of server requests finish within 50ms",
            )
        ],
    )
    metrics = MetricsMiddleware()
    server = ReproServer(
        hive,
        middlewares=[AuthTokenMiddleware(TOKENS, SCOPES), metrics],
        scraper=scraper,
        slos=slos,
    )

    print(f"Serving {N_CLIENTS} dashboard clients while the campaign runs:")
    *streams, tail = asyncio.run(run_server(campaign, server))
    aggregate = tail[0]["aggregate"]

    # ------------------------------------------------------------------ #
    # Pushed dashboard == batch view, for every client
    # ------------------------------------------------------------------ #
    batch = [
        snapshot_digest(s) for s in hive.streams.snapshots(TASK, VIEW)
    ]
    for index, pushes in enumerate(streams):
        digests = [p["snapshot"] for p in pushes if p["kind"] == "snapshot"]
        assert digests == batch, f"client {index} diverged from the batch view"
        total = sum(d["records"] for d in digests)
        assert total == aggregate["records"], "pushes disagree with the query"
        print(
            f"  client {index}: {len(digests)} windows pushed, "
            f"{total} records — equals the batch view"
        )

    print(f"\nAggregate over the query surface: {aggregate['records']} records")
    print(
        f"Middleware saw {metrics.counters.requests} requests, "
        f"{metrics.counters.denied} denied"
    )
    print(
        "\n"
        + snapshot(hive, campaign.sim.now, server=server, slos=slos).to_text()
    )
    assert server.pushes_dropped == 0


if __name__ == "__main__":
    main()
