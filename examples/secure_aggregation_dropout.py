#!/usr/bin/env python
"""Dropout-resilient secure aggregation: masks that survive churn.

Mobile devices drop off the network constantly.  The plain masking
protocol breaks if a single participant fails to report; this example
runs the Shamir-backed resilient variant end to end: a fleet submits
masked battery readings, two devices drop mid-round, and the aggregator
recovers the exact sum of the survivors by reconstructing only the
*dropped* devices' mask seeds from the survivors' shares.

Run:  python examples/secure_aggregation_dropout.py
"""

import random

from repro.crypto import MaskedAggregation, MaskingDealer, MaskingParticipant
from repro.crypto.resilient_masking import ResilientAggregation
from repro.errors import ProtocolError


def main() -> None:
    n, threshold = 8, 5
    rng = random.Random(7)
    readings = [round(rng.uniform(0.1, 1.0), 3) for _ in range(n)]
    dropped = {2, 6}
    print(f"fleet of {n} devices, threshold {threshold}, readings: {readings}")
    print(f"devices {sorted(dropped)} will drop before submitting\n")

    # --- The plain protocol cannot even decode -------------------------
    plain = MaskedAggregation(n)
    for index in range(n):
        if index in dropped:
            continue
        plain.accept(MaskingParticipant(index, n, b"seed").masked_value(readings[index]))
    try:
        plain.result_sum()
    except ProtocolError as error:
        print(f"plain masking:     ProtocolError: {error}")

    # --- The resilient protocol recovers -------------------------------
    dealer = MaskingDealer(n, threshold, rng=random.Random(1))
    participants = dealer.deal()

    aggregation = ResilientAggregation(n, threshold)
    for participant in participants:
        if participant.index in dropped:
            continue
        aggregation.accept(
            participant.index, participant.masked_value(readings[participant.index])
        )
    print(f"resilient masking: dropped detected = {aggregation.dropped}")

    survivors = {p.index: p for p in participants if p.index not in dropped}
    total = aggregation.recover_and_sum(survivors)
    expected = sum(v for i, v in enumerate(readings) if i not in dropped)
    print(f"recovered sum of survivors: {total:.3f} (expected {expected:.3f})")
    assert abs(total - expected) < 1e-6
    print("\nThe aggregator learned the survivors' *sum* and nothing else;")
    print("recovery exposed only the dropped devices' pairwise seeds.")


if __name__ == "__main__":
    main()
