#!/usr/bin/env python
"""Federated deployment: one experiment, two communities, one dataset.

"One of the benefits of building a common platform like APISENSE lies in
the federation of communities of mobile users" (Section 2).  Two cities
run their own Hives, federated through a
:class:`~repro.federation.FederationRouter`; a scientist's Honeycomb in
city A syndicates its task to city B's community as well, and all data
flows back to the one endpoint.  The operator watches the whole
federation through one :func:`~repro.federation.federation_snapshot`,
and reads the merged result through one
:class:`~repro.federation.FederatedDataset` query.

Devices here are registered *directly* on their city's Hive — geographic
homing is this deployment's placement policy; see
``examples/federated_scaleout.py`` for ring-placed elastic crowds.

Run:  python examples/federated_deployment.py
"""

import numpy as np

from repro.apisense import Hive, Honeycomb, SensingTask, Transport
from repro.apisense.battery import Battery, BatteryModel
from repro.apisense.device import MobileDevice
from repro.apisense.sensors import default_sensor_suite
from repro.federation import FederatedDataset, FederationRouter, federation_snapshot
from repro.geo.point import GeoPoint
from repro.mobility import CityConfig, GeneratorConfig, MobilityGenerator
from repro.simulation import Simulator
from repro.units import DAY, HOUR

CITIES = {
    "bordeaux": CityConfig(center=GeoPoint(44.8378, -0.5792)),
    "lyon": CityConfig(center=GeoPoint(45.7640, 4.8357)),
}


def build_hive(sim: Simulator, name: str, config: CityConfig, seed: int) -> Hive:
    population = MobilityGenerator(
        GeneratorConfig(n_users=8, n_days=2, sampling_period=300.0, city=config)
    ).generate(seed=seed)
    rng = np.random.default_rng(seed)
    suite = default_sensor_suite(population.city, rng)
    hive = Hive(sim, seed=seed)
    for index, trajectory in enumerate(population.dataset):
        hive.register_device(
            MobileDevice(
                device_id=f"{name}-dev-{index}",
                user=f"{name}:{trajectory.user}",
                trajectory=trajectory.renamed(f"{name}:{trajectory.user}"),
                sensors=suite,
                battery=Battery(BatteryModel(), level=float(rng.uniform(0.5, 1.0))),
                seed=seed * 1000 + index,
            )
        )
    return hive


def main() -> None:
    sim = Simulator()
    # Inter-city control traffic rides a lossy wide-area link.
    router = FederationRouter(
        sim,
        control_transport=Transport(
            latency_mean=0.08, latency_jitter=0.02, loss=0.02, seed=1
        ),
    )
    for seed, (name, config) in enumerate(CITIES.items(), start=1):
        router.join(name, build_hive(sim, name, config, seed))
    print(f"federation: {router.member_names}, {router.total_devices()} devices\n")

    owner = Honeycomb("mobility-lab", router.hive("bordeaux"))
    task = SensingTask(
        name="multi-city-mobility",
        sensors=("gps",),
        sampling_period=300.0,
        upload_period=1800.0,
        end=2 * DAY,
    )
    receipt = router.syndicate(task, owner, home="bordeaux")
    print(
        f"syndicated {receipt.task!r} from {receipt.home_hive}: "
        f"{receipt.home_offers} home offers, {receipt.announcements} partner "
        f"announcements over the control plane\n"
    )

    # Mid-campaign: the whole federation on one dashboard.
    sim.run_until(12 * HOUR)
    print(federation_snapshot(router, sim.now).to_text())
    print()

    # Finish and inspect the merged dataset — via the legacy record
    # lists and via the federated columnar query plane.
    sim.run_until(2 * DAY + HOUR)
    for name in router.member_names:
        router.hive(name).pipeline.flush_all()

    collected = owner.mobility_dataset(task.name)
    per_city: dict[str, int] = {}
    for user in collected.users:
        city = user.split(":")[0]
        per_city[city] = per_city.get(city, 0) + 1
    print(
        f"collected {collected.n_records} records from {len(collected)} users "
        f"across cities: {per_city}"
    )
    for name, stats in router.task_stats(task.name).items():
        print(
            f"  {name}: offers={stats.offers} accepted={stats.acceptances} "
            f"records={stats.records}"
        )

    federated = FederatedDataset.from_router(router)
    print()
    print(federated.aggregate(task.name).to_text())
    day0 = federated.scan(task.name, t0=0.0, t1=DAY)
    print(f"federated day-0 scan: {len(day0)} records")


if __name__ == "__main__":
    main()
