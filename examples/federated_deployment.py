#!/usr/bin/env python
"""Federated deployment: one experiment, two communities, one dataset.

"One of the benefits of building a common platform like APISENSE lies in
the federation of communities of mobile users" (Section 2).  Two cities
run their own Hives; a scientist's Honeycomb in city A syndicates its
task to city B's community as well, and all data flows back to the one
endpoint.  The operator dashboard (monitoring snapshots) watches both
Hives mid-campaign.

Run:  python examples/federated_deployment.py
"""

import numpy as np

from repro.apisense import Hive, Honeycomb, HiveFederation, SensingTask
from repro.apisense.battery import Battery, BatteryModel
from repro.apisense.device import MobileDevice
from repro.apisense.monitoring import snapshot
from repro.apisense.sensors import default_sensor_suite
from repro.geo.point import GeoPoint
from repro.mobility import CityConfig, GeneratorConfig, MobilityGenerator
from repro.simulation import Simulator
from repro.units import DAY, HOUR

CITIES = {
    "bordeaux": CityConfig(center=GeoPoint(44.8378, -0.5792)),
    "lyon": CityConfig(center=GeoPoint(45.7640, 4.8357)),
}


def build_hive(sim: Simulator, name: str, config: CityConfig, seed: int) -> Hive:
    population = MobilityGenerator(
        GeneratorConfig(n_users=8, n_days=2, sampling_period=300.0, city=config)
    ).generate(seed=seed)
    rng = np.random.default_rng(seed)
    suite = default_sensor_suite(population.city, rng)
    hive = Hive(sim, seed=seed)
    for index, trajectory in enumerate(population.dataset):
        hive.register_device(
            MobileDevice(
                device_id=f"{name}-dev-{index}",
                user=f"{name}:{trajectory.user}",
                trajectory=trajectory.renamed(f"{name}:{trajectory.user}"),
                sensors=suite,
                battery=Battery(BatteryModel(), level=float(rng.uniform(0.5, 1.0))),
                seed=seed * 1000 + index,
            )
        )
    return hive


def main() -> None:
    sim = Simulator()
    federation = HiveFederation()
    for seed, (name, config) in enumerate(CITIES.items(), start=1):
        federation.register_hive(name, build_hive(sim, name, config, seed))
    print(f"federation: {federation.hive_names}, {federation.total_devices()} devices\n")

    owner = Honeycomb("mobility-lab", federation.hive("bordeaux"))
    task = SensingTask(
        name="multi-city-mobility",
        sensors=("gps",),
        sampling_period=300.0,
        upload_period=1800.0,
        end=2 * DAY,
    )
    receipt = federation.syndicate(task, owner, home="bordeaux")
    print(
        f"syndicated {receipt.task!r} from {receipt.home_hive} to "
        f"{list(receipt.partner_hives)}: {receipt.total_offers} offers\n"
    )

    # Mid-campaign dashboard.
    sim.run_until(12 * HOUR)
    for name in federation.hive_names:
        print(snapshot(federation.hive(name), sim.now).to_text())
        print()

    # Finish and inspect the merged dataset.
    sim.run_until(2 * DAY + HOUR)
    collected = owner.mobility_dataset(task.name)
    per_city = {}
    for user in collected.users:
        city = user.split(":")[0]
        per_city[city] = per_city.get(city, 0) + 1
    print(
        f"collected {collected.n_records} records from {len(collected)} users "
        f"across cities: {per_city}"
    )
    for name, (offers, acceptances, records) in federation.task_stats(task.name).items():
        print(f"  {name}: offers={offers} accepted={acceptances} records={records}")


if __name__ == "__main__":
    main()
