#!/usr/bin/env python
"""A live campaign dashboard: windowed views + continuous queries.

Every analytic elsewhere in the examples is a batch scan after the
campaign; this one watches the campaign *while it runs*.  The Hive's
stream engine taps the ingest pipeline's flushes and maintains windowed
materialized views (record rate, geo-cell coverage, value/lag
percentiles, most-active users) that close as simulated event time
advances — each closing window is printed live, and continuous queries
(rate floor, coverage stall, ingest-lag ceiling) raise alerts into the
engine's bounded log.  At the end, the live totals are checked against
a batch scan of the columnar store: same counts, no store re-scan ever
needed while the campaign was running.

Run:  python examples/live_campaign_dashboard.py
"""

from repro.apisense import Campaign, CampaignConfig, RewardIncentive, SensingTask
from repro.apisense.monitoring import snapshot
from repro.mobility import GeneratorConfig, MobilityGenerator
from repro.streams import (
    ContinuousQuery,
    WindowSpec,
    coverage_stalled,
    percentile_above,
    rate_below,
)
from repro.units import DAY, HOUR

TASK = "street-noise"


def main() -> None:
    # ---------------------------------------------------------------- #
    # 1. A crowd and a campaign
    # ---------------------------------------------------------------- #
    print("Generating population (15 users x 2 days)...")
    population = MobilityGenerator(
        GeneratorConfig(n_users=15, n_days=2, sampling_period=180.0)
    ).generate(seed=11)
    campaign = Campaign(
        population,
        incentive=RewardIncentive(),
        config=CampaignConfig(n_days=2, seed=4),
    )

    # ---------------------------------------------------------------- #
    # 2. Live views + continuous queries on the Hive's stream engine
    # ---------------------------------------------------------------- #
    engine = campaign.hive.streams
    # Devices upload every 30 simulated minutes; allow stragglers a
    # generous lateness budget so no record is dropped from the views.
    engine.allowed_lateness = 2 * HOUR
    engine.register_view("6-hourly", WindowSpec.tumbling(6 * HOUR))
    engine.register_view("rolling-day", WindowSpec.sliding(DAY, 6 * HOUR))
    engine.register_query(
        "6-hourly", ContinuousQuery("night-shift", rate_below(0.02))
    )
    engine.register_query(
        "6-hourly", ContinuousQuery("coverage-stall", coverage_stalled(2))
    )
    engine.register_query(
        "6-hourly", ContinuousQuery("lag-ceiling", percentile_above("lag", 0.95, 120.0))
    )
    engine.on_window(
        lambda s: s.view == "6-hourly" and print("  live  " + s.to_text())
    )

    # ---------------------------------------------------------------- #
    # 3. Run — windows close and print as the simulation advances
    # ---------------------------------------------------------------- #
    campaign.deploy(
        SensingTask(
            name=TASK,
            sensors=("gps", "battery"),
            sampling_period=300.0,
            upload_period=1800.0,
            end=2 * DAY,
        )
    )
    print("Running the campaign (windows close live):")
    report = campaign.run()
    engine.finalize()

    # ---------------------------------------------------------------- #
    # 4. The operator's view: rolling dashboard, alerts, health line
    # ---------------------------------------------------------------- #
    print("\nRolling 24h view (slides every 6h):")
    for window in engine.snapshots(TASK, "rolling-day"):
        print("  " + window.to_text())

    print(f"\nAlerts ({engine.alerts.total} fired, bounded log):")
    for alert in engine.alerts.alerts():
        print("  " + alert.to_text())
    engine.alerts.acknowledge()

    health = snapshot(campaign.hive, campaign.sim.now)
    print("\n" + health.to_text())

    # ---------------------------------------------------------------- #
    # 5. Live views never re-scanned the store — but they agree with it
    # ---------------------------------------------------------------- #
    store = campaign.hive.store
    live_total = sum(
        s.records for s in engine.snapshots(TASK, "6-hourly")
    )
    batch_total = len(store.scan(TASK))
    print(
        f"\nlive windowed total {live_total} records vs batch scan "
        f"{batch_total} ({engine.stats.late_records} late) — "
        f"campaign collected {report.total_records}"
    )
    assert live_total == batch_total, "live views diverged from the store"


if __name__ == "__main__":
    main()
