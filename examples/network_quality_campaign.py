#!/usr/bin/env python
"""A network-quality crowd-sensing campaign with secure aggregation.

Reproduces the paper's motivating "network quality application": a
Honeycomb deploys a task sampling RSSI + GPS on a simulated crowd, a
virtual sensor orchestrates on-demand reads energy-awarely, and the mean
RSSI per neighbourhood is computed through the Paillier secure-sum
protocol — the platform operator never sees an individual reading.

Run:  python examples/network_quality_campaign.py
"""

import random
from collections import defaultdict

from repro.apisense import (
    Campaign,
    CampaignConfig,
    EnergyAwareStrategy,
    SensingTask,
    VirtualSensor,
    WinWinIncentive,
)
from repro.crypto import DeviceContributor, ObliviousAggregator, QueryCoordinator
from repro.geo import SpatialGrid
from repro.mobility import GeneratorConfig, MobilityGenerator
from repro.units import DAY


def main() -> None:
    population = MobilityGenerator(
        GeneratorConfig(n_users=20, n_days=3, sampling_period=120.0)
    ).generate(seed=7)

    # --- Deploy the campaign --------------------------------------------
    campaign = Campaign(
        population,
        incentive=WinWinIncentive(),
        config=CampaignConfig(n_days=3, seed=1),
    )
    task = SensingTask(
        name="net-quality",
        sensors=("network", "gps"),
        sampling_period=300.0,
        upload_period=3600.0,
        end=3 * DAY,
    )
    honeycomb = campaign.deploy(task)
    report = campaign.run()
    print(
        f"campaign done: {report.total_records} records from "
        f"{report.n_devices} devices "
        f"(acceptance {report.acceptance_rate_per_task['net-quality']:.0%}, "
        f"mean motivation {report.mean_motivation:.2f})"
    )

    # --- Virtual sensor: orchestrated on-demand reads --------------------
    vsensor = VirtualSensor(
        "city-network",
        "network",
        campaign.devices,
        EnergyAwareStrategy(alpha=2.0),
        campaign.sim,
        seed=3,
    )
    for _ in range(50):
        vsensor.read()
    print(
        f"virtual sensor: {vsensor.stats.reads_served}/50 on-demand reads "
        f"served, battery fairness {vsensor.battery_fairness():.3f}"
    )

    # --- Secure aggregation: mean RSSI per neighbourhood -----------------
    grid = SpatialGrid(population.city.bounding_box, cell_size_m=2000.0)
    coordinator = QueryCoordinator(key_bits=512, rng=random.Random(5))
    contributor = DeviceContributor(random.Random(6))

    per_cell: dict[tuple[int, int], list[float]] = defaultdict(list)
    for record in honeycomb.records("net-quality"):
        position = record.values.get("gps")
        rssi = record.values.get("network")
        if position is None or rssi is None:
            continue
        per_cell[grid.cell_of(position)].append(float(rssi))

    print("\nmean RSSI per 2 km neighbourhood (computed under encryption):")
    for cell, readings in sorted(per_cell.items(), key=lambda kv: -len(kv[1]))[:8]:
        query = coordinator.open_query(f"rssi-{cell[0]}-{cell[1]}")
        aggregator = ObliviousAggregator(query)
        for reading in readings:
            aggregator.accept(contributor.contribute_value(query, reading))
        mean = coordinator.decrypt_mean(
            query, aggregator.scalar_result(), aggregator.count
        )
        print(f"  cell {cell}: {mean:7.1f} dBm   ({len(readings)} encrypted readings)")


if __name__ == "__main__":
    main()
