#!/usr/bin/env python
"""Tuning a mechanism's parameter along the privacy/utility frontier.

PRIVAPI's registry audit picks among fixed candidates; this example uses
`tune_mechanism` to search the smoothing step: the finest step (best
spatial resolution) whose audit still clears the privacy requirement.
The printed frontier shows exactly how the knob trades attack recall
against crowded-places utility.

Run:  python examples/parameter_tuning.py
"""

from repro.core import (
    CrowdedPlacesObjective,
    ParameterSearch,
    PrivacyRequirement,
    PrivApi,
    tune_mechanism,
)
from repro.mobility import GeneratorConfig, MobilityGenerator
from repro.privacy import SpeedSmoothingMechanism


def main() -> None:
    population = MobilityGenerator(
        GeneratorConfig(n_users=15, n_days=6, sampling_period=120.0)
    ).generate(seed=17)

    search = ParameterSearch(
        name="smoothing-step",
        factory=lambda step: SpeedSmoothingMechanism(epsilon_m=step),
        values=[50.0, 100.0, 200.0, 400.0, 800.0],
    )
    privapi = PrivApi(seed=3)
    requirement = PrivacyRequirement(max_poi_recall=0.2)
    objective = CrowdedPlacesObjective()

    print("auditing the smoothing-step frontier (bar: POI recall <= 0.20)...\n")
    result = tune_mechanism(
        privapi, search, population.dataset, requirement, objective
    )

    print(f"{'step (m)':>9} {'POI recall':>11} {'utility':>8}  verdict")
    print("-" * 44)
    for value in search.values:
        evaluation = result.evaluations[value]
        verdict = "ok" if evaluation.satisfies_privacy else "REJECTED"
        marker = "  <-- chosen" if value == result.best_value else ""
        print(
            f"{value:>9.0f} {evaluation.poi_recall:>11.2f} "
            f"{evaluation.utility:>8.2f}  {verdict}{marker}"
        )

    assert result.satisfied
    print(
        f"\nbest compliant step: {result.best_value:.0f} m "
        f"(utility {result.evaluations[result.best_value].utility:.2f})"
    )


if __name__ == "__main__":
    main()
