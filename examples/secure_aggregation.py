#!/usr/bin/env python
"""Secure aggregation over a real campaign: the platform never needs
the raw readings.

A 3-hive federation runs a one-day GPS+battery campaign, then the
campaign's aggregates are computed twice:

1. **plaintext** — the ordinary federated scan/merge paths;
2. **secure** — every (hive, user) contributes encrypted (Paillier) or
   masked partial vectors, chosen per device battery; the aggregating
   parties fold what they cannot read, and only the final totals are
   decrypted.

Both must agree: exactly on counts, within fixed-point tolerance on
value sums.  The same is asserted for the *live* plane (per-window
partial sums masked before the federation-wide fold) and under dropout:
the FaultInjector kills k devices between the session's mask dealing
and the collection round, and the Shamir-backed recovery still
reconstructs the survivors' sum.

Run:  python examples/secure_aggregation.py
"""

import random

import numpy as np

from repro.apisense.battery import Battery, BatteryModel
from repro.apisense.device import MobileDevice
from repro.apisense.hive import Hive
from repro.apisense.honeycomb import Honeycomb
from repro.apisense.sensors import default_sensor_suite
from repro.apisense.tasks import SensingTask
from repro.federation import FederatedDataset, FederatedStreamMerger, FederationRouter
from repro.mobility import GeneratorConfig, MobilityGenerator
from repro.privacy.secure_aggregation import SecureAggregationPolicy
from repro.simulation import FaultInjector, Simulator
from repro.streams import WindowSpec
from repro.units import DAY, HOUR

SEED = 2014
N_USERS = 10
TASK = "secure-campaign"
WINDOW = 2.0 * HOUR


def build_federation(sim: Simulator) -> FederationRouter:
    router = FederationRouter(sim)
    for index in range(3):
        hive = Hive(sim, seed=SEED + index)
        # Live views must exist before the first record arrives.
        hive.streams.pane_seconds = WINDOW
        hive.streams.register_view("rates", WindowSpec.tumbling(WINDOW))
        router.join(f"hive-{index}", hive)
    return router


def main() -> None:
    population = MobilityGenerator(
        GeneratorConfig(n_users=N_USERS, n_days=1, sampling_period=600.0)
    ).generate(seed=SEED)
    sim = Simulator()
    router = build_federation(sim)
    rng = np.random.default_rng(SEED)
    suite = default_sensor_suite(population.city, rng)
    for index, trajectory in enumerate(population.dataset):
        router.register_device(
            MobileDevice(
                device_id=f"device-{index:04d}",
                user=trajectory.user,
                trajectory=trajectory,
                sensors=suite,
                battery=Battery(BatteryModel(), level=float(rng.uniform(0.2, 1.0))),
                seed=SEED * 100_003 + index,
            )
        )

    owner = Honeycomb("secure-lab", router.hive("hive-0"))
    task = SensingTask(
        name=TASK,
        sensors=("gps", "battery"),
        sampling_period=900.0,
        upload_period=1800.0,
        end=DAY,
    )
    router.syndicate(task, owner, home="hive-0")
    sim.run_until(DAY + HOUR)
    for name in router.member_names:
        router.hive(name).pipeline.flush_all()

    federated = FederatedDataset.from_router(router)
    policy = SecureAggregationPolicy(key_bits=192, paillier_battery_floor=0.8)

    # ----- batch plane: secure == plaintext --------------------------
    profiles = {}
    for name in router.member_names:
        profiles.update(router.hive(name).secure_participants())
    secure = federated.secure_aggregate(
        TASK,
        bin_edges=[0.0, 0.25, 0.5, 0.75, 1.01],
        policy=policy,
        profiles=profiles,
        rng=random.Random(SEED),
    )
    batch = federated.scan(TASK)
    finite = batch.value[np.isfinite(batch.value)]
    tolerance = 0.5 * secure.contributors / 1000.0
    assert secure.records == len(batch)
    assert secure.value_count == len(finite)
    assert abs(secure.value_sum - float(finite.sum())) <= tolerance
    plaintext_bins = np.histogram(finite, bins=[0.0, 0.25, 0.5, 0.75, 1.01])[0]
    assert list(secure.histogram.values()) == plaintext_bins.tolist()
    print(secure.to_text())
    print(f"plaintext cross-check: {len(batch)} records, sum {finite.sum():.3f}  OK")

    # ----- live plane: masked window fold == merged dashboard --------
    merger = FederatedStreamMerger.from_router(router)
    checked = 0
    for snapshot in merger.history(TASK, "rates"):
        totals = merger.secure_totals(TASK, "rates", end=snapshot.end)
        assert totals.records == snapshot.records
        assert abs(totals.value_sum - snapshot.value_sum) <= 0.5 * len(totals.members) / 1000.0
        checked += 1
    assert checked > 0
    print(f"live plane: {checked} windows securely folded == merged views  OK")
    print(merger.secure_dashboard("rates"))

    # ----- dropout resilience ----------------------------------------
    # Force the whole cohort onto the Shamir-backed masking protocol so
    # the recovery path does real work: the injector kills k devices
    # between mask dealing and collection, and the survivors' shares
    # cancel the dangling masks.
    faults = FaultInjector(sim)
    contributors = sorted(set(batch.user_names()))
    killed = set(contributors[:2])
    for user in killed:
        faults.schedule_outage(f"device:{user}", at=sim.now + 60.0)
    sim.run()
    masking_policy = SecureAggregationPolicy(protocol="masking", dropout_threshold=0.5)
    survivors_secure = federated.secure_aggregate(
        TASK,
        policy=masking_policy,
        profiles=profiles,
        rng=random.Random(SEED + 1),
        faults=faults,
    )
    assert survivors_secure.protocol_split["masking"] == survivors_secure.contributors
    keep = np.array([u not in killed for u in batch.user_names()], dtype=bool)
    surviving_values = batch.value[keep]
    surviving_finite = surviving_values[np.isfinite(surviving_values)]
    assert survivors_secure.records == int(keep.sum())
    assert len(survivors_secure.dropped) == len(killed)
    assert (
        abs(survivors_secure.value_sum - float(surviving_finite.sum()))
        <= 0.5 * survivors_secure.contributors / 1000.0
    )
    print(
        f"dropout: killed {len(killed)} devices mid-session -> secure sum still "
        f"reconstructs the survivors' {survivors_secure.records} records  OK"
    )
    print("\nNo Hive, merger or coordinator ever handled a raw per-user value.")


if __name__ == "__main__":
    main()
