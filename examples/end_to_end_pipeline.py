#!/usr/bin/env python
"""The whole architecture of Figure 1, end to end.

Honeycomb describes a task -> Hive offers it to the crowd -> simulated
devices run it behind their on-device privacy filters -> datasets flow
back to the Honeycomb -> PRIVAPI audits every anonymization strategy and
publishes the best -> an analyst mines the published (protected) dataset
for crowded places and never sees a single raw stop.

Run:  python examples/end_to_end_pipeline.py
"""

from repro.apisense import (
    Campaign,
    CampaignConfig,
    RewardIncentive,
    SensingTask,
    UserPreferences,
)
from repro.core import CrowdedPlacesObjective, PrivacyRequirement, PrivApi
from repro.geo import SpatialGrid
from repro.mobility import GeneratorConfig, MobilityGenerator
from repro.privacy import PoiAttack
from repro.units import DAY, HOUR
from repro.utility import footfall_density


def main() -> None:
    # ---------------------------------------------------------------- #
    # 1. The crowd
    # ---------------------------------------------------------------- #
    population = MobilityGenerator(
        GeneratorConfig(n_users=18, n_days=5, sampling_period=120.0)
    ).generate(seed=33)
    users = population.dataset.users

    # Two users exercise the on-device privacy layer: one shares no GPS
    # at all, one fences her home area and blurs everything else.
    preferences = {
        users[0]: UserPreferences(allowed_sensors=frozenset({"battery"})),
        users[1]: UserPreferences(
            forbidden_zones=((population.profiles[users[1]].home, 300.0),),
            blur_cell_m=200.0,
        ),
    }

    # ---------------------------------------------------------------- #
    # 2. The campaign (Honeycomb -> Hive -> devices -> Honeycomb)
    # ---------------------------------------------------------------- #
    campaign = Campaign(
        population,
        incentive=RewardIncentive(),
        config=CampaignConfig(n_days=5, seed=2),
        preferences=preferences,
    )
    honeycomb = campaign.deploy(
        SensingTask(
            name="mobility-study",
            sensors=("gps",),
            sampling_period=120.0,
            upload_period=1800.0,
            end=5 * DAY,
        )
    )
    report = campaign.run()
    collected = honeycomb.mobility_dataset("mobility-study")
    print(
        f"collected {collected.n_records} records from {len(collected)} users "
        f"({report.messages_sent} platform messages; user "
        f"{users[0]!r} opted out as intended: {users[0] not in collected})"
    )

    # What the server side did with those uploads: every batch went
    # through the ingest pipeline into the sharded columnar store, and
    # the aggregates were maintained incrementally at flush time.
    store = campaign.hive.store
    pipeline = campaign.hive.pipeline
    print("\n" + store.stats().to_text())
    print(
        f"pipeline: {pipeline.stats.flushes} flushes, "
        f"mean batch {pipeline.stats.mean_flush_batch:.1f} records, "
        f"largest {pipeline.stats.largest_flush} "
        f"({pipeline.stats.loss} shed by backpressure)"
    )
    print(honeycomb.aggregate("mobility-study").to_text())

    # ---------------------------------------------------------------- #
    # 3. PRIVAPI publication
    # ---------------------------------------------------------------- #
    privapi = PrivApi(seed=4)
    result = privapi.publish(
        collected,
        requirement=PrivacyRequirement(max_poi_recall=0.25),
        objective=CrowdedPlacesObjective(),
    )
    print("\n" + result.report.to_text())
    assert result.dataset is not None
    published = result.dataset

    # ---------------------------------------------------------------- #
    # 4. The analyst works on the published dataset
    # ---------------------------------------------------------------- #
    grid = SpatialGrid(population.city.bounding_box, cell_size_m=500.0)
    hotspots = footfall_density(published, grid).top_cells(8)
    print("\nanalyst's crowded places (from the protected release):")
    for cell in sorted(hotspots):
        print(f"  {grid.center_of(cell)}")

    # ...and what an adversary gets from the very same release:
    found = PoiAttack(denoise_window=9).run(published)
    recovered = sum(len(pois) for pois in found.values())
    truthy = sum(
        len(population.truth.pois_of(u, min_total_dwell=2 * HOUR)) for u in users
    )
    print(
        f"\nadversary on the same release: {recovered} candidate POIs across "
        f"{len(published)} pseudonyms (vs {truthy} real sensitive places; "
        "candidates are path artefacts, not stops)"
    )


if __name__ == "__main__":
    main()
