#!/usr/bin/env python
"""Federation scale-out: one crowd, an elastic ring of Hives.

The full federation-tier tour: a crowd is homed onto member Hives by the
consistent-hash ring, a task is syndicated federation-wide over a lossy
control plane, two more Hives *join mid-campaign* (watch ~1/N of the
crowd migrate, running tasks and all), one member *crashes and rejoins*
(its devices fail over and come back), and at the end a single federated
query merges every member's columnar store into one view that equals
what one monolithic Hive would have collected.

Run:  python examples/federated_scaleout.py
"""

import numpy as np

from repro.apisense import Honeycomb, SensingTask, Transport
from repro.apisense.battery import Battery, BatteryModel
from repro.apisense.device import MobileDevice
from repro.apisense.hive import Hive
from repro.apisense.sensors import default_sensor_suite
from repro.federation import FederatedDataset, FederationRouter, federation_snapshot
from repro.mobility import GeneratorConfig, MobilityGenerator
from repro.simulation import Simulator
from repro.units import DAY, HOUR

N_USERS = 16
N_DAYS = 2


def main() -> None:
    population = MobilityGenerator(
        GeneratorConfig(n_users=N_USERS, n_days=N_DAYS, sampling_period=300.0)
    ).generate(seed=7)
    sim = Simulator()

    # Control-plane gossip pays latency and loss like every other hop.
    router = FederationRouter(
        sim,
        control_transport=Transport(
            latency_mean=0.05, latency_jitter=0.01, loss=0.05, seed=7
        ),
    )
    for index in range(2):
        router.join(f"hive-{index}", Hive(sim, seed=index))

    rng = np.random.default_rng(7)
    suite = default_sensor_suite(population.city, rng)
    for index, trajectory in enumerate(population.dataset):
        home = router.register_device(
            MobileDevice(
                device_id=f"device-{index:03d}",
                user=trajectory.user,
                trajectory=trajectory,
                sensors=suite,
                battery=Battery(BatteryModel(), level=float(rng.uniform(0.5, 1.0))),
                seed=7000 + index,
            )
        )
        print(f"  {trajectory.user} -> {home}")
    print(f"placement over 2 hives: {router.placement_spread()}\n")

    owner = Honeycomb("scale-lab", router.hive("hive-0"))
    task = SensingTask(
        name="elastic-crowd",
        sensors=("gps",),
        sampling_period=300.0,
        upload_period=1800.0,
        end=N_DAYS * DAY,
    )
    receipt = router.syndicate(task, owner, home="hive-0")
    print(
        f"syndicated {receipt.task!r}: {receipt.home_offers} home offers, "
        f"{receipt.announcements} announcements over the lossy control plane\n"
    )

    # --- scale out mid-campaign: two more Hives join the ring ---------
    sim.run_until(6 * HOUR)
    for index in (2, 3):
        migrations = router.join(f"hive-{index}", Hive(sim, seed=index))
        print(
            f"hive-{index} joined at t={sim.now / HOUR:.0f}h: "
            f"{len(migrations)} devices migrated "
            f"({[m.device_id for m in migrations]})"
        )
    print(f"placement over 4 hives: {router.placement_spread()}\n")

    # --- failure injection: hive-2 crashes for six hours --------------
    router.schedule_failure("hive-2", at=12 * HOUR, duration=6 * HOUR)
    sim.run_until(14 * HOUR)
    print(f"t={sim.now / HOUR:.0f}h, hive-2 down: {router.placement_spread()}")
    failovers = [m for m in router.migration_log if m.reason == "failover"]
    print(f"  failover migrations: {len(failovers)}")
    sim.run_until(20 * HOUR)
    print(f"t={sim.now / HOUR:.0f}h, hive-2 rejoined: {router.placement_spread()}\n")

    # --- finish; one federated view over four stores ------------------
    sim.run_until(N_DAYS * DAY + HOUR)
    for name in router.member_names:
        router.hive(name).pipeline.flush_all()

    print(federation_snapshot(router, sim.now).to_text())
    print()

    federated = FederatedDataset.from_router(router)
    print(federated.aggregate(task.name).to_text())
    merged = federated.scan(task.name)
    print(
        f"\nfederated scan: {len(merged)} records from "
        f"{len(set(merged.user_names()))} users across "
        f"{len(federated.member_names)} stores"
    )
    assert len(merged) == owner.n_records(task.name), "no loss, no duplication"
    print("federated view matches the owning Honeycomb record for record")


if __name__ == "__main__":
    main()
