#!/usr/bin/env python
"""Comparing the paper's four incentive strategies on one campaign.

"The selection of incentive strategies carefully depends on the nature of
the crowdsourcing experiments" (Section 2).  This example runs the same
two-week campaign under each strategy and reports collected volume and
community health, showing the retention ordering.

Run:  python examples/incentives_comparison.py
"""

from repro.apisense import (
    Campaign,
    CampaignConfig,
    FeedbackIncentive,
    NoIncentive,
    RankingIncentive,
    RewardIncentive,
    SensingTask,
    WinWinIncentive,
)
from repro.mobility import GeneratorConfig, MobilityGenerator
from repro.units import DAY

STRATEGIES = [
    NoIncentive(),
    FeedbackIncentive(),
    RankingIncentive(),
    RewardIncentive(credit_per_record=0.01),
    WinWinIncentive(),
]

N_DAYS = 14


def main() -> None:
    population = MobilityGenerator(
        GeneratorConfig(n_users=25, n_days=N_DAYS, sampling_period=300.0)
    ).generate(seed=21)

    print(f"{'strategy':<10} {'records':>9} {'accept':>7} {'motivation':>11} {'trend':>22}")
    print("-" * 64)
    for strategy in STRATEGIES:
        campaign = Campaign(
            population,
            incentive=strategy,
            config=CampaignConfig(n_days=N_DAYS, seed=9),
        )
        campaign.deploy(
            SensingTask(
                name="study",
                sensors=("gps", "battery"),
                sampling_period=600.0,
                upload_period=3600.0,
                end=N_DAYS * DAY,
            )
        )
        report = campaign.run()
        early = sum(report.daily_records[:3])
        late = sum(report.daily_records[-3:])
        trend = late / early if early else 0.0
        print(
            f"{strategy.name:<10} {report.total_records:>9} "
            f"{report.acceptance_rate_per_task['study']:>6.0%} "
            f"{report.mean_motivation:>11.2f} "
            f"{'last/first 3 days = ' + format(trend, '.2f'):>22}"
        )

    print(
        "\nReading: win-win sustains (and grows) participation; per-"
        "\ncontribution boosts (feedback, reward) help; ranking keeps a"
        "\nmotivated core only; without incentives the community decays."
    )


if __name__ == "__main__":
    main()
