"""Unit tests for the synthetic city model."""

import numpy as np
import pytest

from repro.errors import GeoError
from repro.geo.distance import haversine_m
from repro.mobility.city import City, CityConfig


class TestCityConfig:
    def test_defaults_valid(self):
        config = CityConfig()
        assert config.half_extent_m == 5000.0

    def test_negative_extent_rejected(self):
        with pytest.raises(GeoError):
            CityConfig(half_extent_m=-1.0)

    def test_zero_places_rejected(self):
        with pytest.raises(GeoError):
            CityConfig(n_leisure=0)


class TestCityGeneration:
    def test_counts_match_config(self, test_city):
        config = test_city.config
        assert len(test_city.residential) == config.n_residential
        assert len(test_city.workplaces) == config.n_workplaces
        assert len(test_city.leisure) == config.n_leisure

    def test_deterministic_per_seed(self):
        config = CityConfig()
        a = City.generate(config, np.random.default_rng(5))
        b = City.generate(config, np.random.default_rng(5))
        assert a.residential == b.residential
        assert a.workplaces == b.workplaces

    def test_different_seeds_differ(self):
        config = CityConfig()
        a = City.generate(config, np.random.default_rng(5))
        b = City.generate(config, np.random.default_rng(6))
        assert a.residential != b.residential

    def test_all_places_within_extent(self, test_city):
        center = test_city.config.center
        # Half-extent on each axis -> max distance is the half diagonal.
        limit = test_city.config.half_extent_m * 2**0.5 * 1.01
        for place in (
            list(test_city.residential)
            + list(test_city.workplaces)
            + list(test_city.leisure)
        ):
            assert haversine_m(center, place) <= limit

    def test_workplaces_cluster_downtown(self, test_city):
        center = test_city.config.center
        mean_work = np.mean([haversine_m(center, p) for p in test_city.workplaces])
        mean_home = np.mean([haversine_m(center, p) for p in test_city.residential])
        assert mean_work < mean_home

    def test_bounding_box_contains_everything(self, test_city):
        box = test_city.bounding_box
        for place in test_city.residential + test_city.workplaces + test_city.leisure:
            assert box.contains(place)
