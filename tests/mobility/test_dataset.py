"""Unit tests for MobilityDataset."""

import pytest

from repro.errors import TrajectoryError
from repro.geo.point import GeoPoint, Record
from repro.geo.trajectory import Trajectory
from repro.mobility.dataset import MobilityDataset
from repro.units import DAY
from tests.conftest import make_trajectory


def two_user_dataset() -> MobilityDataset:
    a = make_trajectory(user="alice")
    b = make_trajectory(
        user="bob", points=[(44.70, -0.50), (44.71, -0.51)], times=[0.0, 60.0]
    )
    return MobilityDataset([a, b])


class TestConstruction:
    def test_duplicate_user_rejected(self):
        a = make_trajectory(user="alice")
        with pytest.raises(TrajectoryError):
            MobilityDataset([a, a])

    def test_empty_dataset_allowed(self):
        dataset = MobilityDataset([])
        assert len(dataset) == 0
        with pytest.raises(TrajectoryError):
            _ = dataset.bounding_box


class TestAccessors:
    def test_users_and_get(self):
        dataset = two_user_dataset()
        assert set(dataset.users) == {"alice", "bob"}
        assert dataset.get("alice").user == "alice"
        assert "alice" in dataset

    def test_unknown_user_raises(self):
        with pytest.raises(TrajectoryError):
            two_user_dataset().get("carol")

    def test_n_records(self):
        dataset = two_user_dataset()
        assert dataset.n_records == 5

    def test_all_records_streams_everything(self):
        dataset = two_user_dataset()
        records = list(dataset.all_records())
        assert len(records) == 5
        assert {user for user, _ in records} == {"alice", "bob"}

    def test_bounding_box_covers_all(self):
        box = two_user_dataset().bounding_box
        for _, record in two_user_dataset().all_records():
            assert box.contains(record.point)


class TestTransforms:
    def test_map_trajectories_drop(self):
        dataset = two_user_dataset()
        kept = dataset.map_trajectories(
            lambda t: t if t.user == "alice" else None
        )
        assert kept.users == ["alice"]

    def test_slice_time(self):
        dataset = two_user_dataset()
        sliced = dataset.slice_time(0.0, 61.0)
        assert sliced.get("bob").end_time == 60.0
        assert len(sliced.get("alice")) == 2

    def test_split_by_day_counts(self, small_population):
        days = list(small_population.dataset.split_by_day(DAY))
        assert len(days) == 5 * 3  # users x days

    def test_pseudonymized_mapping_roundtrip(self):
        dataset = two_user_dataset()
        pseudo, mapping = dataset.pseudonymized()
        assert len(pseudo) == 2
        assert set(mapping.values()) == {"alice", "bob"}
        for pseudonym, user in mapping.items():
            assert pseudo.get(pseudonym).records == dataset.get(user).records

    def test_pseudonyms_hide_names(self):
        pseudo, _ = two_user_dataset().pseudonymized(prefix="anon")
        assert all(user.startswith("anon-") for user in pseudo.users)


class TestPersistence:
    def test_csv_roundtrip(self, tmp_path):
        dataset = two_user_dataset()
        path = tmp_path / "data.csv"
        dataset.to_csv(path)
        loaded = MobilityDataset.from_csv(path)
        assert set(loaded.users) == set(dataset.users)
        for user in dataset.users:
            original = dataset.get(user)
            restored = loaded.get(user)
            assert len(restored) == len(original)
            for a, b in zip(original, restored):
                assert a.time == pytest.approx(b.time, abs=1e-3)
                assert a.lat == pytest.approx(b.lat, abs=1e-6)

    def test_csv_roundtrip_population(self, tmp_path, small_population):
        path = tmp_path / "population.csv"
        small_population.dataset.to_csv(path)
        loaded = MobilityDataset.from_csv(path)
        assert loaded.n_records == small_population.dataset.n_records
